"""Tests for the parallel activation-reuse assessment engine."""

import numpy as np
import pytest

from repro.core.assess_parallel import AssessmentEngine
from repro.core.assessment import (
    AssessmentConfig,
    assess_network,
    bound_key,
    evaluate_candidate,
)
from repro.core.optimizer import OptimizerConfig, optimize_error_bounds
from repro.store import AssessmentCache


CFG = AssessmentConfig(expected_accuracy_loss=0.02, max_fine_tests=8)


def _snapshot(result):
    """Everything the regression compares: exact points per layer."""
    return {
        name: [
            (p.error_bound, p.accuracy, p.degradation, p.compressed_bytes)
            for p in assessment.points
        ]
        for name, assessment in result.layers.items()
    }


def _plan(result):
    return optimize_error_bounds(
        result.candidates(), OptimizerConfig(expected_accuracy_loss=0.02)
    )


@pytest.fixture(scope="module")
def assessment_inputs(pruned_lenet300, small_dataset):
    _, test = small_dataset
    return pruned_lenet300.network, pruned_lenet300.sparse_layers, test


class TestSerialParallelParity:
    def test_workers_bit_identical(self, assessment_inputs):
        """The regression the engine is built around: every worker count
        returns bit-identical points, test counts, and optimizer plans."""
        network, sparse, test = assessment_inputs
        serial = assess_network(
            network, sparse, test.images, test.labels, config=CFG, workers=1
        )
        parallel = assess_network(
            network, sparse, test.images, test.labels, config=CFG, workers=4
        )
        assert _snapshot(serial) == _snapshot(parallel)
        assert serial.tests_performed == parallel.tests_performed
        assert serial.baseline_accuracy == parallel.baseline_accuracy
        plan_s, plan_p = _plan(serial), _plan(parallel)
        assert plan_s.error_bounds == plan_p.error_bounds
        assert plan_s.total_compressed_bytes == plan_p.total_compressed_bytes

    def test_engine_matches_legacy_serial_loop(self, assessment_inputs):
        """The engine (reuse, hoisted index sizes) must reproduce the
        historical evaluate_candidate loop exactly, not just approximately."""
        network, sparse, test = assessment_inputs
        legacy = assess_network(
            network, sparse, test.images, test.labels,
            config=CFG, evaluator=evaluate_candidate,
        )
        engine = assess_network(
            network, sparse, test.images, test.labels, config=CFG, workers=2
        )
        assert _snapshot(legacy) == _snapshot(engine)
        assert legacy.tests_performed == engine.tests_performed

    def test_non_decade_coarse_bounds_stay_bit_identical(self, assessment_inputs):
        """With non-1eN coarse bounds the fine schedule's floats are *near*
        but not bit-equal to the speculatively evaluated coarse bounds; the
        engine must re-evaluate at the exact schedule float rather than
        reuse a trimmed coarse result computed one ulp away."""
        network, sparse, test = assessment_inputs
        cfg = AssessmentConfig(
            expected_accuracy_loss=0.05,
            coarse_bounds=(3e-3, 3e-2, 3e-1),
            max_fine_tests=16,
        )
        serial = assess_network(
            network, sparse, test.images, test.labels, config=cfg, workers=1
        )
        parallel = assess_network(
            network, sparse, test.images, test.labels, config=cfg, workers=4
        )
        assert _snapshot(serial) == _snapshot(parallel)
        assert serial.tests_performed == parallel.tests_performed

    def test_reuse_disabled_identical(self, assessment_inputs):
        network, sparse, test = assessment_inputs
        with_reuse = assess_network(
            network, sparse, test.images, test.labels, config=CFG, workers=1
        )
        without = assess_network(
            network, sparse, test.images, test.labels,
            config=CFG, workers=1, reuse_activations=False,
        )
        assert _snapshot(with_reuse) == _snapshot(without)


class TestEnginePurity:
    def test_network_untouched(self, assessment_inputs):
        network, sparse, test = assessment_inputs
        before = network.state_dict()
        assess_network(network, sparse, test.images, test.labels, config=CFG, workers=4)
        after = network.state_dict()
        assert set(before) == set(after)
        for key in before:
            assert np.array_equal(before[key], after[key]), key

    def test_empty_layers_returns_empty_result(self, assessment_inputs):
        """Contract parity with the legacy evaluator path: no layers is an
        empty result, not an error."""
        network, _, test = assessment_inputs
        result = AssessmentEngine(CFG).run(network, {}, test.images, test.labels)
        assert result.layers == {}
        assert result.tests_performed == 0
        legacy = assess_network(
            network, {}, test.images, test.labels,
            config=CFG, evaluator=evaluate_candidate,
        )
        assert legacy.layers == result.layers
        assert legacy.baseline_accuracy == result.baseline_accuracy


class TestEngineStats:
    def test_serial_never_speculates(self, assessment_inputs):
        network, sparse, test = assessment_inputs
        engine = AssessmentEngine(CFG, workers=1)
        result = engine.run(network, sparse, test.images, test.labels)
        assert engine.stats.speculative_wasted == 0
        assert result.evaluations == result.tests_performed

    def test_parallel_speculation_is_trimmed_not_recorded(self, assessment_inputs):
        network, sparse, test = assessment_inputs
        engine = AssessmentEngine(CFG, workers=4)
        result = engine.run(network, sparse, test.images, test.labels)
        assert result.evaluations >= result.tests_performed
        assert (
            engine.stats.speculative_wasted
            == result.evaluations - result.tests_performed
        )

    def test_checkpoints_cover_dense_layers(self, assessment_inputs):
        network, sparse, test = assessment_inputs
        engine = AssessmentEngine(CFG, workers=1)
        engine.run(network, sparse, test.images, test.labels)
        assert engine.stats.checkpointed_layers == len(sparse)

    def test_checkpoint_budget_falls_back(self, assessment_inputs):
        """A zero budget disables reuse without changing any result."""
        network, sparse, test = assessment_inputs
        engine = AssessmentEngine(CFG, workers=1, checkpoint_budget_bytes=1)
        budget_result = engine.run(network, sparse, test.images, test.labels)
        assert engine.stats.checkpointed_layers == 0
        full = AssessmentEngine(CFG, workers=1).run(
            network, sparse, test.images, test.labels
        )
        assert _snapshot(budget_result) == _snapshot(full)


class TestPersistentCache:
    def test_second_run_is_all_hits(self, assessment_inputs, tmp_path):
        network, sparse, test = assessment_inputs
        cache = AssessmentCache(tmp_path / "cache")
        first = assess_network(
            network, sparse, test.images, test.labels,
            config=CFG, workers=2, cache=cache,
        )
        assert first.cache_hits == 0
        assert first.evaluations > 0
        second = assess_network(
            network, sparse, test.images, test.labels,
            config=CFG, workers=2, cache=cache,
        )
        assert second.evaluations == 0
        assert second.cache_hits >= second.tests_performed
        assert _snapshot(first) == _snapshot(second)

    def test_fully_cached_run_skips_shared_setup(self, assessment_inputs, tmp_path):
        """The expensive shared state (index lossless fits, the checkpoint
        forward pass) is lazy: an all-hits run must never build it."""
        network, sparse, test = assessment_inputs
        cache = AssessmentCache(tmp_path / "cache")
        AssessmentEngine(CFG, workers=2, cache=cache).run(
            network, sparse, test.images, test.labels
        )
        warm = AssessmentEngine(CFG, workers=2, cache=cache)
        warm.run(network, sparse, test.images, test.labels)
        assert warm.stats.checkpointed_layers == 0
        assert warm._index_bytes == {}

    def test_cached_results_shared_between_worker_counts(
        self, assessment_inputs, tmp_path
    ):
        network, sparse, test = assessment_inputs
        cache = AssessmentCache(tmp_path / "cache")
        parallel = assess_network(
            network, sparse, test.images, test.labels,
            config=CFG, workers=4, cache=cache,
        )
        serial = assess_network(
            network, sparse, test.images, test.labels,
            config=CFG, workers=1, cache=cache,
        )
        assert serial.evaluations == 0
        assert _snapshot(parallel) == _snapshot(serial)

    def test_cache_key_distinguishes_error_bounds(self, assessment_inputs, tmp_path):
        network, sparse, test = assessment_inputs
        cache = AssessmentCache(tmp_path / "cache")
        assess_network(
            network, sparse, test.images, test.labels,
            config=CFG, workers=1, cache=cache,
        )
        keys = {p.name for p in (tmp_path / "cache" / "records").glob("*/*.json")}
        # One record per evaluated candidate: layer count x bounds, deduped.
        assert len(keys) == cache.stats.puts


class TestBoundKeyIntegration:
    def test_accumulated_bound_hits_same_key(self):
        acc = 0.0
        for _ in range(3):
            acc += 1e-3
        assert bound_key(acc) == bound_key(3e-3)

    def test_distinct_bounds_get_distinct_keys(self):
        assert bound_key(1e-3) != bound_key(2e-3)
        assert bound_key(1e-3) != bound_key(1e-4)

    def test_non_grid_bound_round_trips(self):
        assert bound_key(1.5e-3) == bound_key(float(repr(1.5e-3)))
