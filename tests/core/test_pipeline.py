"""Tests for the end-to-end DeepSZ pipeline."""

import numpy as np
import pytest

from repro.core import DeepSZ, DeepSZConfig
from repro.core.encoder import CompressedModel
from repro.utils.errors import ValidationError


class TestConfig:
    def test_defaults(self):
        cfg = DeepSZConfig()
        assert cfg.mode == "expected-accuracy"
        assert cfg.expected_accuracy_loss == pytest.approx(0.004)

    def test_invalid_mode(self):
        with pytest.raises(ValidationError):
            DeepSZConfig(mode="magic")

    def test_ratio_mode_requires_target(self):
        with pytest.raises(ValidationError):
            DeepSZConfig(mode="expected-ratio")
        cfg = DeepSZConfig(mode="expected-ratio", target_ratio=30.0)
        assert cfg.target_ratio == 30.0

    def test_assessment_config_propagation(self):
        cfg = DeepSZConfig(expected_accuracy_loss=0.01, capacity=1024)
        acfg = cfg.assessment_config()
        assert acfg.expected_accuracy_loss == 0.01
        assert acfg.capacity == 1024


@pytest.fixture(scope="module")
def pipeline_result(pruned_lenet300, small_dataset):
    """Run the expected-accuracy pipeline once and share the result."""
    _, test = small_dataset
    deepsz = DeepSZ(DeepSZConfig(expected_accuracy_loss=0.01, topk=(1,), optimizer_resolution=50))
    return deepsz.compress(pruned_lenet300, test.images, test.labels)


class TestExpectedAccuracyPipeline:
    def test_compresses_all_fc_layers(self, pipeline_result, pruned_lenet300):
        assert set(pipeline_result.layer_reports) == set(pruned_lenet300.sparse_layers)
        assert set(pipeline_result.plan.error_bounds) == set(pruned_lenet300.sparse_layers)

    def test_accuracy_loss_within_budget(self, pipeline_result):
        # Allow two test-set quanta of slack on top of the 1% budget: the
        # optimizer enforces the *predicted* loss, the measured joint loss can
        # wobble by a sample or two.
        assert pipeline_result.top1_loss <= 0.01 + 0.01

    def test_compression_beats_pruning_alone(self, pipeline_result):
        assert pipeline_result.compression_ratio > pipeline_result.csr_compression_ratio > 1.0

    def test_per_layer_reports_consistent(self, pipeline_result):
        for name, report in pipeline_result.layer_reports.items():
            assert report.original_bytes > report.csr_bytes > report.compressed_bytes
            assert report.error_bound == pipeline_result.plan.error_bounds[name]
            assert 0 < report.pruning_ratio < 1
            assert report.deepsz_ratio > report.csr_ratio

    def test_bits_per_nonzero_in_paper_band(self, pipeline_result):
        """DeepSZ encodes pruned weights in a few bits each.

        The paper reports 2.0-3.3 bits of *data-array* payload per pruned
        weight; with the losslessly-coded index array included the figure
        roughly doubles.  Container overhead only matters for layers with a
        handful of non-zeros, so the check is restricted to layers that carry
        at least 10k surviving weights.
        """
        checked = 0
        for name, layer in pipeline_result.model.layers.items():
            if layer.nnz < 10_000:
                continue
            checked += 1
            assert 0.5 < layer.bits_per_nonzero < 10.0
            data_bits = 8.0 * len(layer.sz_payload) / layer.nnz
            assert 0.5 < data_bits < 6.0
        assert checked >= 1

    def test_model_serializable(self, pipeline_result):
        blob = pipeline_result.model.to_bytes()
        assert CompressedModel.from_bytes(blob).network == pipeline_result.network

    def test_decoding_timing_phases(self, pipeline_result):
        assert set(pipeline_result.decoding_timing.phases) == {"lossless", "sz", "csr"}

    def test_assessment_test_count_is_linear_not_exponential(self, pipeline_result):
        """Algorithm 1 runs ~a dozen tests per layer, never the cross product."""
        layers = len(pipeline_result.layer_reports)
        assert pipeline_result.assessment_tests <= 30 * layers

    def test_summary_properties(self, pipeline_result):
        assert pipeline_result.original_fc_bytes > 0
        assert 0 < pipeline_result.pruning_ratio_overall < 1
        assert pipeline_result.baseline_accuracy[1] >= pipeline_result.compressed_accuracy[1] - 0.02


class TestSparseInferencePipeline:
    def test_default_is_dense(self):
        assert DeepSZConfig().sparse_inference is False

    def test_sparse_inference_accuracy_matches_dense_reevaluation(
        self, pruned_lenet300, small_dataset
    ):
        """With sparse_inference=True the reported compressed accuracy is
        measured through the compressed-domain forward pass — and must be
        the accuracy a dense decode of the same model would measure."""
        from repro.core.decoder import DeepSZDecoder

        _, test = small_dataset
        deepsz = DeepSZ(
            DeepSZConfig(
                expected_accuracy_loss=0.01,
                topk=(1,),
                optimizer_resolution=50,
                assessment_samples=100,
                sparse_inference=True,
            )
        )
        result = deepsz.compress(pruned_lenet300, test.images, test.labels)
        dense_net = pruned_lenet300.network.clone()
        DeepSZDecoder().apply(result.model, dense_net)
        dense_acc = dense_net.evaluate(test.images, test.labels, topk=(1,))
        # The two kernels are not bitwise identical (CSC vs BLAS summation
        # order), so allow one test-set quantum for a platform-dependent
        # near-tie; in practice the counts match exactly.
        assert result.compressed_accuracy[1] == pytest.approx(
            dense_acc[1], abs=1.0 / len(test.labels)
        )


class TestExpectedRatioPipeline:
    def test_reaches_target_ratio(self, pruned_lenet300, small_dataset):
        _, test = small_dataset
        target = 25.0
        deepsz = DeepSZ(
            DeepSZConfig(
                mode="expected-ratio",
                target_ratio=target,
                expected_accuracy_loss=0.05,
                topk=(1,),
            )
        )
        result = deepsz.compress(pruned_lenet300, test.images, test.labels)
        assert result.compression_ratio >= target * 0.95

    def test_empty_pruned_network_raises(self, trained_lenet300, small_dataset):
        _, test = small_dataset
        from repro.pruning import PrunedNetwork

        empty = PrunedNetwork(network=trained_lenet300.clone(), masks={}, sparse_layers={})
        with pytest.raises(ValidationError):
            DeepSZ().compress(empty, test.images, test.labels)


class TestRunFromDense:
    def test_full_run_prunes_and_compresses(self, trained_lenet300, small_dataset):
        train, test = small_dataset
        net = trained_lenet300.clone()
        deepsz = DeepSZ(DeepSZConfig(expected_accuracy_loss=0.02, topk=(1,)))
        result = deepsz.run(
            net,
            {"ip1": 0.1, "ip2": 0.15, "ip3": 0.3},
            train.images,
            train.labels,
            test.images,
            test.labels,
        )
        assert result.compression_ratio > 10
        assert set(result.layer_reports) == {"ip1", "ip2", "ip3"}


class TestCodecConfigValidation:
    def test_unknown_data_codec_fails_fast(self):
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DeepSZConfig(data_codec="no-such-codec")

    def test_non_error_bounded_data_codec_fails_fast(self):
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DeepSZConfig(data_codec="zlib")

    def test_chunking_with_unchunked_codec_fails_fast(self):
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DeepSZConfig(data_codec="zfp", chunk_size=100)

    def test_valid_chunked_config_accepted(self):
        cfg = DeepSZConfig(data_codec="sz", chunk_size=4096, workers=2)
        assert cfg.assessment_config().chunk_size == 4096


class TestAssessmentSubset:
    """The Step 2 sample cap must be a seeded shuffle, not a head slice."""

    def _ordered_set(self, n=60):
        # Class-sorted labels: a head slice would only ever see class 0.
        images = np.arange(n * 4, dtype=np.float32).reshape(n, 4)
        labels = np.repeat(np.arange(3), n // 3)
        return images, labels

    def test_subset_is_not_a_head_slice(self):
        from repro.core.pipeline import assessment_subset

        images, labels = self._ordered_set()
        sub_images, sub_labels = assessment_subset(images, labels, 20, None)
        assert len(sub_images) == 20
        # A head slice of 20 would be all class 0; the shuffled draw must
        # cover more than one class on a class-sorted set.
        assert len(np.unique(sub_labels)) > 1

    def test_subset_rows_stay_paired(self):
        from repro.core.pipeline import assessment_subset

        images, labels = self._ordered_set()
        sub_images, sub_labels = assessment_subset(images, labels, 20, seed=3)
        lookup = {tuple(row): label for row, label in zip(images, labels)}
        for row, label in zip(sub_images, sub_labels):
            assert lookup[tuple(row)] == label

    def test_subset_deterministic_per_seed(self):
        from repro.core.pipeline import assessment_subset

        images, labels = self._ordered_set()
        a = assessment_subset(images, labels, 20, seed=5)
        b = assessment_subset(images, labels, 20, seed=5)
        c = assessment_subset(images, labels, 20, seed=6)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        assert not np.array_equal(a[0], c[0])

    def test_no_cap_returns_everything(self):
        from repro.core.pipeline import assessment_subset

        images, labels = self._ordered_set()
        assert assessment_subset(images, labels, None, None)[0] is images
        assert assessment_subset(images, labels, 1000, None)[0] is images


class TestPipelineWorkers:
    def test_workers_do_not_change_the_result(self, pruned_lenet300, small_dataset):
        _, test = small_dataset
        base = DeepSZ(
            DeepSZConfig(expected_accuracy_loss=0.01, topk=(1,), optimizer_resolution=50)
        ).compress(pruned_lenet300, test.images, test.labels)
        fanned = DeepSZ(
            DeepSZConfig(
                expected_accuracy_loss=0.01,
                topk=(1,),
                optimizer_resolution=50,
                workers=4,
            )
        ).compress(pruned_lenet300, test.images, test.labels)
        assert base.plan.error_bounds == fanned.plan.error_bounds
        assert base.assessment_tests == fanned.assessment_tests
        assert base.compressed_fc_bytes == fanned.compressed_fc_bytes

    def test_assessment_cache_wired_through_config(
        self, pruned_lenet300, small_dataset, tmp_path
    ):
        _, test = small_dataset
        config = DeepSZConfig(
            expected_accuracy_loss=0.01,
            topk=(1,),
            optimizer_resolution=50,
            assessment_cache=str(tmp_path / "cache"),
        )
        first = DeepSZ(config).compress(pruned_lenet300, test.images, test.labels)
        second = DeepSZ(config).compress(pruned_lenet300, test.images, test.labels)
        assert second.assessment.evaluations == 0
        assert second.assessment.cache_hits >= second.assessment.tests_performed
        assert first.plan.error_bounds == second.plan.error_bounds
