"""Tests for the Algorithm 2 error-bound configuration optimizer."""

import numpy as np
import pytest

from repro.core.assessment import AssessmentPoint
from repro.core.optimizer import (
    OptimizerConfig,
    optimize_error_bounds,
    optimize_for_size_budget,
)
from repro.utils.errors import OptimizationError, ValidationError


def points(layer, triples):
    """Helper: build AssessmentPoints from (eb, degradation, size) triples."""
    return [
        AssessmentPoint(layer=layer, error_bound=eb, accuracy=0.9 - d, degradation=d, compressed_bytes=s)
        for eb, d, s in triples
    ]


@pytest.fixture()
def two_layer_candidates():
    # Larger error bound -> smaller size but more degradation.
    return {
        "fc6": points(
            "fc6",
            [(1e-3, 0.000, 1000), (5e-3, 0.001, 600), (1e-2, 0.003, 400), (3e-2, 0.010, 250)],
        ),
        "fc7": points(
            "fc7",
            [(1e-3, 0.000, 500), (5e-3, 0.0005, 300), (1e-2, 0.002, 200), (3e-2, 0.008, 120)],
        ),
    }


class TestExpectedAccuracyMode:
    def test_budget_respected(self, two_layer_candidates):
        plan = optimize_error_bounds(
            two_layer_candidates, OptimizerConfig(expected_accuracy_loss=0.004)
        )
        assert plan.predicted_loss <= 0.004 + 1e-9
        assert set(plan.error_bounds) == {"fc6", "fc7"}
        assert plan.total_compressed_bytes == sum(plan.per_layer_bytes.values())

    def test_minimises_size_within_budget(self, two_layer_candidates):
        plan = optimize_error_bounds(
            two_layer_candidates, OptimizerConfig(expected_accuracy_loss=0.004)
        )
        # Exhaustive search over the 4x4 grid for the true optimum.
        best = None
        for p6 in two_layer_candidates["fc6"]:
            for p7 in two_layer_candidates["fc7"]:
                if max(p6.degradation, 0) + max(p7.degradation, 0) <= 0.004:
                    size = p6.compressed_bytes + p7.compressed_bytes
                    if best is None or size < best:
                        best = size
        assert plan.total_compressed_bytes == best

    def test_zero_budget_tendency(self, two_layer_candidates):
        tiny = optimize_error_bounds(
            two_layer_candidates, OptimizerConfig(expected_accuracy_loss=1e-6)
        )
        large = optimize_error_bounds(
            two_layer_candidates, OptimizerConfig(expected_accuracy_loss=0.05)
        )
        # A tiny budget forces the lossless-ish bounds; a large budget allows
        # the most aggressive ones.
        assert tiny.total_compressed_bytes >= large.total_compressed_bytes
        assert large.error_bounds["fc6"] >= tiny.error_bounds["fc6"]

    def test_larger_budget_never_hurts(self, two_layer_candidates):
        sizes = [
            optimize_error_bounds(
                two_layer_candidates, OptimizerConfig(expected_accuracy_loss=b)
            ).total_compressed_bytes
            for b in (0.001, 0.002, 0.005, 0.02)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_negative_degradation_is_free(self):
        candidates = {
            "fc6": points("fc6", [(1e-3, -0.002, 800), (1e-2, 0.0005, 300)]),
        }
        plan = optimize_error_bounds(candidates, OptimizerConfig(expected_accuracy_loss=0.001))
        assert plan.error_bounds["fc6"] == 1e-2

    def test_single_layer_single_candidate(self):
        candidates = {"fc6": points("fc6", [(1e-3, 0.0001, 123)])}
        plan = optimize_error_bounds(candidates, OptimizerConfig(expected_accuracy_loss=0.004))
        assert plan.error_bounds == {"fc6": 1e-3}
        assert plan.total_compressed_bytes == 123

    def test_infeasible_layer_raises(self):
        candidates = {"fc6": points("fc6", [(1e-1, 0.5, 10)])}
        with pytest.raises(OptimizationError):
            optimize_error_bounds(candidates, OptimizerConfig(expected_accuracy_loss=0.004))

    def test_empty_candidates_raise(self):
        with pytest.raises(ValidationError):
            optimize_error_bounds({}, OptimizerConfig())
        with pytest.raises(OptimizationError):
            optimize_error_bounds({"fc6": []}, OptimizerConfig())

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            OptimizerConfig(expected_accuracy_loss=0)
        with pytest.raises(ValidationError):
            OptimizerConfig(resolution=0)

    def test_many_layers_scales(self, rng):
        candidates = {}
        for i in range(10):
            triples = [
                (eb, float(max(0.0, (eb - 0.005) * (0.2 + 0.05 * i))), int(1000 / (1 + 200 * eb)))
                for eb in (1e-3, 3e-3, 1e-2, 3e-2)
            ]
            candidates[f"layer{i}"] = points(f"layer{i}", triples)
        plan = optimize_error_bounds(candidates, OptimizerConfig(expected_accuracy_loss=0.01))
        assert len(plan.error_bounds) == 10
        assert plan.predicted_loss <= 0.01 + 1e-9


class TestExpectedRatioMode:
    def test_size_budget_respected(self, two_layer_candidates):
        plan = optimize_for_size_budget(two_layer_candidates, size_budget_bytes=700)
        assert plan.total_compressed_bytes <= 700
        assert set(plan.error_bounds) == {"fc6", "fc7"}

    def test_minimises_loss_within_budget(self, two_layer_candidates):
        plan = optimize_for_size_budget(two_layer_candidates, size_budget_bytes=800)
        best = None
        for p6 in two_layer_candidates["fc6"]:
            for p7 in two_layer_candidates["fc7"]:
                if p6.compressed_bytes + p7.compressed_bytes <= 800:
                    loss = max(p6.degradation, 0) + max(p7.degradation, 0)
                    if best is None or loss < best:
                        best = loss
        assert plan.predicted_loss == pytest.approx(best, abs=1e-9)

    def test_tighter_budget_costs_more_accuracy(self, two_layer_candidates):
        loose = optimize_for_size_budget(two_layer_candidates, size_budget_bytes=1500)
        tight = optimize_for_size_budget(two_layer_candidates, size_budget_bytes=400)
        assert tight.predicted_loss >= loose.predicted_loss
        assert tight.total_compressed_bytes <= loose.total_compressed_bytes

    def test_impossible_budget_raises(self, two_layer_candidates):
        with pytest.raises(OptimizationError):
            optimize_for_size_budget(two_layer_candidates, size_budget_bytes=100)

    def test_invalid_arguments(self, two_layer_candidates):
        with pytest.raises(ValidationError):
            optimize_for_size_budget(two_layer_candidates, size_budget_bytes=0)
        with pytest.raises(ValidationError):
            optimize_for_size_budget({}, size_budget_bytes=100)
