"""Tests for the error bound assessment (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.assessment import (
    AssessmentConfig,
    AssessmentPoint,
    LayerAssessment,
    _fine_bounds,
    assess_layer,
    assess_network,
    evaluate_candidate,
)
from repro.utils.errors import ValidationError


class TestConfig:
    def test_defaults(self):
        cfg = AssessmentConfig()
        assert cfg.distortion_criterion == pytest.approx(0.001)
        assert list(cfg.coarse_bounds) == [1e-3, 1e-2, 1e-1]

    def test_validation(self):
        with pytest.raises(ValidationError):
            AssessmentConfig(expected_accuracy_loss=0)
        with pytest.raises(ValidationError):
            AssessmentConfig(coarse_bounds=())
        with pytest.raises(ValidationError):
            AssessmentConfig(coarse_bounds=(1e-2, 1e-3))
        with pytest.raises(ValidationError):
            AssessmentConfig(max_fine_tests=0)


class TestFineBounds:
    def test_schedule_follows_algorithm1(self):
        bounds = _fine_bounds(1e-3, 14)
        expected = [1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3, 7e-3, 8e-3, 9e-3, 1e-2, 2e-2, 3e-2, 4e-2, 5e-2]
        assert np.allclose(bounds, expected)

    def test_schedule_length_capped(self):
        assert len(_fine_bounds(1e-4, 5)) == 5

    def test_decade_rollover(self):
        bounds = _fine_bounds(1e-2, 12)
        assert bounds[9] == pytest.approx(1e-1)
        assert bounds[10] == pytest.approx(2e-1)


def synthetic_evaluator(threshold_per_layer, baseline=0.9, size_fn=None):
    """Build a fake evaluator: accuracy degrades linearly past a per-layer knee."""

    def evaluator(network, layer_name, sparse_layer, eb, x, y, config=None):
        knee = threshold_per_layer[layer_name]
        degradation = 0.0 if eb <= knee else min(0.5, (eb - knee) * 2.0)
        size = int(1e6 / (1 + 100 * eb)) if size_fn is None else size_fn(layer_name, eb)
        return baseline - degradation, size

    return evaluator


class TestAssessLayerWithSyntheticEvaluator:
    """Exercise the Algorithm 1 control flow without any real forward passes."""

    def _sparse_stub(self):
        from repro.pruning import encode_sparse

        w = np.zeros((4, 4), dtype=np.float32)
        w[0, 0] = 1.0
        return encode_sparse(w)

    def test_coarse_then_fine_scan(self, trained_lenet300):
        evaluator = synthetic_evaluator({"ip1": 5e-3})
        cfg = AssessmentConfig(expected_accuracy_loss=0.01)
        assessment, tests = assess_layer(
            trained_lenet300,
            "ip1",
            self._sparse_stub(),
            np.zeros((1, 1, 28, 28), dtype=np.float32),
            np.zeros(1, dtype=int),
            baseline_accuracy=0.9,
            config=cfg,
            evaluator=evaluator,
        )
        bounds = assessment.tested_bounds
        # Distortion appears at 1e-2 in the coarse scan, so the fine scan
        # starts at 1e-3 and stops once degradation > 1%.
        assert pytest.approx(min(bounds)) == 1e-3
        assert tests == len(bounds)
        over = [p for p in assessment.points if p.degradation > 0.01]
        assert len(over) >= 1

    def test_insensitive_layer_keeps_coarse_points(self, trained_lenet300):
        evaluator = synthetic_evaluator({"ip1": 10.0})  # never degrades
        assessment, tests = assess_layer(
            trained_lenet300,
            "ip1",
            self._sparse_stub(),
            np.zeros((1, 1, 28, 28), dtype=np.float32),
            np.zeros(1, dtype=int),
            baseline_accuracy=0.9,
            config=AssessmentConfig(),
            evaluator=evaluator,
        )
        assert tests == 3  # only the coarse scan ran
        assert assessment.tested_bounds == pytest.approx([1e-3, 1e-2, 1e-1])

    def test_feasible_range_endpoints(self, trained_lenet300):
        evaluator = synthetic_evaluator({"ip1": 5e-3})
        cfg = AssessmentConfig(expected_accuracy_loss=0.01)
        assessment, _ = assess_layer(
            trained_lenet300,
            "ip1",
            self._sparse_stub(),
            np.zeros((1, 1, 28, 28), dtype=np.float32),
            np.zeros(1, dtype=int),
            baseline_accuracy=0.9,
            config=cfg,
            evaluator=evaluator,
        )
        lo, hi = assessment.feasible_range
        assert lo == pytest.approx(1e-3)
        # The knee is 5e-3 and eps* = 1%, so bounds up to 5e-3 + 0.005 stay ok.
        assert 5e-3 <= hi <= 2e-2

    def test_point_lookup(self):
        assessment = LayerAssessment(layer="x", baseline_accuracy=0.9)
        assessment.points = [AssessmentPoint("x", 1e-3, 0.9, 0.0, 100)]
        assert assessment.point_for(1e-3).compressed_bytes == 100
        with pytest.raises(KeyError):
            assessment.point_for(5e-3)

    def test_empty_layer_feasible_range_raises(self):
        assessment = LayerAssessment(layer="x", baseline_accuracy=0.9)
        with pytest.raises(ValidationError):
            assessment.feasible_range


class TestEvaluateCandidateReal:
    """A few real (forward pass) evaluations on the trained LeNet."""

    def test_small_bound_preserves_accuracy(self, pruned_lenet300, small_dataset):
        _, test = small_dataset
        net = pruned_lenet300.network
        baseline = net.accuracy(test.images, test.labels)
        acc, size = evaluate_candidate(
            net,
            "ip1",
            pruned_lenet300.sparse_layers["ip1"],
            1e-4,
            test.images,
            test.labels,
        )
        assert abs(acc - baseline) <= 0.005
        assert 0 < size < pruned_lenet300.sparse_layers["ip1"].dense_bytes

    def test_weights_restored_after_evaluation(self, pruned_lenet300, small_dataset):
        _, test = small_dataset
        net = pruned_lenet300.network
        before = net.get_weights("ip1").copy()
        evaluate_candidate(
            net, "ip1", pruned_lenet300.sparse_layers["ip1"], 1e-2, test.images, test.labels
        )
        assert np.array_equal(net.get_weights("ip1"), before)

    def test_larger_bound_gives_smaller_size(self, pruned_lenet300, small_dataset):
        _, test = small_dataset
        net = pruned_lenet300.network
        sparse = pruned_lenet300.sparse_layers["ip1"]
        _, size_small_eb = evaluate_candidate(net, "ip1", sparse, 1e-4, test.images, test.labels)
        _, size_large_eb = evaluate_candidate(net, "ip1", sparse, 1e-2, test.images, test.labels)
        assert size_large_eb < size_small_eb


class TestAssessNetworkReal:
    def test_assesses_every_layer(self, pruned_lenet300, small_dataset):
        _, test = small_dataset
        result = assess_network(
            pruned_lenet300.network,
            pruned_lenet300.sparse_layers,
            test.images,
            test.labels,
            config=AssessmentConfig(expected_accuracy_loss=0.02, max_fine_tests=6),
        )
        assert set(result.layers) == set(pruned_lenet300.sparse_layers)
        assert result.tests_performed >= 3 * len(result.layers)
        for assessment in result.layers.values():
            assert len(assessment.points) >= 3
            for point in assessment.points:
                assert point.compressed_bytes > 0
        candidates = result.candidates()
        assert set(candidates) == set(result.layers)
