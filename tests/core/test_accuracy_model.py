"""Tests for the additive accuracy-loss model (Equation 1 / Figure 6)."""

import numpy as np
import pytest

from repro.core.accuracy_model import linearity_probe, predict_total_loss
from repro.core.assessment import AssessmentPoint, AssessmentResult, LayerAssessment
from repro.utils.errors import ValidationError


def make_assessment():
    layers = {}
    for name, deltas in [("ip1", [0.0, 0.002, 0.01]), ("ip2", [0.0, 0.001, 0.004])]:
        la = LayerAssessment(layer=name, baseline_accuracy=0.95)
        la.points = [
            AssessmentPoint(name, eb, 0.95 - d, d, 100)
            for eb, d in zip((1e-3, 1e-2, 3e-2), deltas)
        ]
        layers[name] = la
    return AssessmentResult(network="x", baseline_accuracy=0.95, layers=layers)


class TestPredictTotalLoss:
    def test_sums_per_layer_degradations(self):
        assessment = make_assessment()
        total = predict_total_loss(assessment, {"ip1": 1e-2, "ip2": 3e-2})
        assert total == pytest.approx(0.002 + 0.004)

    def test_subset_of_layers_allowed(self):
        assessment = make_assessment()
        assert predict_total_loss(assessment, {"ip1": 3e-2}) == pytest.approx(0.01)

    def test_unknown_layer_raises(self):
        with pytest.raises(ValidationError):
            predict_total_loss(make_assessment(), {"nope": 1e-3})

    def test_unknown_bound_raises(self):
        with pytest.raises(KeyError):
            predict_total_loss(make_assessment(), {"ip1": 5e-2})


class TestLinearityProbe:
    def test_probe_on_pruned_lenet(self, pruned_lenet300, small_dataset):
        """The Figure 6 property: summed per-layer losses track the joint loss."""
        _, test = small_dataset
        result = linearity_probe(
            pruned_lenet300.network,
            pruned_lenet300.sparse_layers,
            test.images,
            test.labels,
            error_bound_grid=(5e-3, 2e-2),
            samples=4,
            seed=3,
        )
        assert result.expected_losses.shape == (4,)
        assert result.actual_losses.shape == (4,)
        # Below the 2% regime the deviation between predicted and measured
        # loss stays small (a couple of test-set quanta).
        assert result.max_deviation <= 0.03
        assert result.mean_absolute_deviation <= 0.02

    def test_probe_restores_weights(self, pruned_lenet300, small_dataset):
        _, test = small_dataset
        before = {
            name: pruned_lenet300.network.get_weights(name).copy()
            for name in pruned_lenet300.sparse_layers
        }
        linearity_probe(
            pruned_lenet300.network,
            pruned_lenet300.sparse_layers,
            test.images,
            test.labels,
            error_bound_grid=(1e-2,),
            samples=1,
            seed=4,
        )
        for name, weights in before.items():
            assert np.array_equal(pruned_lenet300.network.get_weights(name), weights)

    def test_invalid_samples(self, pruned_lenet300, small_dataset):
        _, test = small_dataset
        with pytest.raises(ValidationError):
            linearity_probe(
                pruned_lenet300.network,
                pruned_lenet300.sparse_layers,
                test.images,
                test.labels,
                samples=0,
            )
