"""Tests for the compressed-model encoder/decoder (Step 4)."""

import numpy as np
import pytest

from repro.core.decoder import DeepSZDecoder
from repro.core.encoder import CompressedModel, DeepSZEncoder
from repro.pruning import decode_sparse, encode_sparse, prune_weights
from repro.utils.errors import DecompressionError, ValidationError


@pytest.fixture()
def sparse_layers(rng):
    layers = {}
    for name, shape, density in [("fc6", (128, 256), 0.09), ("fc7", (64, 128), 0.09), ("fc8", (16, 64), 0.25)]:
        w = rng.normal(0, 0.03, shape).astype(np.float32)
        pruned, _ = prune_weights(w, density)
        layers[name] = encode_sparse(pruned)
    return layers


@pytest.fixture()
def error_bounds():
    return {"fc6": 7e-3, "fc7": 7e-3, "fc8": 5e-3}


class TestEncoder:
    def test_encode_all_layers(self, sparse_layers, error_bounds):
        model = DeepSZEncoder().encode("test-net", sparse_layers, error_bounds)
        assert set(model.layers) == set(sparse_layers)
        assert model.network == "test-net"
        assert model.compressed_bytes == sum(l.compressed_bytes for l in model.layers.values())
        assert model.compression_ratio > 1.0
        assert model.error_bounds() == error_bounds

    def test_missing_error_bound_raises(self, sparse_layers):
        with pytest.raises(ValidationError):
            DeepSZEncoder().encode("x", sparse_layers, {"fc6": 1e-3})

    def test_layer_metadata(self, sparse_layers, error_bounds):
        model = DeepSZEncoder().encode("x", sparse_layers, error_bounds)
        layer = model.layers["fc6"]
        assert layer.shape == (128, 256)
        assert layer.nnz == sparse_layers["fc6"].nnz
        assert layer.dense_bytes == 128 * 256 * 4
        assert layer.bits_per_nonzero > 0
        assert layer.index_backend in ("zlib", "lzma", "bz2", "store")

    def test_deepsz_beats_csr(self, sparse_layers, error_bounds):
        """The whole point: SZ on the data array + lossless index beats 40-bit CSR."""
        model = DeepSZEncoder().encode("x", sparse_layers, error_bounds)
        for name, layer in model.layers.items():
            assert layer.compressed_bytes < sparse_layers[name].packed_bytes

    def test_encoding_time_recorded(self, sparse_layers, error_bounds):
        model = DeepSZEncoder().encode("x", sparse_layers, error_bounds)
        assert model.encoding_time.total > 0
        assert set(model.encoding_time.phases) == {f"encode:{n}" for n in sparse_layers}


class TestModelSerialization:
    def test_to_from_bytes_roundtrip(self, sparse_layers, error_bounds):
        model = DeepSZEncoder().encode("net", sparse_layers, error_bounds, expected_accuracy_loss=0.004)
        blob = model.to_bytes()
        restored = CompressedModel.from_bytes(blob)
        assert restored.network == "net"
        assert restored.expected_accuracy_loss == pytest.approx(0.004)
        assert set(restored.layers) == set(model.layers)
        for name in model.layers:
            assert restored.layers[name].sz_payload == model.layers[name].sz_payload
            assert restored.layers[name].error_bound == model.layers[name].error_bound

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(DecompressionError):
            CompressedModel.from_bytes(b"not a model")

    def test_decoded_weights_identical_after_serialization(self, sparse_layers, error_bounds):
        model = DeepSZEncoder().encode("net", sparse_layers, error_bounds)
        restored = CompressedModel.from_bytes(model.to_bytes())
        d1 = DeepSZDecoder().decode(model)
        d2 = DeepSZDecoder().decode(restored)
        for name in d1.weights:
            assert np.array_equal(d1.weights[name], d2.weights[name])


class TestDecoder:
    def test_error_bound_respected_per_layer(self, sparse_layers, error_bounds):
        model = DeepSZEncoder().encode("net", sparse_layers, error_bounds)
        decoded = DeepSZDecoder().decode(model)
        for name, sparse in sparse_layers.items():
            original = decode_sparse(sparse)
            recon = decoded.weights[name]
            assert recon.shape == original.shape
            # Stored (non-zero) entries obey the layer's error bound.
            nz = original != 0
            assert np.max(np.abs(recon[nz] - original[nz])) <= error_bounds[name] * (1 + 1e-5)
            # Pruned weights stay within the bound of zero.
            assert np.max(np.abs(recon[~nz])) <= error_bounds[name] * (1 + 1e-5)

    def test_timing_breakdown_has_three_phases(self, sparse_layers, error_bounds):
        model = DeepSZEncoder().encode("net", sparse_layers, error_bounds)
        decoded = DeepSZDecoder().decode(model)
        assert set(decoded.timing.phases) == {"lossless", "sz", "csr"}
        assert decoded.total_seconds > 0

    def test_apply_loads_weights_into_network(self, pruned_lenet300):
        pruned = pruned_lenet300
        bounds = {name: 1e-3 for name in pruned.sparse_layers}
        model = DeepSZEncoder().encode("LeNet-300-100", pruned.sparse_layers, bounds)
        target = pruned.network.clone()
        DeepSZDecoder().apply(model, target)
        for name in pruned.sparse_layers:
            original = pruned.network.get_weights(name)
            loaded = target.get_weights(name)
            assert np.max(np.abs(loaded - original)) <= 1e-3 * (1 + 1e-5)
            assert not np.array_equal(loaded, original)  # lossy, not identical


class TestCodecRegistryIntegration:
    """The encoder/decoder resolve data codecs through the registry."""

    def test_layer_records_data_codec(self, sparse_layers, error_bounds):
        model = DeepSZEncoder().encode("x", sparse_layers, error_bounds)
        assert all(layer.data_codec == "sz" for layer in model.layers.values())
        blob = model.to_bytes()
        restored = CompressedModel.from_bytes(blob)
        assert all(layer.data_codec == "sz" for layer in restored.layers.values())

    def test_zfp_data_codec_round_trip(self, sparse_layers, error_bounds):
        model = DeepSZEncoder(data_codec="zfp").encode("x", sparse_layers, error_bounds)
        assert all(layer.data_codec == "zfp" for layer in model.layers.values())
        decoded = DeepSZDecoder().decode(model)
        for name, sl in sparse_layers.items():
            dense = decode_sparse(sl)
            mask = dense != 0
            err = np.abs(decoded.weights[name][mask] - dense[mask]).max()
            assert err <= error_bounds[name] + 1e-9

    def test_non_error_bounded_codec_rejected(self, sparse_layers):
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DeepSZEncoder(data_codec="zlib")

    def test_chunking_requires_chunk_capable_codec(self):
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DeepSZEncoder(data_codec="zfp", chunk_size=1000)

    def test_unknown_data_codec_rejected(self):
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DeepSZEncoder(data_codec="does-not-exist")


class TestParallelEncodeDecode:
    """Layer fan-out with the workers knob: identical bytes and weights."""

    def test_worker_count_does_not_change_payloads(self, sparse_layers, error_bounds):
        serial = DeepSZEncoder(chunk_size=2048, workers=1).encode(
            "x", sparse_layers, error_bounds
        )
        parallel = DeepSZEncoder(chunk_size=2048, workers=2).encode(
            "x", sparse_layers, error_bounds
        )
        for name in sparse_layers:
            assert serial.layers[name].sz_payload == parallel.layers[name].sz_payload
            assert serial.layers[name].index_payload == parallel.layers[name].index_payload

    def test_parallel_decode_matches_serial(self, sparse_layers, error_bounds):
        model = DeepSZEncoder(chunk_size=2048).encode("x", sparse_layers, error_bounds)
        d1 = DeepSZDecoder(workers=1).decode(model)
        d2 = DeepSZDecoder(workers=2).decode(model)
        for name in sparse_layers:
            np.testing.assert_array_equal(d1.weights[name], d2.weights[name])

    def test_invalid_workers(self):
        with pytest.raises(ValidationError):
            DeepSZEncoder(workers=0)
        with pytest.raises(ValidationError):
            DeepSZDecoder(workers=0)

    def test_encoding_time_phases_present_with_workers(self, sparse_layers, error_bounds):
        model = DeepSZEncoder(workers=2).encode("x", sparse_layers, error_bounds)
        assert set(model.encoding_time.as_dict()) == {
            f"encode:{name}" for name in sparse_layers
        }


class TestGoldenModelBlob:
    """A compressed-model blob from the pre-registry era still decodes."""

    def test_golden_model_decodes_bit_exactly(self):
        from pathlib import Path

        blob = (
            Path(__file__).resolve().parent.parent / "golden" / "golden_model_v1.bin"
        ).read_bytes()
        model = CompressedModel.from_bytes(blob)
        assert model.network == "golden-net"
        layer = model.layers["fc1"]
        assert layer.data_codec == "sz"  # defaulted for pre-registry blobs
        decoded = DeepSZDecoder().decode(model)
        weights = decoded.weights["fc1"]
        assert weights.shape == (64, 48)
        # Re-encoding the reconstructed weights at the same bound reproduces
        # the golden payload bytes (quantized values re-quantize to the same
        # codes, and the v1 write path is unchanged).
        pruned = weights  # already pruned: zeros where weights were dropped
        sl = encode_sparse(pruned)
        fresh = DeepSZEncoder().encode("golden-net", {"fc1": sl}, {"fc1": 2e-3})
        assert fresh.layers["fc1"].sz_payload == layer.sz_payload
        assert fresh.layers["fc1"].index_payload == layer.index_payload


class TestV1PayloadChecksums:
    """Blobs carry per-payload CRC32s: corruption fails with the layer named."""

    def test_corrupted_sz_payload_names_layer(self, sparse_layers, error_bounds):
        model = DeepSZEncoder().encode("x", sparse_layers, error_bounds)
        blob = bytearray(model.to_bytes())
        # Flip a byte inside fc6's sz payload: the sections follow the JSON
        # header in insertion order, so fc6/sz is the first payload.
        header_len = int.from_bytes(blob[:8], "little")
        blob[8 + header_len + 4] ^= 0xFF
        with pytest.raises(DecompressionError, match="'fc6' sz payload"):
            CompressedModel.from_bytes(bytes(blob))

    def test_truncated_blob_is_a_clean_decompression_error(
        self, sparse_layers, error_bounds
    ):
        model = DeepSZEncoder().encode("x", sparse_layers, error_bounds)
        blob = model.to_bytes()
        with pytest.raises(DecompressionError):
            CompressedModel.from_bytes(blob[: len(blob) - len(blob) // 4])

    def test_pre_checksum_blobs_still_load(self):
        """The golden pre-PR2 blob has no crc32 metadata and must load."""
        from pathlib import Path

        blob = (
            Path(__file__).resolve().parent.parent / "golden" / "golden_model_v1.bin"
        ).read_bytes()
        header_len = int.from_bytes(blob[:8], "little")
        assert b"crc32" not in blob[8 : 8 + header_len]  # really pre-checksum
        model = CompressedModel.from_bytes(blob)
        assert model.network == "golden-net"


class TestDecodeErrorContract:
    def test_unknown_data_codec_in_blob_raises_decompression_error(
        self, sparse_layers, error_bounds
    ):
        model = DeepSZEncoder().encode("x", sparse_layers, error_bounds)
        meta_blob = model.to_bytes()
        # Tamper with the recorded codec name, as bit rot or a foreign
        # encoder would: decode must fail with the decode error type.
        tampered = meta_blob.replace(b'"data_codec": "sz"', b'"data_codec": "xx"')
        assert tampered != meta_blob
        bad_model = CompressedModel.from_bytes(tampered)
        with pytest.raises(DecompressionError, match="unknown codec"):
            DeepSZDecoder().decode(bad_model)


class TestChunkSizeValidation:
    def test_invalid_chunk_size_fails_at_construction(self):
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DeepSZEncoder(chunk_size=0)
        with pytest.raises(ConfigurationError):
            DeepSZEncoder(chunk_size=-5)

    def test_unknown_index_candidate_fails_at_construction(self):
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DeepSZEncoder(index_lossless_candidates=("zlib", "no-such"))
