"""Tests for the loss function and the SGD trainer (incl. masked retraining)."""

import numpy as np
import pytest

from repro.nn import Dense, Flatten, Network, ReLU, SGDConfig, SGDTrainer, Softmax
from repro.nn.losses import softmax_cross_entropy
from repro.utils.errors import TrainingError, ValidationError


def make_blobs(n=200, dim=8, classes=3, seed=0):
    """A trivially separable classification problem."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(classes, dim))
    labels = rng.integers(0, classes, n)
    x = centers[labels] + rng.normal(0, 0.5, size=(n, dim))
    return x.astype(np.float32).reshape(n, 1, 1, dim), labels


def blob_net(dim=8, classes=3, seed=0):
    return Network(
        [
            Flatten("flatten"),
            Dense("fc1", dim, 16, rng=seed),
            ReLU("r"),
            Dense("fc2", 16, classes, rng=seed + 1),
            Softmax("prob"),
        ],
        name="blob-net",
    )


class TestSoftmaxCrossEntropy:
    def test_loss_of_perfect_prediction_is_small(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-4

    def test_loss_of_uniform_prediction(self):
        logits = np.zeros((4, 10))
        loss, _ = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient_matches_numerical(self, fresh_rng):
        logits = fresh_rng.normal(size=(5, 4))
        labels = fresh_rng.integers(0, 4, 5)
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-5
        num = np.zeros_like(logits)
        for i in range(5):
            for j in range(4):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                num[i, j] = (
                    softmax_cross_entropy(lp, labels)[0] - softmax_cross_entropy(lm, labels)[0]
                ) / (2 * eps)
        assert np.allclose(grad, num, atol=1e-5)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            softmax_cross_entropy(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ValidationError):
            softmax_cross_entropy(np.zeros((3, 2)), np.zeros(2, dtype=int))
        with pytest.raises(ValidationError):
            softmax_cross_entropy(np.zeros((2, 2)), np.array([0, 5]))


class TestSGDConfig:
    def test_invalid_hyperparameters(self):
        with pytest.raises(ValidationError):
            SGDConfig(learning_rate=0)
        with pytest.raises(ValidationError):
            SGDConfig(momentum=1.0)
        with pytest.raises(ValidationError):
            SGDConfig(batch_size=0)
        with pytest.raises(ValidationError):
            SGDConfig(lr_decay=0)


class TestSGDTrainer:
    def test_learns_separable_problem(self):
        x, y = make_blobs(seed=1)
        net = blob_net(seed=2)
        result = SGDTrainer(SGDConfig(epochs=15, learning_rate=0.1, seed=3)).train(net, x, y)
        assert result.losses[-1] < result.losses[0]
        assert net.accuracy(x, y) > 0.95

    def test_records_validation_accuracy(self):
        x, y = make_blobs(seed=1)
        net = blob_net(seed=2)
        result = SGDTrainer(SGDConfig(epochs=3, learning_rate=0.1, seed=3)).train(
            net, x, y, x_val=x[:50], labels_val=y[:50]
        )
        assert len(result.val_accuracies) == 3
        assert 0.0 <= result.final_val_accuracy <= 1.0

    def test_empty_dataset_raises(self):
        net = blob_net()
        with pytest.raises(ValidationError):
            SGDTrainer().train(net, np.zeros((0, 1, 1, 8), dtype=np.float32), np.zeros(0, dtype=int))

    def test_mismatched_lengths_raise(self):
        net = blob_net()
        x, y = make_blobs(n=10)
        with pytest.raises(ValidationError):
            SGDTrainer().train(net, x, y[:5])

    def test_divergence_detected(self):
        x, y = make_blobs(seed=1)
        net = blob_net(seed=2)
        with pytest.raises(TrainingError):
            SGDTrainer(SGDConfig(epochs=5, learning_rate=1e4, seed=3)).train(net, x, y)

    def test_masked_training_keeps_pruned_weights_zero(self):
        x, y = make_blobs(seed=4)
        net = blob_net(seed=5)
        rng = np.random.default_rng(6)
        mask = rng.random(net.get_weights("fc1").shape) < 0.3
        net.set_weights("fc1", net.get_weights("fc1") * mask)
        SGDTrainer(SGDConfig(epochs=4, learning_rate=0.1, seed=7)).train(
            net, x, y, masks={"fc1": mask}
        )
        w = net.get_weights("fc1")
        assert not w[~mask].any()
        assert w[mask].any()

    def test_mask_shape_validated(self):
        x, y = make_blobs()
        net = blob_net()
        with pytest.raises(ValidationError):
            SGDTrainer().train(net, x, y, masks={"fc1": np.ones((2, 2), dtype=bool)})

    def test_deterministic_given_seed(self):
        x, y = make_blobs(seed=8)
        net_a, net_b = blob_net(seed=9), blob_net(seed=9)
        cfg = SGDConfig(epochs=3, learning_rate=0.05, seed=10)
        SGDTrainer(cfg).train(net_a, x, y)
        SGDTrainer(cfg).train(net_b, x, y)
        assert np.array_equal(net_a.get_weights("fc2"), net_b.get_weights("fc2"))
