"""Tests for the Network container."""

import numpy as np
import pytest

from repro.nn import Dense, Flatten, Network, ReLU, Softmax, models
from repro.utils.errors import ValidationError


def tiny_net(seed=0):
    return Network(
        [
            Flatten("flatten"),
            Dense("fc1", 16, 8, rng=seed),
            ReLU("r1"),
            Dense("fc2", 8, 3, rng=seed + 1),
            Softmax("prob"),
        ],
        name="tiny",
    )


class TestStructure:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            Network([ReLU("a"), ReLU("a")])

    def test_getitem_by_name(self):
        net = tiny_net()
        assert net["fc1"].name == "fc1"
        with pytest.raises(KeyError):
            net["nope"]

    def test_fc_layers_in_order(self):
        net = tiny_net()
        assert net.fc_layer_names() == ["fc1", "fc2"]

    def test_parameter_counting(self):
        net = tiny_net()
        expected = (16 * 8 + 8) + (8 * 3 + 3)
        assert net.parameter_count() == expected
        assert net.parameter_bytes() == expected * 4
        assert net.fc_parameter_bytes() == expected * 4


class TestWeights:
    def test_get_set_weights(self):
        net = tiny_net()
        w = net.get_weights("fc1")
        new = np.zeros_like(w)
        net.set_weights("fc1", new)
        assert not net.get_weights("fc1").any()

    def test_set_weights_shape_mismatch(self):
        net = tiny_net()
        with pytest.raises(ValidationError):
            net.set_weights("fc1", np.zeros((2, 2), dtype=np.float32))

    def test_set_weights_copies(self):
        net = tiny_net()
        new = np.ones((8, 16), dtype=np.float32)
        net.set_weights("fc1", new)
        new[:] = 5.0
        assert net.get_weights("fc1").max() == 1.0

    def test_state_dict_roundtrip(self):
        net = tiny_net(seed=1)
        other = tiny_net(seed=2)
        assert not np.allclose(net.get_weights("fc1"), other.get_weights("fc1"))
        other.load_state_dict(net.state_dict())
        assert np.array_equal(net.get_weights("fc1"), other.get_weights("fc1"))
        assert np.array_equal(net.get_weights("fc2"), other.get_weights("fc2"))

    def test_load_state_dict_missing_key(self):
        net = tiny_net()
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(ValidationError):
            net.load_state_dict(state)

    def test_clone_is_independent(self):
        net = tiny_net()
        clone = net.clone()
        clone.set_weights("fc1", np.zeros((8, 16), dtype=np.float32))
        assert net.get_weights("fc1").any()


class TestExecution:
    def test_forward_output_is_probability(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(4, 1, 4, 4)).astype(np.float32)
        out = net.forward(x)
        assert out.shape == (4, 3)
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-5)

    def test_predict_labels_in_range(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(10, 1, 4, 4)).astype(np.float32)
        preds = net.predict(x, batch_size=3)
        assert preds.shape == (10,)
        assert preds.min() >= 0 and preds.max() < 3

    def test_evaluate_topk(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(30, 1, 4, 4)).astype(np.float32)
        labels = fresh_rng.integers(0, 3, 30)
        accs = net.evaluate(x, labels, topk=(1, 2, 3))
        assert 0.0 <= accs[1] <= accs[2] <= accs[3] == 1.0

    def test_evaluate_topk_exceeding_classes(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(6, 1, 4, 4)).astype(np.float32)
        labels = fresh_rng.integers(0, 3, 6)
        accs = net.evaluate(x, labels, topk=(5,))
        assert accs[5] == 1.0  # k capped at the number of classes

    def test_evaluate_mismatched_lengths(self, fresh_rng):
        net = tiny_net()
        with pytest.raises(ValidationError):
            net.evaluate(np.zeros((3, 1, 4, 4), dtype=np.float32), np.zeros(2, dtype=int))

    def test_evaluate_empty(self):
        net = tiny_net()
        accs = net.evaluate(np.zeros((0, 1, 4, 4), dtype=np.float32), np.zeros(0, dtype=int))
        assert accs[1] == 0.0

    def test_evaluate_invalid_topk(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(3, 1, 4, 4)).astype(np.float32)
        with pytest.raises(ValidationError):
            net.evaluate(x, np.zeros(3, dtype=int), topk=(0,))

    def test_accuracy_against_known_labels(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(50, 1, 4, 4)).astype(np.float32)
        labels = net.predict(x)  # use the net's own predictions as labels
        assert net.accuracy(x, labels) == 1.0

    def test_logits_skips_softmax(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(2, 1, 4, 4)).astype(np.float32)
        logits = net.logits(x)
        probs = net.forward(x)
        assert not np.allclose(logits.sum(axis=1), 1.0)
        manual = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        assert np.allclose(manual, probs, atol=1e-5)


class TestModelBuilders:
    def test_available_models(self):
        names = models.available_models()
        assert {"lenet-300-100", "lenet-5", "alexnet-mini", "vgg-16-mini"} <= set(names)

    def test_unknown_model_raises(self):
        with pytest.raises(ValidationError):
            models.build_model("resnet-9000")

    def test_lenet300_structure(self):
        net = models.lenet_300_100(seed=0)
        assert net.fc_layer_names() == ["ip1", "ip2", "ip3"]
        assert net.get_weights("ip1").shape == (300, 784)

    def test_lenet5_forward_shape(self, fresh_rng):
        net = models.lenet5(seed=0)
        x = fresh_rng.normal(size=(2, 1, 28, 28)).astype(np.float32)
        assert net.forward(x).shape == (2, 10)

    @pytest.mark.parametrize("builder", [models.alexnet_mini, models.vgg16_mini])
    def test_imagenet_minis_forward_shape(self, builder, fresh_rng):
        net = builder(num_classes=20, seed=0)
        x = fresh_rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        assert net.forward(x).shape == (2, 20)
        assert net.fc_layer_names() == ["fc6", "fc7", "fc8"]

    def test_fc6_dominates_fc_storage(self):
        for builder in (models.alexnet_mini, models.vgg16_mini):
            net = builder(seed=0)
            sizes = {l.name: l.parameter_bytes() for l in net.fc_layers()}
            assert sizes["fc6"] > sizes["fc7"] > sizes["fc8"]

    def test_mini_spec_for(self):
        net = models.alexnet_mini(seed=0)
        spec = models.mini_spec_for(net)
        assert spec.fc_layer_names == ["fc6", "fc7", "fc8"]
        assert spec.fc_layer("fc6").shape == net.get_weights("fc6").shape

    def test_synthesize_fc_weights_shape_and_range(self):
        w = models.synthesize_fc_weights("AlexNet", "fc8", seed=1, scale=0.1)
        assert w.shape == (100, 410)
        assert w.dtype == np.float32
        assert np.abs(w).max() <= 0.3

    def test_synthesize_fc_weights_full_scale_dims(self):
        w = models.synthesize_fc_weights("LeNet-300-100", "ip3", seed=1)
        assert w.shape == (10, 100)


class TestPartialExecution:
    """forward_to / forward_collect / forward_from: the assessment engine's
    checkpoint-and-resume contract."""

    def test_forward_to_then_from_equals_full_forward(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(6, 1, 4, 4)).astype(np.float32)
        full = net.forward(x)
        for name in ("fc1", "r1", "fc2", "prob"):
            checkpoint = net.forward_to(name, x)
            resumed = net.forward_from(name, checkpoint)
            assert np.array_equal(full, resumed), name

    def test_forward_collect_matches_forward_to(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(5, 1, 4, 4)).astype(np.float32)
        out, captured = net.forward_collect(x, ["fc1", "fc2"])
        assert np.array_equal(out, net.forward(x))
        assert np.array_equal(captured["fc1"], net.forward_to("fc1", x))
        assert np.array_equal(captured["fc2"], net.forward_to("fc2", x))

    def test_forward_collect_unknown_layer_rejected(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(2, 1, 4, 4)).astype(np.float32)
        with pytest.raises(ValidationError):
            net.forward_collect(x, ["nope"])

    def test_weight_override_equals_mutated_clone(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(6, 1, 4, 4)).astype(np.float32)
        new_weights = fresh_rng.normal(size=(3, 8)).astype(np.float32)
        checkpoint = net.forward_to("fc2", x)
        functional = net.forward_from("fc2", checkpoint, weight_override=new_weights)
        clone = net.clone()
        clone.set_weights("fc2", new_weights)
        assert np.array_equal(functional, clone.forward(x))

    def test_weight_override_does_not_mutate(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(4, 1, 4, 4)).astype(np.float32)
        before = net.get_weights("fc2").copy()
        net.forward_from(
            "fc2",
            net.forward_to("fc2", x),
            weight_override=np.zeros_like(before),
        )
        assert np.array_equal(net.get_weights("fc2"), before)

    def test_weight_override_shape_checked(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(2, 1, 4, 4)).astype(np.float32)
        checkpoint = net.forward_to("fc2", x)
        with pytest.raises(ValidationError):
            net.forward_from("fc2", checkpoint, weight_override=np.zeros((2, 2)))

    def test_weight_override_requires_dense(self, fresh_rng):
        net = tiny_net()
        x = fresh_rng.normal(size=(2, 1, 4, 4)).astype(np.float32)
        checkpoint = net.forward_to("r1", x)
        with pytest.raises(ValidationError):
            net.forward_from("r1", checkpoint, weight_override=np.zeros((8, 16)))

    def test_layer_index_and_unknown_layer(self):
        net = tiny_net()
        assert net.layer_index("flatten") == 0
        assert net.layer_index("prob") == 4
        with pytest.raises(KeyError):
            net.layer_index("missing")
