"""Tests for the NN layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Softmax
from repro.utils.errors import ValidationError


def numerical_grad(f, x, eps=1e-4):
    """Central-difference gradient of scalar function f at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        fp = f()
        x[idx] = old - eps
        fm = f()
        x[idx] = old
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape_and_value(self):
        layer = Dense("fc", 3, 2, rng=0)
        layer.params["weight"] = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 1.0]], dtype=np.float32)
        layer.params["bias"] = np.array([0.5, -0.5], dtype=np.float32)
        x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        out = layer.forward(x)
        assert out.shape == (1, 2)
        assert np.allclose(out, [[1.5, 4.5]])

    def test_rejects_wrong_input_width(self):
        layer = Dense("fc", 4, 2, rng=0)
        with pytest.raises(ValidationError):
            layer.forward(np.zeros((1, 5), dtype=np.float32))

    def test_backward_before_forward_raises(self):
        layer = Dense("fc", 4, 2, rng=0)
        with pytest.raises(ValidationError):
            layer.backward(np.zeros((1, 2), dtype=np.float32))

    def test_gradient_check(self, fresh_rng):
        layer = Dense("fc", 5, 3, rng=1)
        x = fresh_rng.normal(size=(4, 5)).astype(np.float32)
        target = fresh_rng.normal(size=(4, 3)).astype(np.float32)

        def loss():
            out = layer.forward(x.astype(np.float32), training=True)
            return float(0.5 * np.sum((out - target) ** 2))

        out = layer.forward(x, training=True)
        grad_out = (out - target).astype(np.float32)
        grad_in = layer.backward(grad_out)

        num_w = numerical_grad(loss, layer.params["weight"])
        assert np.allclose(layer.grads["weight"], num_w, atol=1e-2)
        num_b = numerical_grad(loss, layer.params["bias"])
        assert np.allclose(layer.grads["bias"], num_b, atol=1e-2)
        num_x = numerical_grad(loss, x)
        assert np.allclose(grad_in, num_x, atol=1e-2)

    def test_parameter_counts(self):
        layer = Dense("fc", 10, 7, rng=0)
        assert layer.parameter_count() == 10 * 7 + 7
        assert layer.parameter_bytes() == (10 * 7 + 7) * 4


class TestConv2D:
    def test_output_shape(self):
        layer = Conv2D("c", 3, 8, 3, padding=1, rng=0)
        out = layer.forward(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert out.shape == (2, 8, 16, 16)

    def test_output_shape_stride(self):
        layer = Conv2D("c", 1, 4, 5, stride=2, rng=0)
        out = layer.forward(np.zeros((1, 1, 28, 28), dtype=np.float32))
        assert out.shape == (1, 4, 12, 12)

    def test_known_convolution_value(self):
        layer = Conv2D("c", 1, 1, 3, rng=0)
        layer.params["weight"] = np.ones((1, 1, 3, 3), dtype=np.float32)
        layer.params["bias"] = np.zeros(1, dtype=np.float32)
        x = np.ones((1, 1, 5, 5), dtype=np.float32)
        out = layer.forward(x)
        assert out.shape == (1, 1, 3, 3)
        assert np.allclose(out, 9.0)

    def test_rejects_wrong_channels(self):
        layer = Conv2D("c", 3, 4, 3, rng=0)
        with pytest.raises(ValidationError):
            layer.forward(np.zeros((1, 2, 8, 8), dtype=np.float32))

    def test_gradient_check(self, fresh_rng):
        layer = Conv2D("c", 2, 3, 3, padding=1, rng=2)
        x = fresh_rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        target = fresh_rng.normal(size=(2, 3, 5, 5)).astype(np.float32)

        def loss():
            out = layer.forward(x, training=True)
            return float(0.5 * np.sum((out - target) ** 2))

        out = layer.forward(x, training=True)
        grad_in = layer.backward((out - target).astype(np.float32))
        # The forward pass runs in float32, so the central-difference estimate
        # carries a few percent of rounding noise on gradients of size ~30.
        num_w = numerical_grad(loss, layer.params["weight"], eps=1e-3)
        assert np.allclose(layer.grads["weight"], num_w, rtol=5e-2, atol=5e-2)
        num_x = numerical_grad(loss, x, eps=1e-3)
        assert np.allclose(grad_in, num_x, rtol=5e-2, atol=5e-2)


class TestReLUAndPool:
    def test_relu_forward(self):
        layer = ReLU("r")
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        assert np.array_equal(layer.forward(x), [[0.0, 0.0, 2.0]])

    def test_relu_backward_masks_negatives(self):
        layer = ReLU("r")
        x = np.array([[-1.0, 3.0]], dtype=np.float32)
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[5.0, 5.0]], dtype=np.float32))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_maxpool_forward(self):
        layer = MaxPool2D("p", 2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        layer = MaxPool2D("p", 2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        assert grad.sum() == 4
        assert grad[0, 0, 1, 1] == 1 and grad[0, 0, 3, 3] == 1
        assert grad[0, 0, 0, 0] == 0

    def test_maxpool_gradient_check(self, fresh_rng):
        layer = MaxPool2D("p", 2)
        x = fresh_rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
        target = fresh_rng.normal(size=(1, 2, 2, 2)).astype(np.float32)

        def loss():
            return float(0.5 * np.sum((layer.forward(x, training=True) - target) ** 2))

        out = layer.forward(x, training=True)
        grad_in = layer.backward((out - target).astype(np.float32))
        assert np.allclose(grad_in, numerical_grad(loss, x), atol=1e-2)


class TestDropoutFlattenSoftmax:
    def test_dropout_identity_at_inference(self, fresh_rng):
        layer = Dropout("d", 0.5, rng=3)
        x = fresh_rng.normal(size=(8, 10)).astype(np.float32)
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_dropout_scales_at_training(self):
        layer = Dropout("d", 0.5, rng=3)
        x = np.ones((1000, 4), dtype=np.float32)
        out = layer.forward(x, training=True)
        # Inverted dropout: surviving activations are scaled by 1/keep.
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.1

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValidationError):
            Dropout("d", 1.0)

    def test_flatten_roundtrip(self):
        layer = Flatten("f")
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 2, 2)
        out = layer.forward(x, training=True)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == x.shape

    def test_softmax_rows_sum_to_one(self, fresh_rng):
        layer = Softmax()
        x = fresh_rng.normal(size=(5, 7)).astype(np.float32) * 20
        out = layer.forward(x)
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-6)
        assert (out >= 0).all()

    def test_softmax_is_stable_for_large_logits(self):
        out = Softmax().forward(np.array([[1000.0, 1001.0]], dtype=np.float32))
        assert np.isfinite(out).all()
