"""Dense-vs-sparse parity of the compressed-domain inference engine.

Every zoo model architecture, pruned at its paper ratios, must produce the
same outputs whether its fc layers run dense BLAS matmuls or sparse CSC
matmuls: probabilities within 1e-6 and identical top-k predictions, on the
full forward pass *and* on the ``forward_from`` / ``forward_collect``
checkpoint paths the assessment engine uses.  A trained-model integration
test additionally pins parity through the full archive -> sparse runtime ->
network serving path.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.core.decoder import DeepSZDecoder
from repro.core.encoder import DeepSZEncoder
from repro.nn import SparseWeight, models, zoo
from repro.nn.network import topk_counts
from repro.pruning import encode_sparse
from repro.pruning.magnitude import prune_weights
from repro.serve import ModelRuntime
from repro.utils.errors import ValidationError

ZOO_MODELS = sorted(zoo.RECIPES)

_ATOL = 1e-6


@lru_cache(maxsize=None)
def pruned_pair(recipe_name: str):
    """(dense_net, sparse_net, x) for one zoo architecture.

    The architecture is built untrained and magnitude-pruned at the
    recipe's paper ratios — parity is a property of the execution kernels,
    not of training, so this covers every zoo model in seconds.
    """
    recipe = zoo.get_recipe(recipe_name)
    net = models.build_model(recipe.model, num_classes=recipe.num_classes, seed=31)
    for layer_name, ratio in recipe.pruning_ratios.items():
        pruned, _ = prune_weights(net.get_weights(layer_name), ratio)
        net.set_weights(layer_name, pruned)
    sparse_net = net.clone()
    for layer_name in recipe.pruning_ratios:
        sparse_net.set_sparse_weights(
            layer_name, encode_sparse(net.get_weights(layer_name))
        )
    rng = np.random.default_rng(77)
    if recipe.dataset == "mnist-like":
        x = rng.standard_normal((16, 1, 28, 28)).astype(np.float32)
    else:
        x = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
    return net, sparse_net, x


def ranked_topk(probs: np.ndarray, k: int) -> np.ndarray:
    """Top-k class indices per row, ranked (same kernel as topk_counts)."""
    k = min(k, probs.shape[1])
    top = np.argpartition(-probs, kth=k - 1, axis=1)[:, :k]
    return np.take_along_axis(
        top, np.argsort(-np.take_along_axis(probs, top, axis=1), axis=1), axis=1
    )


class TestZooParity:
    @pytest.mark.parametrize("name", ZOO_MODELS)
    def test_forward_outputs_match(self, name):
        dense, sparse, x = pruned_pair(name)
        out_dense = dense.forward(x)
        out_sparse = sparse.forward(x)
        assert np.abs(out_dense - out_sparse).max() <= _ATOL

    @pytest.mark.parametrize("name", ZOO_MODELS)
    def test_topk_predictions_identical(self, name):
        dense, sparse, x = pruned_pair(name)
        out_dense = dense.forward(x)
        out_sparse = sparse.forward(x)
        for k in (1, 5):
            assert np.array_equal(ranked_topk(out_dense, k), ranked_topk(out_sparse, k))
        # The shared accuracy-counting kernel agrees too.
        labels = np.arange(len(x)) % out_dense.shape[1]
        assert topk_counts(out_dense, labels, (1, 5)) == topk_counts(
            out_sparse, labels, (1, 5)
        )

    @pytest.mark.parametrize("name", ZOO_MODELS)
    def test_forward_collect_checkpoints_match(self, name):
        """The assessment engine's one-pass checkpointing works in sparse mode."""
        recipe = zoo.get_recipe(name)
        dense, sparse, x = pruned_pair(name)
        fc_names = list(recipe.pruning_ratios)
        out_sparse, checkpoints = sparse.forward_collect(x, fc_names)
        out_dense, dense_checkpoints = dense.forward_collect(x, fc_names)
        # Final outputs are probabilities: the absolute 1e-6 bar applies.
        assert np.abs(out_dense - out_sparse).max() <= _ATOL
        for layer_name in fc_names:
            # Checkpoints are raw activations (magnitudes of a few units
            # downstream of a sparse fc layer), so the bar is relative.
            assert np.allclose(
                checkpoints[layer_name],
                dense_checkpoints[layer_name],
                atol=1e-6,
                rtol=1e-5,
            )

    @pytest.mark.parametrize("name", ZOO_MODELS)
    def test_forward_from_resume_matches_full_forward(self, name):
        recipe = zoo.get_recipe(name)
        dense, sparse, x = pruned_pair(name)
        full = sparse.forward(x)
        _, checkpoints = sparse.forward_collect(x, list(recipe.pruning_ratios))
        for layer_name, activations in checkpoints.items():
            resumed = sparse.forward_from(layer_name, activations)
            assert np.array_equal(resumed, full)

    @pytest.mark.parametrize("name", ZOO_MODELS)
    def test_forward_from_weight_override_on_sparse_network(self, name):
        """A dense candidate override on a sparse network reproduces the
        dense network's evaluation — the assessment path over sparse serving."""
        recipe = zoo.get_recipe(name)
        dense, sparse, x = pruned_pair(name)
        layer_name = next(iter(recipe.pruning_ratios))
        candidate = dense.get_weights(layer_name)
        expected = dense.forward(x)
        got = sparse.forward_from(
            layer_name,
            sparse.forward_to(layer_name, x),
            weight_override=candidate,
        )
        assert np.abs(expected - got).max() <= _ATOL

    def test_sparse_weight_override_on_dense_network(self):
        dense, sparse, x = pruned_pair("lenet-300-100")
        candidate = encode_sparse(dense.get_weights("ip2"))
        expected = dense.forward(x)
        for override in (candidate, SparseWeight.from_sparse_layer(candidate)):
            got = dense.forward_from(
                "ip2", dense.forward_to("ip2", x), weight_override=override
            )
            assert np.abs(expected - got).max() <= _ATOL

    def test_sequence_weight_override_stays_on_dense_path(self):
        """A nested-list override (valid before the sparse engine: lists
        have an ``.index`` *method*) must still route through np.asarray."""
        dense, _, x = pruned_pair("lenet-300-100")
        candidate = dense.get_weights("ip2")
        got = dense.forward_from(
            "ip2", dense.forward_to("ip2", x), weight_override=candidate.tolist()
        )
        assert np.array_equal(got, dense.forward(x))


class TestSparseMode:
    def test_training_forward_raises(self):
        _, sparse, x = pruned_pair("lenet-300-100")
        with pytest.raises(ValidationError):
            sparse.forward(x, training=True)

    def test_backward_raises(self):
        _, sparse, _ = pruned_pair("lenet-300-100")
        with pytest.raises(ValidationError):
            sparse["ip1"].backward(np.zeros((4, 300), dtype=np.float32))

    def test_set_weights_returns_to_dense_mode(self):
        dense, sparse, x = pruned_pair("lenet-300-100")
        net = sparse.clone()
        assert net["ip1"].is_sparse
        net.set_weights("ip1", dense.get_weights("ip1"))
        assert not net["ip1"].is_sparse
        assert np.abs(net.forward(x) - dense.forward(x)).max() <= _ATOL

    def test_parameter_bytes_report_sparse_footprint(self):
        dense, sparse, _ = pruned_pair("lenet-300-100")
        assert sparse.parameter_bytes() < dense.parameter_bytes() / 4

    def test_get_weights_materialises_dense_copy(self):
        dense, sparse, _ = pruned_pair("lenet-300-100")
        assert np.array_equal(sparse.get_weights("ip1"), dense.get_weights("ip1"))

    def test_state_dict_round_trips_from_sparse_mode(self):
        dense, sparse, x = pruned_pair("lenet-300-100")
        restored = models.lenet_300_100(seed=99)
        restored.load_state_dict(sparse.state_dict())
        assert np.array_equal(restored.forward(x), dense.forward(x))


class TestTrainedModelServingParity:
    """Archive -> runtime -> network parity on a *trained* pruned model."""

    @pytest.fixture(scope="class")
    def archive_and_network(self, pruned_lenet300):
        model = DeepSZEncoder().encode(
            pruned_lenet300.network.name,
            pruned_lenet300.sparse_layers,
            {name: 1e-3 for name in pruned_lenet300.sparse_layers},
        )
        return model, pruned_lenet300.network

    def test_decoder_sparse_apply_matches_dense_apply(self, archive_and_network):
        model, network = archive_and_network
        decoder = DeepSZDecoder()
        net_dense, net_sparse = network.clone(), network.clone()
        decoder.apply(model, net_dense)
        decoded = decoder.apply(model, net_sparse, sparse=True)
        assert decoded.sparse
        x = np.random.default_rng(5).standard_normal((32, 1, 28, 28)).astype(np.float32)
        assert np.abs(net_dense.forward(x) - net_sparse.forward(x)).max() <= _ATOL

    def test_runtime_sparse_serving_matches_dense(
        self, archive_and_network, small_dataset
    ):
        model, network = archive_and_network
        _, test = small_dataset
        with ModelRuntime(model) as rt_dense, ModelRuntime(
            model, sparse=True
        ) as rt_sparse:
            net_dense, net_sparse = network.clone(), network.clone()
            rt_dense.load_into(net_dense)
            rt_sparse.load_into(net_sparse)
            probs_dense = net_dense.forward(test.images[:64])
            probs_sparse = net_sparse.forward(test.images[:64])
            assert np.abs(probs_dense - probs_sparse).max() <= _ATOL
            assert net_dense.evaluate(
                test.images, test.labels, topk=(1, 5)
            ) == net_sparse.evaluate(test.images, test.labels, topk=(1, 5))
            # The sparse cache is charged the CSC footprint, far below dense.
            assert (
                rt_sparse.stats().cache.current_bytes
                < rt_dense.stats().cache.current_bytes / 4
            )
