"""Tests for the paper-scale architecture specs and parameter serialization."""

import numpy as np
import pytest

from repro.nn import models, network_from_bytes, network_to_bytes, save_network, load_network
from repro.nn.serialize import state_dict_from_bytes, state_dict_to_bytes
from repro.nn.specs import (
    PAPER_EXPECTED_ACCURACY_LOSS,
    PAPER_PRUNING_RATIOS,
    all_specs,
    alexnet_spec,
    get_spec,
    lenet5_spec,
    lenet_300_100_spec,
    vgg16_spec,
)
from repro.utils.errors import DecompressionError, ValidationError


class TestSpecs:
    def test_four_networks(self):
        names = [s.name for s in all_specs()]
        assert names == ["LeNet-300-100", "LeNet-5", "AlexNet", "VGG-16"]

    def test_lookup_case_insensitive(self):
        assert get_spec("alexnet").name == "AlexNet"
        with pytest.raises(ValidationError):
            get_spec("GoogLeNet")

    def test_fc_shapes_match_table1(self):
        assert lenet_300_100_spec().fc_layer("ip1").shape == (300, 784)
        assert lenet5_spec().fc_layer("ip1").shape == (500, 800)
        assert alexnet_spec().fc_layer("fc6").shape == (4096, 9216)
        assert vgg16_spec().fc_layer("fc6").shape == (4096, 25088)

    def test_fc_sizes_match_table2(self):
        # Table 2 original sizes: AlexNet fc6 151 MB, fc7 67.1 MB, fc8 16.4 MB.
        alex = alexnet_spec()
        assert alex.fc_layer("fc6").weight_bytes == pytest.approx(151.0e6, rel=0.01)
        assert alex.fc_layer("fc7").weight_bytes == pytest.approx(67.1e6, rel=0.01)
        assert alex.fc_layer("fc8").weight_bytes == pytest.approx(16.4e6, rel=0.01)
        vgg = vgg16_spec()
        assert vgg.fc_layer("fc6").weight_bytes == pytest.approx(411.0e6, rel=0.01)
        # LeNet-300-100 ip1 941 KB.
        assert lenet_300_100_spec().fc_layer("ip1").weight_bytes == pytest.approx(941e3, rel=0.02)

    def test_fc_fraction_matches_table1(self):
        # Paper: 100%, ~95%, 96.1%, 89.4%.
        assert lenet_300_100_spec().fc_fraction == 1.0
        assert lenet5_spec().fc_fraction == pytest.approx(0.941, abs=0.02)
        assert alexnet_spec().fc_fraction == pytest.approx(0.961, abs=0.01)
        assert vgg16_spec().fc_fraction == pytest.approx(0.894, abs=0.01)

    def test_total_sizes_match_table1(self):
        # Paper totals: 1.1 MB, 1.7 MB, 243.9 MB, 553.4 MB.
        assert lenet_300_100_spec().total_bytes == pytest.approx(1.07e6, rel=0.05)
        assert alexnet_spec().total_bytes == pytest.approx(243.9e6, rel=0.02)
        assert vgg16_spec().total_bytes == pytest.approx(553.4e6, rel=0.02)

    def test_vgg16_has_13_convs(self):
        assert len(vgg16_spec().conv_layers) == 13
        assert len(alexnet_spec().conv_layers) == 5

    def test_unknown_fc_layer_raises(self):
        with pytest.raises(ValidationError):
            alexnet_spec().fc_layer("fc99")

    def test_paper_constants_cover_all_networks(self):
        for spec in all_specs():
            assert spec.name in PAPER_PRUNING_RATIOS
            assert spec.name in PAPER_EXPECTED_ACCURACY_LOSS
            for layer in PAPER_PRUNING_RATIOS[spec.name]:
                assert layer in spec.fc_layer_names


class TestSerialization:
    def test_state_dict_roundtrip(self, fresh_rng):
        state = {
            "a.weight": fresh_rng.normal(size=(4, 5)).astype(np.float32),
            "a.bias": fresh_rng.normal(size=5).astype(np.float32),
            "counts": np.arange(7, dtype=np.int64),
        }
        out = state_dict_from_bytes(state_dict_to_bytes(state))
        assert set(out) == set(state)
        for key in state:
            assert np.array_equal(out[key], state[key])
            assert out[key].dtype == state[key].dtype

    def test_network_bytes_roundtrip(self):
        net = models.lenet_300_100(seed=1)
        other = models.lenet_300_100(seed=2)
        network_from_bytes(network_to_bytes(net), other)
        assert np.array_equal(net.get_weights("ip2"), other.get_weights("ip2"))

    def test_save_load_file(self, tmp_path):
        net = models.lenet_300_100(seed=3)
        path = tmp_path / "model.bin"
        n = save_network(net, path)
        assert path.stat().st_size == n
        other = models.lenet_300_100(seed=4)
        load_network(path, other)
        assert np.array_equal(net.get_weights("ip1"), other.get_weights("ip1"))

    def test_load_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValidationError):
            load_network(path, models.lenet_300_100(seed=0))

    def test_corrupt_blob_raises(self):
        with pytest.raises(DecompressionError):
            state_dict_from_bytes(b"not a state dict")

    def test_flipped_parameter_byte_names_parameter(self, fresh_rng):
        state = {"ip1.weight": fresh_rng.normal(size=(6, 8)).astype(np.float32)}
        blob = bytearray(state_dict_to_bytes(state))
        blob[-5] ^= 0xFF  # inside the (single, last) parameter payload
        with pytest.raises(DecompressionError, match="'ip1.weight' failed CRC32"):
            state_dict_from_bytes(bytes(blob))

    def test_pre_checksum_blob_still_loads(self, fresh_rng):
        """Blobs written before crc32 metadata existed skip verification."""
        import json

        state = {"w": fresh_rng.normal(size=(3, 3)).astype(np.float32)}
        blob = bytearray(state_dict_to_bytes(state))
        header_len = int.from_bytes(blob[:8], "little")
        header = json.loads(bytes(blob[8 : 8 + header_len]))
        del header["meta"]["crc32"]
        stripped = json.dumps(header, sort_keys=True).encode()
        rebuilt = (
            len(stripped).to_bytes(8, "little") + stripped + bytes(blob[8 + header_len :])
        )
        out = state_dict_from_bytes(rebuilt)
        assert np.array_equal(out["w"], state["w"])

    def test_incompatible_architecture_raises(self):
        blob = network_to_bytes(models.lenet_300_100(seed=1))
        with pytest.raises(ValidationError):
            network_from_bytes(blob, models.lenet5(seed=1))
