"""Tests for the model zoo (recipes, caching)."""

import numpy as np
import pytest

from repro.nn import zoo
from repro.utils.errors import ValidationError


class TestRecipes:
    def test_four_recipes_cover_paper_networks(self):
        assert set(zoo.RECIPES) == {"lenet-300-100", "lenet-5", "alexnet-mini", "vgg-16-mini"}
        assert set(zoo.PAPER_NAME) == set(zoo.RECIPES)

    def test_fingerprint_is_stable_and_sensitive(self):
        r = zoo.get_recipe("lenet-300-100")
        assert r.fingerprint() == zoo.get_recipe("lenet-300-100").fingerprint()
        import dataclasses

        changed = dataclasses.replace(r, epochs=r.epochs + 1)
        assert changed.fingerprint() != r.fingerprint()

    def test_unknown_recipe_raises(self):
        with pytest.raises(ValidationError):
            zoo.get_recipe("resnet-152")

    def test_load_dataset_shapes(self):
        train, test = zoo.load_dataset(zoo.get_recipe("lenet-300-100"))
        assert train.image_shape == (1, 28, 28)
        assert len(train) > len(test) > 0

    def test_pruning_ratios_reference_real_layers(self):
        from repro.nn import models

        for name, recipe in zoo.RECIPES.items():
            net = models.build_model(recipe.model, num_classes=recipe.num_classes, seed=0)
            for layer in recipe.pruning_ratios:
                assert layer in net.fc_layer_names()


class TestCaching:
    def test_trained_model_cache_roundtrip(self, tmp_path, monkeypatch):
        """Train once with a throwaway 1-epoch recipe, reload from cache."""
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        import dataclasses

        fast = dataclasses.replace(
            zoo.get_recipe("lenet-300-100"), epochs=1, samples_per_class=40
        )
        monkeypatch.setitem(zoo.RECIPES, "tiny-test-model", fast)

        net1, _, test = zoo.trained_model("tiny-test-model")
        cached_files = list(tmp_path.glob("tiny-test-model-*-trained.bin"))
        assert len(cached_files) == 1

        net2, _, _ = zoo.trained_model("tiny-test-model")
        assert np.array_equal(net1.get_weights("ip1"), net2.get_weights("ip1"))

    def test_pruned_model_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        import dataclasses

        fast = dataclasses.replace(
            zoo.get_recipe("lenet-300-100"),
            epochs=1,
            retrain_epochs=1,
            samples_per_class=40,
        )
        monkeypatch.setitem(zoo.RECIPES, "tiny-test-model", fast)

        pruned1, _, _ = zoo.pruned_model("tiny-test-model")
        pruned2, _, _ = zoo.pruned_model("tiny-test-model")
        for layer in pruned1.sparse_layers:
            assert np.array_equal(
                pruned1.network.get_weights(layer), pruned2.network.get_weights(layer)
            )
            assert pruned1.sparse_layers[layer].nnz == pruned2.sparse_layers[layer].nnz
            # Masks reconstructed from the zero pattern match the originals.
            assert np.array_equal(pruned1.masks[layer], pruned2.masks[layer])
