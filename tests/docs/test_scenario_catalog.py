"""Doc-drift gate: every registered scenario is documented, and the
documented catalog names only real scenarios.

``docs/scenarios.md`` is the operator-facing catalog; a scenario that
ships in :mod:`repro.sim` without a catalog entry (or an entry whose
scenario was renamed away) fails CI here.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.sim.workload import SCENARIOS, list_scenarios

REPO_ROOT = Path(__file__).resolve().parents[2]
CATALOG = REPO_ROOT / "docs" / "scenarios.md"

#: Catalog entries are second-level headings of the form ``## `name` — ...``
_ENTRY_RE = re.compile(r"^## `([a-z0-9_-]+)`", re.MULTILINE)


def _documented() -> set:
    return set(_ENTRY_RE.findall(CATALOG.read_text(encoding="utf-8")))


def test_catalog_exists():
    assert CATALOG.is_file(), "docs/scenarios.md is missing"


def test_every_registered_scenario_is_documented():
    missing = set(list_scenarios()) - _documented()
    assert not missing, (
        f"scenarios registered in repro.sim but absent from docs/scenarios.md: "
        f"{sorted(missing)} — add a '## `<name>` — ...' entry"
    )


def test_catalog_documents_only_real_scenarios():
    stale = _documented() - set(list_scenarios())
    assert not stale, (
        f"docs/scenarios.md documents scenarios that no longer exist: "
        f"{sorted(stale)}"
    )


def test_catalog_mentions_every_default_parameter():
    # Each scenario's tunable knobs must appear in the catalog text, so an
    # operator can override them from a config file without reading source.
    text = CATALOG.read_text(encoding="utf-8")
    for name in list_scenarios():
        for param in SCENARIOS[name].defaults:
            assert f"`{param}`" in text, (
                f"parameter {param!r} of scenario {name!r} is undocumented "
                f"in docs/scenarios.md"
            )
