"""Markdown link check for the operator docs.

Every relative link in ``docs/*.md``, ``README.md`` and ``DESIGN.md``
must resolve to a real file, and every in-page anchor must match a
heading in the target document (GitHub slug rules).  External links are
not fetched — CI must not depend on the network.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

_DOCS = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md", REPO_ROOT / "ROADMAP.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:")


def _lines_outside_code_fences(text: str):
    fenced = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            yield line


def _github_slug(heading: str) -> str:
    # GitHub's anchor algorithm: strip markdown emphasis/code markers,
    # lowercase, drop punctuation, spaces become hyphens.
    heading = re.sub(r"[`*_]", "", heading.strip())
    heading = re.sub(r"[^\w\- ]", "", heading.lower())
    return heading.replace(" ", "-")


def _anchors(path: Path) -> set:
    anchors = set()
    for line in _lines_outside_code_fences(path.read_text(encoding="utf-8")):
        match = _HEADING_RE.match(line)
        if match:
            anchors.add(_github_slug(match.group(1)))
    return anchors


def _links(path: Path):
    for line in _lines_outside_code_fences(path.read_text(encoding="utf-8")):
        # ignore inline code spans: `[x](y)` inside backticks is not a link
        line = re.sub(r"`[^`]*`", "", line)
        yield from _LINK_RE.findall(line)


@pytest.mark.parametrize("doc", _DOCS, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc):
    assert doc.is_file(), f"{doc} listed for link-check but missing"
    broken = []
    for target in _links(doc):
        if target.startswith(_EXTERNAL):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = doc if not path_part else (doc.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(f"{target}: file {resolved} does not exist")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in _anchors(resolved):
                broken.append(f"{target}: no heading for anchor #{anchor}")
    assert not broken, f"broken links in {doc.name}: " + "; ".join(broken)


def test_docs_are_linked_from_readme():
    # The methodology/catalog guides must be reachable from the front page.
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for name in ("docs/benchmarking.md", "docs/scenarios.md"):
        assert name in readme, f"README.md does not link {name}"
