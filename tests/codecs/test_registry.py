"""Tests for the unified codec registry and its built-in adapters."""

import numpy as np
import pytest

from repro.codecs import (
    Codec,
    CodecInfo,
    available_codecs,
    best_fit_lossless,
    codec_info,
    get_codec,
    register_codec,
    unregister_codec,
)
from repro.sz.compressor import SZCompressor
from repro.sz.config import SZConfig
from repro.sz.lossless import best_fit_backend
from repro.utils.errors import ConfigurationError
from repro.zfp.codec import ZFPCompressor, ZFPConfig




def _bound_tolerance(data, eb):
    """Bound + half-ULP slack: the codecs guarantee the bound in double
    precision; the float32 cast of the output can add half a ULP of the
    value itself (same convention as tests/properties/test_codec_properties)."""
    import numpy as _np

    scale = float(_np.max(_np.abs(data))) if data.size else 0.0
    return eb * (1 + 1e-5) + _np.finfo(_np.float32).eps * scale


@pytest.fixture
def small_array():
    rng = np.random.default_rng(42)
    return (rng.standard_normal(4096) * 0.1).astype(np.float32)


class TestRegistryLookup:
    def test_builtin_codecs_registered(self):
        names = available_codecs()
        for expected in ("sz", "zfp", "zlib", "lzma", "bz2", "store"):
            assert expected in names

    def test_unknown_codec_raises(self):
        with pytest.raises(ConfigurationError, match="unknown codec"):
            get_codec("no-such-codec")

    def test_aliases_resolve_to_canonical(self):
        assert get_codec("gzip") is get_codec("zlib")
        assert get_codec("zstd-like") is get_codec("lzma")

    def test_capability_filters(self):
        assert available_codecs(error_bounded=True) == ["sz", "zfp"]
        lossless = available_codecs(lossless=True, input_kind="bytes")
        assert "zlib" in lossless and "sz" not in lossless
        assert available_codecs(chunked=True) == ["sz"]

    def test_codec_info(self):
        info = codec_info("sz")
        assert info.error_bounded and info.chunked and not info.lossless
        assert codec_info("zlib").input_kind == "bytes"

    def test_register_and_unregister_custom_codec(self):
        class EchoCodec(Codec):
            info = CodecInfo(name="echo-test", lossless=True, input_kind="bytes",
                             aliases=("echo-alias",))

            def compress(self, data, **options):
                return bytes(data)

            def decompress(self, payload, **options):
                return payload

        register_codec(EchoCodec())
        try:
            assert get_codec("echo-test").compress(b"abc") == b"abc"
            assert get_codec("echo-alias") is get_codec("echo-test")
        finally:
            unregister_codec("echo-test")
        with pytest.raises(ConfigurationError):
            get_codec("echo-test")
        with pytest.raises(ConfigurationError):
            get_codec("echo-alias")


class TestSZAdapter:
    def test_payload_matches_direct_compressor(self, small_array):
        codec = get_codec("sz")
        payload = codec.compress(small_array, error_bound=1e-3, lossless="zlib")
        direct = SZCompressor(SZConfig(error_bound=1e-3, lossless="zlib"))
        assert payload == direct.compress(small_array).payload

    def test_round_trip_respects_bound(self, small_array):
        codec = get_codec("sz")
        payload = codec.compress(small_array, error_bound=5e-4)
        out = codec.decompress(payload)
        assert np.abs(out - small_array).max() <= _bound_tolerance(small_array, 5e-4)

    def test_chunked_options_flow_through(self, small_array):
        codec = get_codec("sz")
        payload = codec.compress(
            small_array, error_bound=1e-3, chunk_size=1000, workers=2
        )
        serial = codec.compress(small_array, error_bound=1e-3, chunk_size=1000)
        assert payload == serial
        assert np.abs(codec.decompress(payload, workers=2) - small_array).max() <= _bound_tolerance(small_array, 1e-3)

    def test_ignores_unknown_options(self, small_array):
        codec = get_codec("sz")
        payload = codec.compress(small_array, error_bound=1e-3, rate_bits=None)
        assert codec.decompress(payload).size == small_array.size


class TestZFPAdapter:
    def test_payload_matches_direct_compressor(self, small_array):
        codec = get_codec("zfp")
        payload = codec.compress(small_array, error_bound=1e-3)
        direct = ZFPCompressor(ZFPConfig(tolerance=1e-3)).compress(small_array)
        assert payload == direct.payload

    def test_round_trip_respects_tolerance(self, small_array):
        codec = get_codec("zfp")
        out = codec.decompress(codec.compress(small_array, error_bound=1e-3))
        assert np.abs(out - small_array).max() <= _bound_tolerance(small_array, 1e-3)

    def test_fixed_rate_option(self, small_array):
        codec = get_codec("zfp")
        payload = codec.compress(small_array, rate_bits=12)
        assert codec.decompress(payload).size == small_array.size


class TestLosslessAdapters:
    def test_round_trip(self):
        data = b"the quick brown fox " * 100
        for name in available_codecs(lossless=True, input_kind="bytes"):
            codec = get_codec(name)
            assert codec.decompress(codec.compress(data)) == data

    def test_best_fit_matches_lossless_registry(self):
        data = bytes(range(256)) * 64
        name, payload = best_fit_lossless(data)
        backend, expected = best_fit_backend(data)
        assert name == backend.name
        assert payload == expected

    def test_best_fit_with_candidates(self):
        data = b"\x00" * 4096
        name, payload = best_fit_lossless(data, ["zlib", "store"])
        assert name == "zlib"
        assert len(payload) < len(data)

    def test_best_fit_empty_candidates(self):
        with pytest.raises(ConfigurationError):
            best_fit_lossless(b"data", [])


class TestRuntimeBackendBridge:
    def test_runtime_lossless_backend_visible_in_codec_registry(self):
        from repro.sz.lossless import LosslessBackend, register_backend, _REGISTRY

        register_backend(LosslessBackend("toy-echo", lambda b: b, lambda b: b))
        try:
            codec = get_codec("toy-echo")
            assert codec.info.lossless and codec.info.input_kind == "bytes"
            assert codec.decompress(codec.compress(b"payload")) == b"payload"
            name, _ = best_fit_lossless(b"x" * 100, ["zlib", "toy-echo"])
            assert name in ("zlib", "toy-echo")
        finally:
            _REGISTRY.pop("toy-echo", None)
            unregister_codec("toy-echo")
