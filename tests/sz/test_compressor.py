"""Tests for the end-to-end SZ compressor."""

import numpy as np
import pytest

from repro.sz import (
    ErrorMode,
    PredictorKind,
    SZCompressor,
    SZConfig,
    compress,
    decompress,
)
from repro.analysis.metrics import psnr
from repro.utils.errors import ConfigurationError, DecompressionError, ValidationError


class TestConfig:
    def test_defaults(self):
        cfg = SZConfig()
        assert cfg.mode is ErrorMode.ABS
        assert cfg.predictor is PredictorKind.ADAPTIVE

    def test_string_enums_coerced(self):
        cfg = SZConfig(mode="rel", predictor="none")
        assert cfg.mode is ErrorMode.REL
        assert cfg.predictor is PredictorKind.NONE

    def test_with_error_bound(self):
        cfg = SZConfig(error_bound=1e-3)
        assert cfg.with_error_bound(1e-2).error_bound == 1e-2
        assert cfg.error_bound == 1e-3

    def test_invalid_error_bound(self):
        with pytest.raises(ValidationError):
            SZConfig(error_bound=0)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            SZConfig(capacity=3)
        with pytest.raises(ConfigurationError):
            SZConfig(capacity=101)

    def test_absolute_bound_resolution_rel(self):
        data = np.array([0.0, 2.0], dtype=np.float32)
        cfg = SZConfig(error_bound=0.01, mode=ErrorMode.REL)
        assert cfg.absolute_bound(data) == pytest.approx(0.02)

    def test_absolute_bound_resolution_psnr(self):
        data = np.array([-1.0, 1.0], dtype=np.float32)
        cfg = SZConfig(error_bound=60.0, mode=ErrorMode.PSNR)
        bound = cfg.absolute_bound(data)
        assert 0 < bound < 0.01


class TestRoundtrip:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3, 1e-4])
    def test_error_bound_respected(self, weight_array, eb):
        result = compress(weight_array, eb)
        recon = decompress(result.payload)
        assert recon.shape == weight_array.shape
        assert recon.dtype == np.float32
        err = np.max(np.abs(recon.astype(np.float64) - weight_array.astype(np.float64)))
        assert err <= eb * (1 + 1e-5)

    def test_empty_array(self):
        result = compress(np.zeros(0, dtype=np.float32), 1e-3)
        assert decompress(result.payload).size == 0

    def test_single_value(self):
        result = compress(np.array([0.123], dtype=np.float32), 1e-3)
        recon = decompress(result.payload)
        assert abs(float(recon[0]) - 0.123) <= 1e-3

    def test_constant_array(self):
        data = np.full(1000, 0.05, dtype=np.float32)
        recon = decompress(compress(data, 1e-3).payload)
        assert np.max(np.abs(recon - data)) <= 1e-3

    def test_2d_input_flattened(self, rng):
        data = rng.normal(0, 0.02, (50, 40)).astype(np.float32)
        result = compress(data, 1e-3)
        assert decompress(result.payload).shape == (2000,)

    def test_outlier_heavy_data(self, rng):
        data = rng.normal(0, 0.01, 5000).astype(np.float32)
        data[::100] = rng.normal(0, 100.0, 50).astype(np.float32)
        cfg = SZConfig(error_bound=1e-3, capacity=256)
        comp = SZCompressor(cfg)
        result = comp.compress(data)
        assert result.outlier_count > 0
        recon = comp.decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - data)) <= 1e-3 * (1 + 1e-5)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            compress(np.array([np.nan, 1.0], dtype=np.float32), 1e-3)


class TestModes:
    def test_relative_mode_scales_with_range(self, rng):
        data = (rng.normal(0, 1.0, 10_000) * 5).astype(np.float32)
        cfg = SZConfig(error_bound=1e-3, mode=ErrorMode.REL)
        result = SZCompressor(cfg).compress(data)
        value_range = float(data.max() - data.min())
        assert result.absolute_bound == pytest.approx(1e-3 * value_range, rel=1e-6)

    def test_psnr_mode_achieves_target(self, weight_array):
        target = 70.0
        cfg = SZConfig(error_bound=target, mode=ErrorMode.PSNR)
        comp = SZCompressor(cfg)
        result = comp.compress(weight_array)
        recon = comp.decompress(result.payload)
        achieved = psnr(weight_array, recon)
        assert achieved >= target - 1.0  # uniform-noise model is slightly conservative

    def test_no_prediction_mode_roundtrip(self, weight_array):
        cfg = SZConfig(error_bound=1e-3, predictor=PredictorKind.NONE)
        comp = SZCompressor(cfg)
        recon = comp.decompress(comp.compress(weight_array).payload)
        assert np.max(np.abs(recon - weight_array)) <= 1e-3 * (1 + 1e-5)

    def test_best_lossless_selection(self, weight_array):
        cfg = SZConfig(error_bound=1e-2, lossless="best")
        result = SZCompressor(cfg).compress(weight_array)
        assert result.lossless_backend in ("store", "zlib", "lzma", "bz2")
        assert np.max(np.abs(SZCompressor().decompress(result.payload) - weight_array)) <= 1e-2 * (
            1 + 1e-5
        )


class TestRatioBehaviour:
    def test_larger_bound_gives_larger_ratio(self, weight_array):
        r_small = compress(weight_array, 1e-4).ratio
        r_mid = compress(weight_array, 1e-3).ratio
        r_large = compress(weight_array, 1e-2).ratio
        assert r_large > r_mid > r_small > 1.0

    def test_result_metadata(self, weight_array):
        result = compress(weight_array, 1e-3)
        assert result.original_bytes == weight_array.size * 4
        assert result.compressed_bytes == len(result.payload)
        assert result.bits_per_value == pytest.approx(
            8 * result.compressed_bytes / weight_array.size
        )

    def test_beats_lossless_only(self, weight_array):
        import zlib

        lossless_ratio = weight_array.nbytes / len(zlib.compress(weight_array.tobytes()))
        assert compress(weight_array, 1e-3).ratio > lossless_ratio


class TestCorruption:
    def test_bad_magic_raises(self, weight_array):
        with pytest.raises(DecompressionError):
            decompress(b"garbage that is definitely not an SZ stream")

    def test_truncated_payload_raises(self, weight_array):
        payload = compress(weight_array, 1e-3).payload
        with pytest.raises(DecompressionError):
            decompress(payload[: len(payload) // 3])
