"""Tests for the SZ quantizer and Lorenzo predictor."""

import numpy as np
import pytest

from repro.sz.predictor import lorenzo_decode, lorenzo_encode
from repro.sz.quantizer import LinearQuantizer
from repro.utils.errors import CompressionError, ValidationError


class TestLorenzo:
    def test_roundtrip(self, rng):
        codes = rng.integers(-1000, 1000, size=10_000).astype(np.int64)
        assert np.array_equal(lorenzo_decode(lorenzo_encode(codes)), codes)

    def test_empty(self):
        assert lorenzo_encode(np.zeros(0, dtype=np.int64)).size == 0
        assert lorenzo_decode(np.zeros(0, dtype=np.int64)).size == 0

    def test_first_element_is_kept(self):
        out = lorenzo_encode(np.array([7, 9, 9, 4]))
        assert out.tolist() == [7, 2, 0, -5]

    def test_constant_input_gives_zero_residuals(self):
        out = lorenzo_encode(np.full(100, 3, dtype=np.int64))
        assert out[0] == 3
        assert not out[1:].any()

    def test_smooth_data_shrinks_residual_range(self, rng):
        codes = np.cumsum(rng.integers(-2, 3, size=1000)).astype(np.int64)
        residuals = lorenzo_encode(codes)
        assert np.abs(residuals[1:]).max() <= 2

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            lorenzo_encode(np.zeros((3, 3), dtype=np.int64))


class TestLinearQuantizer:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3, 1e-4])
    def test_error_bound_respected(self, rng, eb):
        data = rng.normal(0, 0.05, 10_000)
        q = LinearQuantizer(eb)
        result = q.quantize(data)
        recon = q.dequantize(result.codes, result.outlier_mask, result.outliers)
        assert np.max(np.abs(recon.astype(np.float64) - data)) <= eb * (1 + 1e-5)

    def test_outliers_reconstructed_exactly(self):
        data = np.array([0.0, 0.001, 500.0, -0.002, -750.0], dtype=np.float64)
        q = LinearQuantizer(1e-3, capacity=1024)
        result = q.quantize(data)
        assert result.outlier_count == 2
        recon = q.dequantize(result.codes, result.outlier_mask, result.outliers)
        assert recon[2] == np.float32(500.0)
        assert recon[4] == np.float32(-750.0)

    def test_no_outliers_within_capacity(self, rng):
        data = rng.uniform(-0.3, 0.3, 1000)
        result = LinearQuantizer(1e-3, capacity=65536).quantize(data)
        assert result.outlier_count == 0

    def test_empty_input(self):
        q = LinearQuantizer(1e-3)
        result = q.quantize(np.zeros(0))
        assert result.codes.size == 0
        assert q.dequantize(result.codes).size == 0

    def test_zero_is_preserved_exactly(self):
        q = LinearQuantizer(1e-2)
        result = q.quantize(np.zeros(10))
        recon = q.dequantize(result.codes)
        assert not recon.any()

    def test_invalid_error_bound(self):
        with pytest.raises(ValidationError):
            LinearQuantizer(0.0)
        with pytest.raises(ValidationError):
            LinearQuantizer(-1e-3)

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            LinearQuantizer(1e-3, capacity=3)
        with pytest.raises(ValidationError):
            LinearQuantizer(1e-3, capacity=7)

    def test_overflow_guard(self):
        q = LinearQuantizer(1e-300)
        with pytest.raises(CompressionError):
            q.quantize(np.array([1e30]))

    def test_mask_population_mismatch_raises(self):
        q = LinearQuantizer(1e-3)
        with pytest.raises(ValidationError):
            q.dequantize(
                np.zeros(4, dtype=np.int64),
                np.array([True, False, False, False]),
                np.zeros(2, dtype=np.float32),
            )

    def test_reconstruction_error_helper(self, rng):
        data = rng.normal(0, 0.1, 100)
        q = LinearQuantizer(1e-2)
        r = q.quantize(data)
        recon = q.dequantize(r.codes, r.outlier_mask, r.outliers)
        assert q.reconstruction_error(data, recon) <= 1e-2 * (1 + 1e-5)
        with pytest.raises(ValidationError):
            q.reconstruction_error(data, recon[:-1])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            LinearQuantizer(1e-3).quantize(np.zeros((2, 2)))
