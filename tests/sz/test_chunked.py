"""Robustness tests for the chunked SZ v2 container.

Covers the satellite checklist: empty arrays, single-chunk payloads,
chunk-boundary sizes, all-outlier chunks, v1 backward-compatible decode
(including golden payloads produced by the pre-chunking code), and
truncated-payload error paths.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.sz.compressor import SZCompressor, compress, decompress
from repro.sz.config import SZConfig
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import ConfigurationError, DecompressionError

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def _bound_tolerance(data, eb):
    """Bound + half-ULP slack: the codecs guarantee the bound in double
    precision; the float32 cast of the output can add half a ULP of the
    value itself (same convention as tests/properties/test_codec_properties)."""
    import numpy as _np

    scale = float(_np.max(_np.abs(data))) if data.size else 0.0
    return eb * (1 + 1e-5) + _np.finfo(_np.float32).eps * scale


def golden_input() -> np.ndarray:
    """The array the golden v1 payloads were generated from (seeded RNG)."""
    rng = np.random.default_rng(1234)
    data = (rng.standard_normal(2000) * 0.05).astype(np.float32)
    data[::97] *= 50.0
    return data


@pytest.fixture
def payload_data():
    rng = np.random.default_rng(99)
    return (rng.standard_normal(10_000) * 0.2).astype(np.float32)


class TestChunkedRoundTrip:
    @pytest.mark.parametrize("size", [0, 1, 2, 999, 1000, 1001, 2000, 5003])
    def test_boundary_sizes(self, size):
        rng = np.random.default_rng(size)
        data = (rng.standard_normal(size) * 0.1).astype(np.float32)
        cfg = SZConfig(error_bound=1e-3, chunk_size=1000)
        res = SZCompressor(cfg).compress(data)
        out = SZCompressor().decompress(res.payload)
        assert out.size == size
        if size:
            assert np.abs(out - data).max() <= _bound_tolerance(data, 1e-3)
        # num_chunks mirrors the container meta exactly: 0 for an empty array.
        assert res.num_chunks == -(-size // 1000)

    def test_empty_array(self):
        res = SZCompressor(SZConfig(chunk_size=64)).compress(np.zeros(0, np.float32))
        out = SZCompressor().decompress(res.payload)
        assert out.size == 0 and out.dtype == np.float32

    def test_single_chunk_still_v2_container(self, payload_data):
        res = SZCompressor(SZConfig(error_bound=1e-3, chunk_size=1 << 20)).compress(
            payload_data
        )
        meta, _ = read_named_sections(res.payload)
        assert meta["magic"] == "repro-sz-v2"
        assert meta["num_chunks"] == 1
        out = SZCompressor().decompress(res.payload)
        assert np.abs(out - payload_data).max() <= _bound_tolerance(payload_data, 1e-3)

    def test_all_outlier_chunks(self):
        # Tiny capacity forces every value through the unpredictable path.
        rng = np.random.default_rng(3)
        data = (rng.standard_normal(500) * 100).astype(np.float32)
        cfg = SZConfig(error_bound=1e-6, capacity=4, chunk_size=100, predictor="none")
        res = SZCompressor(cfg).compress(data)
        assert res.outlier_count == data.size
        out = SZCompressor().decompress(res.payload)
        np.testing.assert_array_equal(out, data)  # outliers are stored exactly

    def test_rel_mode_uses_global_range(self):
        # A REL bound must resolve against the whole array, not per chunk:
        # chunk 0 (tiny values) and chunk 1 (huge values) share one bound.
        data = np.concatenate(
            [np.linspace(0, 1e-3, 500), np.linspace(0, 100.0, 500)]
        ).astype(np.float32)
        cfg = SZConfig(error_bound=1e-4, mode="rel", chunk_size=500)
        res = SZCompressor(cfg).compress(data)
        v1 = SZCompressor(SZConfig(error_bound=1e-4, mode="rel")).compress(data)
        assert res.absolute_bound == pytest.approx(v1.absolute_bound)
        out = SZCompressor().decompress(res.payload)
        assert np.abs(out - data).max() <= _bound_tolerance(data, res.absolute_bound)

    def test_chunked_matches_v1_reconstruction(self, payload_data):
        v1 = SZCompressor(SZConfig(error_bound=1e-3)).compress(payload_data)
        v2 = SZCompressor(SZConfig(error_bound=1e-3, chunk_size=1024)).compress(
            payload_data
        )
        np.testing.assert_array_equal(
            SZCompressor().decompress(v1.payload),
            SZCompressor().decompress(v2.payload),
        )

    def test_parallel_payload_identity(self, payload_data):
        cfg = SZConfig(error_bound=1e-3, chunk_size=997)
        serial = SZCompressor(cfg).compress(payload_data, workers=1)
        parallel = SZCompressor(cfg).compress(payload_data, workers=3)
        assert serial.payload == parallel.payload
        np.testing.assert_array_equal(
            decompress(serial.payload, workers=1),
            decompress(serial.payload, workers=3),
        )

    def test_best_fit_lossless_per_chunk(self, payload_data):
        cfg = SZConfig(error_bound=1e-3, chunk_size=2500, lossless="best")
        res = SZCompressor(cfg).compress(payload_data)
        out = SZCompressor().decompress(res.payload)
        assert np.abs(out - payload_data).max() <= _bound_tolerance(payload_data, 1e-3)

    def test_convenience_wrappers(self, payload_data):
        res = compress(payload_data, error_bound=1e-3, chunk_size=3000, workers=2)
        assert res.num_chunks == 4
        out = decompress(res.payload, workers=2)
        assert np.abs(out - payload_data).max() <= _bound_tolerance(payload_data, 1e-3)

    def test_chunk_size_validation(self):
        with pytest.raises(ConfigurationError):
            SZConfig(chunk_size=0)
        with pytest.raises(ConfigurationError):
            SZConfig(chunk_size=-5)

    def test_unknown_lossless_fails_at_config_time(self):
        with pytest.raises(ConfigurationError):
            SZConfig(lossless="no-such-backend")


class TestV1BackwardCompat:
    @pytest.mark.parametrize("predictor", ["adaptive", "lorenzo", "none", "best"])
    def test_golden_seed_payloads_decode(self, predictor):
        """Payloads produced by the pre-chunking code decode within bound."""
        blob = (GOLDEN_DIR / f"golden_sz_v1_{predictor}.bin").read_bytes()
        data = golden_input()
        out = SZCompressor().decompress(blob)
        assert out.size == data.size
        assert np.abs(out - data).max() <= _bound_tolerance(data, 1e-3)

    def test_golden_payload_bit_exact_vs_fresh_encode(self):
        """The current v1 path still emits the seed era's exact bytes."""
        blob = (GOLDEN_DIR / "golden_sz_v1_adaptive.bin").read_bytes()
        cfg = SZConfig(error_bound=1e-3, predictor="adaptive", lossless="zlib")
        fresh = SZCompressor(cfg).compress(golden_input())
        assert fresh.payload == blob
        np.testing.assert_array_equal(
            SZCompressor().decompress(blob),
            SZCompressor().decompress(fresh.payload),
        )

    def test_default_config_still_emits_v1(self, payload_data):
        res = SZCompressor(SZConfig(error_bound=1e-3)).compress(payload_data)
        meta, _ = read_named_sections(res.payload)
        assert meta["magic"] == "repro-sz-v1"
        assert res.num_chunks == 1


class TestTruncationAndCorruption:
    def _chunked_payload(self):
        rng = np.random.default_rng(11)
        data = (rng.standard_normal(4000) * 0.1).astype(np.float32)
        return SZCompressor(SZConfig(error_bound=1e-3, chunk_size=1000)).compress(data)

    @pytest.mark.parametrize("keep", [1, 7, 64, 200])
    def test_truncated_payload_raises(self, keep):
        payload = self._chunked_payload().payload
        assert keep < len(payload)
        with pytest.raises(DecompressionError):
            SZCompressor().decompress(payload[:keep])

    def test_truncated_tail_raises(self):
        payload = self._chunked_payload().payload
        with pytest.raises(DecompressionError):
            SZCompressor().decompress(payload[:-10])

    def test_bad_magic_raises(self):
        blob = write_named_sections({"body": b""}, meta={"magic": "not-sz"})
        with pytest.raises(DecompressionError, match="bad magic"):
            SZCompressor().decompress(blob)

    def test_missing_chunk_raises(self):
        payload = self._chunked_payload().payload
        meta, sections = read_named_sections(payload)
        del sections["chunk/2"]
        with pytest.raises(DecompressionError, match="chunk"):
            SZCompressor().decompress(write_named_sections(sections, meta=meta))

    def test_corrupt_chunk_index_raises(self):
        payload = self._chunked_payload().payload
        meta, sections = read_named_sections(payload)
        meta["chunk_counts"] = meta["chunk_counts"][:-1]
        with pytest.raises(DecompressionError, match="chunk index"):
            SZCompressor().decompress(write_named_sections(sections, meta=meta))

    def test_chunk_count_mismatch_raises(self):
        payload = self._chunked_payload().payload
        meta, sections = read_named_sections(payload)
        counts = list(meta["chunk_counts"])
        counts[0] += 5
        counts[1] -= 5
        meta["chunk_counts"] = counts
        with pytest.raises(DecompressionError):
            SZCompressor().decompress(write_named_sections(sections, meta=meta))

    def test_garbage_bytes_raise(self):
        with pytest.raises(DecompressionError):
            SZCompressor().decompress(b"\x00\x01\x02garbage")
