"""Tests for the lossless back-end registry and best-fit selection."""

import numpy as np
import pytest

from repro.sz.lossless import (
    LosslessBackend,
    available_backends,
    best_fit_backend,
    get_backend,
    register_backend,
)
from repro.utils.errors import ConfigurationError, DecompressionError


class TestRegistry:
    def test_standard_backends_registered(self):
        names = available_backends()
        for expected in ("store", "zlib", "lzma", "bz2"):
            assert expected in names

    def test_aliases_resolve(self):
        assert get_backend("gzip").name == "zlib"
        assert get_backend("zstd-like").name == "lzma"
        assert get_backend("blosc-like").name == "bz2"

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            get_backend("nope")

    def test_register_custom_backend(self):
        register_backend(LosslessBackend("identity-test", lambda b: b, lambda b: b))
        try:
            assert get_backend("identity-test").compress(b"abc") == b"abc"
        finally:
            # Remove so other tests see the standard registry.
            from repro.sz import lossless

            lossless._REGISTRY.pop("identity-test", None)


class TestBackends:
    @pytest.mark.parametrize("name", ["store", "zlib", "lzma", "bz2"])
    def test_roundtrip(self, name, rng):
        backend = get_backend(name)
        payload = rng.integers(0, 8, size=20_000, dtype=np.uint8).tobytes()
        assert backend.decompress(backend.compress(payload)) == payload

    @pytest.mark.parametrize("name", ["zlib", "lzma", "bz2"])
    def test_compresses_redundant_data(self, name):
        backend = get_backend(name)
        payload = b"\x01\x02\x03\x04" * 10_000
        assert len(backend.compress(payload)) < len(payload) / 10

    @pytest.mark.parametrize("name", ["zlib", "lzma", "bz2"])
    def test_corrupt_stream_raises(self, name):
        backend = get_backend(name)
        with pytest.raises(DecompressionError):
            backend.decompress(b"this is not a valid stream")

    def test_ratio_helper(self):
        backend = get_backend("zlib")
        assert backend.ratio(b"a" * 10_000) > 10
        assert backend.ratio(b"") == 1.0


class TestBestFit:
    def test_best_fit_picks_smallest(self, rng):
        # Low-entropy index-array-like payload: a real codec must beat store.
        payload = rng.integers(1, 12, size=50_000, dtype=np.uint8).tobytes()
        backend, blob = best_fit_backend(payload)
        assert backend.name != "store"
        assert len(blob) < len(payload)
        assert get_backend(backend.name).decompress(blob) == payload

    def test_best_fit_with_candidate_subset(self):
        payload = b"\x00" * 1000
        backend, _ = best_fit_backend(payload, candidates=["store", "zlib"])
        assert backend.name == "zlib"

    def test_best_fit_empty_candidates_raises(self):
        with pytest.raises(ConfigurationError):
            best_fit_backend(b"data", candidates=[])
