"""Tests for the adaptive (Lorenzo vs regression) predictor."""

import numpy as np
import pytest

from repro.sz import SZCompressor, SZConfig, compress
from repro.sz.regression import (
    AdaptivePrediction,
    adaptive_decode,
    adaptive_encode,
)
from repro.utils.errors import DecompressionError, ValidationError


class TestAdaptiveEncodeDecode:
    def test_roundtrip_random_codes(self, rng):
        codes = rng.integers(-500, 500, size=5000).astype(np.int64)
        assert np.array_equal(adaptive_decode(adaptive_encode(codes)), codes)

    def test_roundtrip_linear_trend(self):
        codes = (np.arange(3000) * 3 + 17).astype(np.int64)
        prediction = adaptive_encode(codes)
        assert np.array_equal(adaptive_decode(prediction), codes)
        # A perfectly linear signal is never won by the direct (no-prediction)
        # mode; regression and Lorenzo split it.
        assert prediction.mode_fractions["direct"] < 0.1

    def test_noise_codes_prefer_direct_mode(self, rng):
        codes = np.rint(rng.normal(0, 3, size=8192)).astype(np.int64)
        prediction = adaptive_encode(codes)
        assert prediction.mode_fractions["direct"] > 0.8

    def test_quadratic_codes_prefer_regression_mode(self):
        # Strong curvature: Lorenzo diffs keep growing, a per-block linear fit
        # tracks it much better, and direct coding is hopeless.
        codes = ((np.arange(8192) ** 2) // 50).astype(np.int64)
        prediction = adaptive_encode(codes, block_size=64)
        assert prediction.mode_fractions["regression"] > 0.5

    def test_roundtrip_noise_like_weights(self, rng):
        codes = np.rint(rng.normal(0, 2, size=4096)).astype(np.int64)
        prediction = adaptive_encode(codes)
        assert np.array_equal(adaptive_decode(prediction), codes)

    def test_roundtrip_partial_last_block(self, rng):
        codes = rng.integers(-5, 5, size=1000).astype(np.int64)  # not a multiple of 256
        assert np.array_equal(adaptive_decode(adaptive_encode(codes)), codes)

    def test_roundtrip_shorter_than_one_block(self, rng):
        codes = rng.integers(-5, 5, size=17).astype(np.int64)
        assert np.array_equal(adaptive_decode(adaptive_encode(codes)), codes)

    def test_empty(self):
        prediction = adaptive_encode(np.zeros(0, dtype=np.int64))
        assert prediction.count == 0
        assert adaptive_decode(prediction).size == 0

    def test_custom_block_size(self, rng):
        codes = rng.integers(-100, 100, size=2000).astype(np.int64)
        prediction = adaptive_encode(codes, block_size=64)
        assert prediction.block_size == 64
        assert prediction.num_blocks == (2000 + 63) // 64
        assert np.array_equal(adaptive_decode(prediction), codes)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            adaptive_encode(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ValidationError):
            adaptive_encode(np.zeros(10, dtype=np.int64), block_size=2)

    def test_corrupt_prediction_rejected(self, rng):
        codes = rng.integers(-5, 5, size=600).astype(np.int64)
        prediction = adaptive_encode(codes)
        broken = AdaptivePrediction(
            residuals=prediction.residuals[:-1],
            modes=prediction.modes,
            coefficients=prediction.coefficients,
            block_size=prediction.block_size,
            count=prediction.count,
        )
        with pytest.raises(DecompressionError):
            adaptive_decode(broken)

    def test_mismatched_coefficients_rejected(self, rng):
        codes = (np.arange(600) * 5).astype(np.int64)
        prediction = adaptive_encode(codes)
        if prediction.coefficients.shape[0] == 0:
            pytest.skip("no regression blocks chosen for this input")
        broken = AdaptivePrediction(
            residuals=prediction.residuals,
            modes=prediction.modes,
            coefficients=prediction.coefficients[:-1],
            block_size=prediction.block_size,
            count=prediction.count,
        )
        with pytest.raises(DecompressionError):
            adaptive_decode(broken)

    def test_unknown_mode_rejected(self, rng):
        codes = rng.integers(-5, 5, size=600).astype(np.int64)
        prediction = adaptive_encode(codes)
        bad_modes = prediction.modes.copy()
        bad_modes[0] = 7
        broken = AdaptivePrediction(
            residuals=prediction.residuals,
            modes=bad_modes,
            coefficients=prediction.coefficients,
            block_size=prediction.block_size,
            count=prediction.count,
        )
        with pytest.raises(DecompressionError):
            adaptive_decode(broken)


class TestAdaptiveInsideSZ:
    @pytest.mark.parametrize("eb", [1e-2, 1e-3])
    def test_error_bound_respected(self, weight_array, eb):
        comp = SZCompressor(SZConfig(error_bound=eb, predictor="adaptive"))
        recon = comp.decompress(comp.compress(weight_array).payload)
        assert np.max(np.abs(recon.astype(np.float64) - weight_array)) <= eb * (1 + 1e-5)

    def test_adaptive_tracks_best_fixed_predictor_on_smooth_data(self):
        """On strongly trended data the adaptive predictor tracks plain Lorenzo."""
        t = np.linspace(0, 8 * np.pi, 50_000)
        smooth = (np.sin(t) * 0.2 + t * 0.01).astype(np.float32)
        lorenzo = compress(smooth, 1e-4, predictor="lorenzo").compressed_bytes
        none = compress(smooth, 1e-4, predictor="none").compressed_bytes
        adaptive = compress(smooth, 1e-4, predictor="adaptive").compressed_bytes
        # The per-block choice stays within ~25% of the best fixed predictor
        # (the shared Huffman table makes mixing block types slightly
        # sub-optimal) while being an order of magnitude ahead of the worst.
        assert adaptive <= min(lorenzo, none) * 1.25
        assert adaptive <= max(lorenzo, none) * 0.5

    def test_adaptive_tracks_best_fixed_predictor_on_weights(self, weight_array):
        """On noise-like weights the adaptive choice matches direct quantization."""
        lorenzo = compress(weight_array, 1e-3, predictor="lorenzo").compressed_bytes
        none = compress(weight_array, 1e-3, predictor="none").compressed_bytes
        adaptive = compress(weight_array, 1e-3, predictor="adaptive").compressed_bytes
        assert adaptive <= min(lorenzo, none) * 1.05

    def test_payload_roundtrips_through_default_decompressor(self, weight_array):
        from repro.sz import decompress

        payload = compress(weight_array, 1e-3, predictor="adaptive").payload
        recon = decompress(payload)
        assert recon.shape == weight_array.shape
