"""Tests for the canonical Huffman codec."""

import numpy as np
import pytest

from repro.sz.huffman import HuffmanCodec, HuffmanTable
from repro.utils.errors import DecompressionError, ValidationError


@pytest.fixture()
def codec():
    return HuffmanCodec()


class TestHuffmanRoundtrip:
    def test_simple_roundtrip(self, codec):
        data = np.array([0, 1, 1, 2, 2, 2, 3, 3, 3, 3], dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_empty_array(self, codec):
        out = codec.decode(codec.encode(np.zeros(0, dtype=np.int64)))
        assert out.size == 0

    def test_single_element(self, codec):
        data = np.array([42], dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_single_symbol_alphabet(self, codec):
        data = np.full(1000, -7, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_two_symbols(self, codec):
        data = np.array([5, -5] * 100, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_negative_symbols(self, codec):
        data = np.array([-1000, -1, 0, 1, 1000, -1000, -1000], dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_geometric_distribution(self, codec, rng):
        data = rng.geometric(0.3, size=20_000).astype(np.int64)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_uniform_large_alphabet(self, codec, rng):
        data = rng.integers(-500, 500, size=10_000).astype(np.int64)
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_skewed_quantization_like_distribution(self, codec, rng):
        # Mimics SZ residual codes: overwhelmingly near zero with a long tail.
        data = np.rint(rng.normal(0, 2.0, size=50_000)).astype(np.int64)
        data[rng.random(50_000) < 0.001] = 5000
        assert np.array_equal(codec.decode(codec.encode(data)), data)

    def test_rejects_2d_input(self, codec):
        with pytest.raises(ValidationError):
            codec.encode(np.zeros((2, 2), dtype=np.int64))


class TestHuffmanCompression:
    def test_skewed_data_compresses_well(self, codec, rng):
        data = np.rint(rng.normal(0, 1.0, size=100_000)).astype(np.int64)
        encoded = codec.encode(data)
        # ~2-3 bits/symbol vs 64-bit raw storage; even vs 8-bit it should win.
        assert len(encoded) < data.size

    def test_uniform_data_close_to_entropy(self, codec, rng):
        data = rng.integers(0, 16, size=50_000).astype(np.int64)
        encoded = codec.encode(data)
        bits_per_symbol = 8 * len(encoded) / data.size
        assert bits_per_symbol < 4.6  # entropy is 4 bits; allow table overhead


class TestHuffmanCorruption:
    def test_truncated_payload_raises(self, codec, rng):
        data = rng.integers(0, 50, size=1000).astype(np.int64)
        encoded = codec.encode(data)
        with pytest.raises(DecompressionError):
            codec.decode(encoded[: len(encoded) // 2])

    def test_corrupt_payload_never_returns_original(self, codec):
        data = np.arange(100, dtype=np.int64)
        encoded = bytearray(codec.encode(data))
        # Zero out a chunk in the middle of the blob (hits table or payload).
        encoded[len(encoded) // 2 : len(encoded) // 2 + 8] = b"\x00" * 8
        try:
            out = codec.decode(bytes(encoded))
        except DecompressionError:
            return  # detected corruption: acceptable outcome
        # Decoding "succeeded": the corruption must at least be visible.
        assert not np.array_equal(out, data)


class TestHuffmanTable:
    def test_canonical_codes_are_prefix_free(self):
        table = HuffmanTable(
            symbols=np.array([10, 20, 30, 40]), lengths=np.array([1, 2, 3, 3], dtype=np.uint8)
        )
        codes = table.codes()
        rendered = [
            format(int(c), f"0{int(l)}b") for c, l in zip(codes, table.lengths)
        ]
        for i, a in enumerate(rendered):
            for j, b in enumerate(rendered):
                if i != j:
                    assert not b.startswith(a)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValidationError):
            HuffmanTable(symbols=np.array([1, 2]), lengths=np.array([1], dtype=np.uint8))


class TestVectorizedDecodeKernel:
    """Differential tests: the batched decode kernel vs the scalar reference."""

    def _round_trip_both(self, codec, data):
        from repro.utils.bytesio import read_named_sections
        from repro.utils.bitstream import unpack_bits

        blob = codec.encode(data)
        meta, sections = read_named_sections(blob)
        symbols = np.frombuffer(sections["table_symbols"], dtype="<i8").astype(np.int64)
        lengths = np.frombuffer(sections["table_lengths"], dtype=np.uint8)
        table = HuffmanTable(symbols=symbols, lengths=lengths)
        bits = unpack_bits(sections["payload"], int(meta["nbits"]))
        fast = HuffmanCodec._decode_bits(bits, table, data.size)
        slow = HuffmanCodec._decode_bits_reference(bits, table, data.size)
        np.testing.assert_array_equal(fast, slow)
        np.testing.assert_array_equal(fast, data)

    def test_matches_reference_geometricish(self, codec, rng):
        data = np.rint(rng.standard_normal(20_000) * 2).astype(np.int64)
        self._round_trip_both(codec, data)

    def test_matches_reference_long_tail(self, codec, rng):
        # A wide alphabet pushes many codes past the fast-table width, so the
        # canonical-range slow path is exercised heavily.
        data = np.concatenate(
            [np.zeros(30_000, dtype=np.int64), rng.integers(-30_000, 30_000, 15_000)]
        )
        rng.shuffle(data)
        self._round_trip_both(codec, data)

    def test_matches_reference_uniform_alphabet(self, codec, rng):
        data = rng.integers(0, 5000, size=25_000).astype(np.int64)
        self._round_trip_both(codec, data)

    @pytest.mark.parametrize("n", [1, 2, 31, 32, 33, 63, 64, 65, 1000])
    def test_chain_stride_boundaries(self, codec, rng, n):
        # Sizes around the lockstep stride (32) hit the anchor-walk edges.
        data = rng.integers(-40, 40, size=n).astype(np.int64)
        self._round_trip_both(codec, data)

    def test_two_symbol_alphabet(self, codec):
        data = np.tile(np.array([7, -7], dtype=np.int64), 500)
        self._round_trip_both(codec, data)

    def test_truncated_bitstream_raises(self, codec, rng):
        from repro.utils.bytesio import read_named_sections, write_named_sections

        data = rng.integers(0, 200, size=5000).astype(np.int64)
        blob = codec.encode(data)
        meta, sections = read_named_sections(blob)
        sections["payload"] = sections["payload"][: len(sections["payload"]) // 2]
        meta["nbits"] = len(sections["payload"]) * 8
        with pytest.raises(DecompressionError):
            codec.decode(write_named_sections(sections, meta=meta))
