"""Metrics registry: histogram arithmetic, families, exposition round-trips."""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricSample,
    MetricsRegistry,
    log_buckets,
    parse_prometheus,
)
from repro.utils.errors import ValidationError

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

values_strategy = st.lists(
    st.floats(min_value=1e-7, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)


class TestHistogram:
    def test_log_buckets_shape(self):
        bounds = log_buckets(1e-5, 2.0, 26)
        assert len(bounds) == 26
        assert bounds[0] == pytest.approx(1e-5)
        ratios = [b2 / b1 for b1, b2 in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)
        assert DEFAULT_LATENCY_BUCKETS == bounds

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValidationError):
            Histogram([])
        with pytest.raises(ValidationError):
            Histogram([1.0, 1.0])
        with pytest.raises(ValidationError):
            Histogram([2.0, 1.0])
        with pytest.raises(ValidationError):
            log_buckets(0.0)

    @SETTINGS
    @given(values=values_strategy)
    def test_bucket_counts_match_numpy(self, values):
        hist = Histogram()
        for v in values:
            hist.observe(v)
        arr = np.asarray(values)
        state = hist.to_dict()
        # Cumulative `le` semantics: bucket i counts values <= bound_i.
        for bucket in state["buckets"][:-1]:
            bound = float(bucket["le"])
            assert bucket["count"] == int(np.sum(arr <= bound))
        assert state["buckets"][-1] == {"le": "+Inf", "count": len(values)}
        assert state["count"] == len(values)
        assert state["sum"] == pytest.approx(float(arr.sum()), rel=1e-9)
        assert state["min"] == pytest.approx(float(arr.min()))
        assert state["max"] == pytest.approx(float(arr.max()))

    @SETTINGS
    @given(
        values=values_strategy,
        qs=st.lists(st.sampled_from([1.0, 25.0, 50.0, 90.0, 99.0]), min_size=1,
                    max_size=3, unique=True),
    )
    def test_percentiles_exact_below_reservoir(self, values, qs):
        # Every run here stays under the reservoir bound, so percentiles
        # must agree with numpy over the full sample set exactly.
        hist = Histogram()
        for v in values:
            hist.observe(v)
        assert hist.count <= 512
        for q in qs:
            assert hist.percentile(q) == pytest.approx(
                float(np.percentile(np.asarray(values), q)), rel=1e-12
            )

    def test_percentiles_scaled_dict(self):
        hist = Histogram()
        for v in (0.001, 0.002, 0.003):
            hist.observe(v)
        out = hist.percentiles((50.0,), scale=1e3)
        assert out == {"p50": pytest.approx(2.0)}
        assert Histogram().percentiles() == {}

    def test_reservoir_is_bounded_and_deterministic(self):
        a = Histogram(reservoir_size=64, seed=7)
        b = Histogram(reservoir_size=64, seed=7)
        for i in range(10_000):
            a.observe(i * 1e-4)
            b.observe(i * 1e-4)
        assert len(a._samples) == 64
        assert a._samples == b._samples
        assert a.count == 10_000

    @SETTINGS
    @given(left=values_strategy, right=values_strategy)
    def test_merge_matches_single_histogram(self, left, right):
        merged = Histogram()
        for v in left:
            merged.observe(v)
        other = Histogram()
        for v in right:
            other.observe(v)
        merged.merge(other)
        whole = Histogram()
        for v in left + right:
            whole.observe(v)
        assert merged.to_dict()["buckets"] == whole.to_dict()["buckets"]
        assert merged.count == whole.count
        assert merged.sum == pytest.approx(whole.sum)

    def test_merge_bucket_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Histogram([1.0, 2.0]).merge(Histogram([1.0, 3.0]))

    def test_copy_is_independent(self):
        hist = Histogram()
        hist.observe(1.0)
        snap = hist.copy()
        hist.observe(2.0)
        assert snap.count == 1
        assert hist.count == 2


class TestRegistry:
    def test_counter_gauge_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests", labels=("model",)).labels(
            model="m"
        ).inc(3)
        registry.gauge("depth", "queue depth").set(4)
        registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.05)
        payload = registry.to_json()
        assert payload["metrics"]["reqs_total"]["kind"] == "counter"
        sample = payload["metrics"]["reqs_total"]["samples"][0]
        assert sample["labels"] == {"model": "m"}
        assert sample["value"] == 3.0
        hist = payload["metrics"]["lat_seconds"]["samples"][0]["histogram"]
        assert hist["count"] == 1
        json.dumps(payload)  # JSON-ready end to end

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x")
        with pytest.raises(ValidationError):
            registry.gauge("x_total", "x")
        with pytest.raises(ValidationError):
            registry.counter("x_total", "x", labels=("other",))

    def test_counters_are_monotonic(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("c_total", "c").inc(-1)

    def test_collector_samples_and_failures(self):
        registry = MetricsRegistry()

        def good():
            return [MetricSample(name="up", kind="gauge", value=1.0)]

        def bad():
            raise RuntimeError("scrape bug")

        registry.register_collector(good)
        registry.register_collector(bad)
        names = {s.name for s in registry.samples()}
        assert "up" in names  # the broken collector is logged, not fatal
        registry.unregister_collector(good)
        assert "up" not in {s.name for s in registry.samples()}

    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", 'say "hi"\nok', labels=("model",)).labels(
            model='a"b\\c'
        ).inc(2)
        registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.to_prometheus()
        series = parse_prometheus(text)
        assert series["reqs_total"]["samples"] == [({"model": 'a"b\\c'}, 2.0)]
        buckets = dict(
            (labels["le"], value)
            for labels, value in series["lat_seconds_bucket"]["samples"]
        )
        assert buckets == {"0.1": 0.0, "1": 1.0, "+Inf": 1.0}
        assert series["lat_seconds_count"]["samples"][0][1] == 1.0

    def test_parse_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not exposition format\n")
        with pytest.raises(ValueError):
            parse_prometheus('metric{unterminated="x} 1\n')
