"""Cross-process metric primitives: SharedCounter and MetricsBlock."""

import multiprocessing

import pytest

from repro.obs.metrics import MetricsBlock, SharedCounter
from repro.utils.errors import ValidationError


def _hammer_counter(counter, rounds):
    for _ in range(rounds):
        counter.add(1)


def _hammer_block(manifest, slot, rounds):
    block = MetricsBlock.attach(manifest)
    try:
        for _ in range(rounds):
            block.add(slot, 1)
    finally:
        block.close()


class TestSharedCounter:
    def test_concurrent_process_writers_lose_nothing(self):
        ctx = multiprocessing.get_context("spawn")
        counter = SharedCounter(ctx)
        rounds, workers = 500, 4
        procs = [
            ctx.Process(target=_hammer_counter, args=(counter, rounds))
            for _ in range(workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        assert counter.value == rounds * workers
        counter.reset()
        assert counter.value == 0


class TestMetricsBlock:
    def test_create_attach_and_single_writer_slots(self):
        block = MetricsBlock.create(("batches", "items"))
        try:
            manifest = block.manifest
            assert manifest["segment"].startswith("repro_obs_")
            assert manifest["slots"] == ["batches", "items"]
            ctx = multiprocessing.get_context("spawn")
            # One writer per slot (the MetricsBlock contract): aligned
            # int64 stores from a single process never tear.
            writer = ctx.Process(target=_hammer_block, args=(manifest, "items", 400))
            writer.start()
            writer.join()
            assert writer.exitcode == 0
            assert block.value("items") == 400
            assert block.values() == {"batches": 0, "items": 400}
            block.set("batches", 7)
            assert block.value("batches") == 7
            block.reset()
            assert block.values() == {"batches": 0, "items": 0}
        finally:
            block.close()

    def test_owner_close_unlinks_segment(self):
        block = MetricsBlock.create(("n",))
        name = block.manifest["segment"]
        block.close()
        block.close()  # idempotent
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_bad_slot_lists_rejected(self):
        with pytest.raises(ValidationError):
            MetricsBlock.create(())
        with pytest.raises(ValidationError):
            MetricsBlock.create(("a", "a"))
