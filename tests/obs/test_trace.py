"""Request tracing: span schema, parenting, sampling, JSONL round-trips."""

import json
import os

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.trace import (
    SPAN_FIELDS,
    BufferExporter,
    JsonlSpanExporter,
    Tracer,
    load_trace,
    span_dict,
    validate_span,
)
from repro.utils.errors import ValidationError


class TestSpanSchema:
    def test_schema_fields_are_pinned(self):
        # Trace consumers (validate_obs.py, CI) parse these exact keys;
        # growing the schema must be a deliberate change here too.
        assert SPAN_FIELDS == (
            "trace_id",
            "span_id",
            "parent_id",
            "name",
            "start_s",
            "end_s",
            "duration_s",
            "pid",
            "attrs",
        )

    def test_span_dict_shape(self):
        record = span_dict(
            "x", trace_id="t", parent_id=None, start_s=1.0, end_s=3.5, attrs={"k": 1}
        )
        validate_span(record)
        assert record["duration_s"] == pytest.approx(2.5)
        assert record["pid"] == os.getpid()
        # Clock skew between processes must never yield negative durations.
        skewed = span_dict("x", trace_id="t", parent_id=None, start_s=2.0, end_s=1.0)
        assert skewed["duration_s"] == 0.0

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda r: r.pop("pid"),
            lambda r: r.update(extra=1),
            lambda r: r.update(trace_id=""),
            lambda r: r.update(parent_id=7),
            lambda r: r.update(duration_s=-0.1),
            lambda r: r.update(attrs=[]),
        ],
    )
    def test_validate_span_rejects_mutants(self, mutation):
        record = span_dict("x", trace_id="t", parent_id=None, start_s=0.0, end_s=1.0)
        mutation(record)
        with pytest.raises(ValueError):
            validate_span(record)


class TestSpanTree:
    def test_children_share_trace_and_parent_to_creator(self):
        exporter = BufferExporter()
        tracer = Tracer(1.0, exporter)
        root = tracer.start_span("gateway.request")
        mid = root.child("gateway.shard", attrs={"replica": "r0"})
        leaf = mid.child("replica.forward")
        for span in (leaf, mid, root):
            span.finish()
        spans = {s["name"]: s for s in exporter.spans}
        assert spans["gateway.request"]["parent_id"] is None
        assert spans["gateway.shard"]["parent_id"] == root.span_id
        assert spans["replica.forward"]["parent_id"] == mid.span_id
        assert {s["trace_id"] for s in exporter.spans} == {root.trace_id}
        by_trace = exporter.by_trace()
        assert list(by_trace) == [root.trace_id]
        assert len(by_trace[root.trace_id]) == 3

    def test_finish_is_idempotent_and_ordered(self):
        exporter = BufferExporter()
        tracer = Tracer(1.0, exporter)
        root = tracer.start_span("root", start_s=10.0)
        child = root.child("child", start_s=10.5)
        child.finish(end_s=11.0)
        child.finish(end_s=99.0)  # no-op
        root.finish(end_s=12.0)
        assert [s["name"] for s in exporter.spans] == ["child", "root"]
        child_rec, root_rec = exporter.spans
        assert child_rec["end_s"] == 11.0
        assert root_rec["start_s"] <= child_rec["start_s"]
        assert child_rec["end_s"] <= root_rec["end_s"]

    def test_context_manager_marks_errors(self):
        exporter = BufferExporter()
        tracer = Tracer(1.0, exporter)
        with pytest.raises(RuntimeError):
            with tracer.start_span("boom"):
                raise RuntimeError("nope")
        assert exporter.spans[0]["attrs"] == {"status": "error"}

    def test_export_dicts_relays_worker_spans(self):
        # The pipe boundary: workers ship pre-built span dicts; the
        # gateway side replays them through its own tracer verbatim.
        exporter = BufferExporter()
        tracer = Tracer(1.0, exporter)
        root = tracer.start_span("gateway.request")
        worker_side = [
            span_dict(
                "replica.queue",
                trace_id=root.trace_id,
                parent_id=root.span_id,
                start_s=1.0,
                end_s=2.0,
            )
        ]
        tracer.export_dicts(worker_side)
        root.finish()
        assert [s["name"] for s in exporter.spans] == ["replica.queue", "gateway.request"]
        assert exporter.spans[0]["parent_id"] == root.span_id


class TestSampling:
    def test_bad_rate_rejected(self):
        with pytest.raises(ValidationError):
            Tracer(1.5)
        with pytest.raises(ValidationError):
            Tracer(-0.1)

    def test_never_samples_without_exporter_or_rate(self):
        assert not Tracer(1.0, None).sample()
        assert not Tracer(0.0, BufferExporter()).sample()
        assert Tracer(1.0, BufferExporter()).sample()

    def test_sampling_is_seed_deterministic(self):
        a = Tracer(0.5, BufferExporter(), seed=13)
        b = Tracer(0.5, BufferExporter(), seed=13)
        decisions = [(a.sample(), b.sample()) for _ in range(200)]
        assert all(x == y for x, y in decisions)
        assert 20 < sum(x for x, _ in decisions) < 180

    def test_disabled_obs_disables_sampling(self):
        tracer = Tracer(1.0, BufferExporter())
        obs_metrics.set_enabled(False)
        try:
            assert not tracer.sample()
        finally:
            obs_metrics.set_enabled(True)
        assert tracer.sample()

    def test_broken_exporter_is_contained(self):
        class Exploding:
            def export(self, record):
                raise OSError("disk full")

        tracer = Tracer(1.0, Exploding())
        tracer.start_span("x").finish()  # logged, not raised


class TestJsonl:
    def test_round_trip_and_counters(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = JsonlSpanExporter(path)
        tracer = Tracer(1.0, exporter)
        root = tracer.start_span("gateway.request")
        root.child("gateway.shard").finish()
        root.finish()
        tracer.close()
        assert exporter.exported == 2
        records = load_trace(path)
        assert [r["name"] for r in records] == ["gateway.shard", "gateway.request"]
        for record in records:
            validate_span(record)

    def test_load_trace_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            load_trace(path)
        good = span_dict("x", trace_id="t", parent_id=None, start_s=0.0, end_s=1.0)
        bad = dict(good)
        del bad["pid"]
        path.write_text(json.dumps(good) + "\n" + json.dumps(bad) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)
