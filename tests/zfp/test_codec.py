"""Tests for the ZFP-style block codec."""

import numpy as np
import pytest

from repro.zfp import ZFPCompressor, ZFPConfig, compress, decompress
from repro.zfp.codec import _forward_lift, _inverse_lift
from repro.utils.errors import ConfigurationError, DecompressionError


class TestConfig:
    def test_exactly_one_mode_required(self):
        with pytest.raises(ConfigurationError):
            ZFPConfig(tolerance=1e-3, rate_bits=8)
        with pytest.raises(ConfigurationError):
            ZFPConfig(tolerance=None, rate_bits=None)

    def test_invalid_tolerance(self):
        # check_positive raises ValidationError; both are ValueError subclasses.
        with pytest.raises(ValueError):
            ZFPConfig(tolerance=0.0)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            ZFPConfig(tolerance=None, rate_bits=0)
        with pytest.raises(ConfigurationError):
            ZFPConfig(tolerance=None, rate_bits=64)

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            ZFPConfig(block_size=6)
        with pytest.raises(ConfigurationError):
            ZFPConfig(block_size=0)


class TestLiftingTransform:
    def test_roundtrip_exact(self, rng):
        blocks = rng.integers(-(2**30), 2**30, size=(100, 32)).astype(np.int64)
        assert np.array_equal(_inverse_lift(_forward_lift(blocks)), blocks)

    def test_roundtrip_small_values(self):
        blocks = np.arange(-8, 8, dtype=np.int64).reshape(4, 4)
        assert np.array_equal(_inverse_lift(_forward_lift(blocks)), blocks)

    def test_decorrelates_smooth_signal(self):
        ramp = np.arange(64, dtype=np.int64).reshape(1, 64) * 1000
        transformed = _forward_lift(ramp)
        # Energy concentrates: the detail coefficients of a smooth ramp are an
        # order of magnitude smaller than the raw values (they carry only the
        # local slope, ~1000-2000, instead of the running value, up to 63000).
        details = np.concatenate([transformed[0, 1::4], transformed[0, 2::4], transformed[0, 3::4]])
        assert np.abs(details).max() <= np.abs(ramp).max() // 10


class TestFixedAccuracy:
    @pytest.mark.parametrize("tol", [1e-1, 1e-2, 1e-3, 1e-4])
    def test_tolerance_respected(self, weight_array, tol):
        result = compress(weight_array, tolerance=tol)
        recon = decompress(result.payload)
        assert np.max(np.abs(recon.astype(np.float64) - weight_array)) <= tol * (1 + 1e-6)

    def test_tolerance_respected_with_transform(self, weight_array):
        cfg = ZFPConfig(tolerance=1e-3, use_transform=True)
        comp = ZFPCompressor(cfg)
        recon = comp.decompress(comp.compress(weight_array).payload)
        assert np.max(np.abs(recon.astype(np.float64) - weight_array)) <= 1e-3 * (1 + 1e-6)

    def test_ratio_grows_with_tolerance(self, weight_array):
        ratios = [compress(weight_array, tolerance=t).ratio for t in (1e-4, 1e-3, 1e-2)]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_empty_array(self):
        result = compress(np.zeros(0, dtype=np.float32), tolerance=1e-3)
        assert decompress(result.payload).size == 0

    def test_length_not_multiple_of_block(self, rng):
        data = rng.normal(0, 0.1, 100).astype(np.float32)  # block_size 32 default
        recon = decompress(compress(data, tolerance=1e-3).payload)
        assert recon.size == 100
        assert np.max(np.abs(recon - data)) <= 1e-3 * (1 + 1e-6)

    def test_all_zero_block(self):
        data = np.zeros(64, dtype=np.float32)
        recon = decompress(compress(data, tolerance=1e-3).payload)
        assert not recon.any()

    def test_mixed_magnitude_blocks(self, rng):
        # One block of tiny values next to one block of large values: the
        # per-block exponent must keep both within tolerance.
        data = np.concatenate(
            [rng.normal(0, 1e-4, 32), rng.normal(0, 10.0, 32)]
        ).astype(np.float32)
        recon = decompress(compress(data, tolerance=1e-3, block_size=32).payload)
        assert np.max(np.abs(recon.astype(np.float64) - data)) <= 1e-3 * (1 + 1e-6)


class TestFixedRate:
    def test_rate_controls_size(self, weight_array):
        small = ZFPCompressor(ZFPConfig(tolerance=None, rate_bits=4)).compress(weight_array)
        large = ZFPCompressor(ZFPConfig(tolerance=None, rate_bits=12)).compress(weight_array)
        assert small.compressed_bytes < large.compressed_bytes
        assert small.bits_per_value < 6  # 4 bits payload + block headers

    def test_fixed_rate_roundtrip_shape(self, weight_array):
        comp = ZFPCompressor(ZFPConfig(tolerance=None, rate_bits=10))
        recon = comp.decompress(comp.compress(weight_array).payload)
        assert recon.shape == weight_array.shape


class TestComparisonWithSZ:
    def test_sz_beats_zfp_on_weight_arrays(self, weight_array):
        """The Figure 2 headline: SZ ratio > ZFP ratio on 1-D fc weights."""
        from repro.sz import compress as sz_compress

        for eb in (1e-2, 1e-3, 1e-4):
            sz_ratio = sz_compress(weight_array, eb).ratio
            zfp_ratio = compress(weight_array, tolerance=eb).ratio
            assert sz_ratio > zfp_ratio


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(DecompressionError):
            decompress(b"not a zfp stream at all")

    def test_truncated(self, weight_array):
        payload = compress(weight_array[:1000], tolerance=1e-3).payload
        with pytest.raises(DecompressionError):
            decompress(payload[: len(payload) // 2])
