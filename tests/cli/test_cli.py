"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main, parse_synthetic_spec, synthetic_sparse_layers
from repro.store import ModelStore
from repro.utils.errors import ValidationError


@pytest.fixture()
def archive_path(tmp_path):
    path = tmp_path / "model.dsz"
    code = main(
        [
            "compress",
            "--out", str(path),
            "--synthetic", "fc6=48x80:0.1,fc7=32x48:0.2",
            "--error-bound", "1e-3",
        ]
    )
    assert code == 0
    return path


class TestSpecParsing:
    def test_parse(self):
        layers = parse_synthetic_spec("a=4x8:0.5, b=16x2:1.0")
        assert layers == [("a", (4, 8), 0.5), ("b", (16, 2), 1.0)]

    def test_bad_specs(self):
        for spec in ("", "a=4x8", "a=4:0.5", "a=0x8:0.5", "a=4x8:0.0", "a=4x8:2"):
            with pytest.raises(ValidationError):
                parse_synthetic_spec(spec)

    def test_synthetic_layers_deterministic(self):
        spec = "fc=32x64:0.25"
        a = synthetic_sparse_layers(spec, seed=9)["fc"]
        b = synthetic_sparse_layers(spec, seed=9)["fc"]
        assert (a.data == b.data).all()
        assert (a.index == b.index).all()
        assert a.shape == (32, 64)


class TestCommands:
    def test_compress_inspect_verify_serve_bench(self, archive_path, capsys):
        assert archive_path.exists()
        capsys.readouterr()

        assert main(["inspect", str(archive_path)]) == 0
        out = capsys.readouterr().out
        assert "fc6" in out and "fc7" in out and "format v2" in out

        assert main(["verify", str(archive_path)]) == 0
        out = capsys.readouterr().out
        assert "all 2 layers verified" in out

        code = main(
            [
                "serve-bench", str(archive_path),
                "--requests", "20",
                "--warm-repeats", "2",
                "--concurrency", "1,2",
                "--json",
            ]
        )
        assert code == 0
        results = json.loads(capsys.readouterr().out)
        assert results["layers"] == 2
        assert results["warm_vs_cold_speedup"] > 1.0
        assert set(results["throughput_accesses_per_s"]) == {"1", "2"}

    def test_inspect_json(self, archive_path, capsys):
        assert main(["inspect", str(archive_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["archive_version"] == 2
        assert set(payload["layers"]) == {"fc6", "fc7"}

    def test_compress_into_store(self, tmp_path, capsys):
        out = tmp_path / "m.dsz"
        store_dir = tmp_path / "store"
        assert main(
            [
                "compress",
                "--out", str(out),
                "--synthetic", "fc=32x32:0.3",
                "--store", str(store_dir),
            ]
        ) == 0
        printed = capsys.readouterr().out
        digest = printed.strip().split("sha256:")[-1]
        store = ModelStore(store_dir)
        assert digest in store
        assert store.get_bytes(digest) == out.read_bytes()

    def test_verify_detects_corruption(self, archive_path, capsys):
        data = bytearray(archive_path.read_bytes())
        data[len(data) // 3] ^= 0xFF  # inside some segment
        archive_path.write_bytes(bytes(data))
        assert main(["verify", str(archive_path)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_checksums_only_verify(self, archive_path, capsys):
        assert main(["verify", str(archive_path), "--checksums-only"]) == 0
        assert "crc ok" in capsys.readouterr().out

    def test_gateway_bench_json(self, capsys):
        code = main(
            [
                "gateway-bench",
                "--models", "2",
                "--synthetic", "fc6=48x80:0.1,fc7=32x48:0.2",
                "--replicas", "1,2",
                "--clients", "2",
                "--requests", "8",
                "--sparse", "mixed",
                "--queue-depth", "2",
                "--json",
            ]
        )
        assert code == 0
        sweep = json.loads(capsys.readouterr().out)
        assert set(sweep) == {"1", "2"}
        for result in sweep.values():
            assert result["completed"] == 16
            assert result["models"] == 2
        # The saturation burst runs at the largest pool only, and a depth-2
        # queue must shed most of an open-loop burst.
        assert "saturation" not in sweep["1"]
        assert sweep["2"]["saturation"]["rejected"] > 0

    def test_gateway_bench_table(self, capsys):
        code = main(
            [
                "gateway-bench",
                "--models", "1",
                "--synthetic", "fc6=48x80:0.1,fc7=32x48:0.2",
                "--replicas", "1",
                "--clients", "1",
                "--requests", "4",
                "--sparse", "all",
                "--policy", "consistent-hash",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "gateway: 1 sparse model(s)" in out
        assert "saturation @ queue depth" in out

    def test_gateway_bench_validation(self, capsys):
        assert main(["gateway-bench", "--models", "0"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["gateway-bench", "--replicas", "0"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_error_exit_code(self, tmp_path, capsys):
        missing = tmp_path / "nope.dsz"
        assert main(["inspect", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_synthetic_spec_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            ["compress", "--out", str(tmp_path / "x.dsz"), "--synthetic", "oops"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestAssessCommand:
    @pytest.fixture()
    def fake_zoo(self, monkeypatch, pruned_lenet300, small_dataset):
        from repro.nn import zoo

        _, test = small_dataset
        monkeypatch.setattr(
            zoo, "pruned_model", lambda name, **kw: (pruned_lenet300, None, test)
        )

    def test_assess_table(self, fake_zoo, capsys):
        assert main(["assess", "--samples", "120", "--expected-loss", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "ip1" in out and "chosen eb" in out
        assert "assessment points" in out

    def test_assess_json_with_cache(self, fake_zoo, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = [
            "assess", "--samples", "120", "--expected-loss", "0.02",
            "--cache", cache, "--json",
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache_hits"] == 0
        assert set(first["layers"]) == {"ip1", "ip2", "ip3"}
        assert set(first["plan"]["error_bounds"]) == {"ip1", "ip2", "ip3"}

        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["evaluations"] == 0
        assert second["layers"] == first["layers"]
        assert second["plan"] == first["plan"]


class TestScenarioBench:
    TINY = [
        "scenario-bench",
        "--scenario", "steady",
        "--policy", "round_robin",
        "--models", "2",
        "--tenants", "4",
        "--duration", "0.3",
        "--rate", "60",
        "--deadline-ms", "200",
        "--seed", "3",
        "--synthetic", "fc6=24x32:0.2,fc7=12x24:0.2",
    ]

    def test_list_scenarios(self, capsys):
        assert main(["scenario-bench", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("steady", "diurnal", "burst", "coldstart"):
            assert name in out

    def test_tiny_matrix_writes_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_scenarios.json"
        assert main(self.TINY + ["--out", str(out_path), "--json"]) == 0
        artifact = json.loads(out_path.read_text())
        assert artifact["suite"] == "scenarios"
        assert len(artifact["cells"]) == 1
        cell = artifact["cells"][0]
        assert cell["policy"] == "round-robin"  # underscores normalized
        assert cell["offered"] == (
            cell["completed"] + cell["rejected"] + cell["expired"] + cell["failures"]
        )
        printed = json.loads(capsys.readouterr().out)
        assert printed["cells"] == artifact["cells"]

    def test_dump_trace_is_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            args = self.TINY + ["--dump-trace", str(path), "--trace-only"]
            assert main(args) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        traces = json.loads(a.read_text())
        assert set(traces) == {"steady"}
        assert traces["steady"]["scenario"] == "steady"

    def test_rejects_unknown_scenario(self, capsys):
        assert main(["scenario-bench", "--scenario", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_rejects_unknown_policy(self, capsys):
        assert main(["scenario-bench", "--policy", "fastest"]) == 1
        assert "error:" in capsys.readouterr().err
