"""Tests for repro.utils.rng and repro.utils.validation."""

import numpy as np
import pytest

from repro.utils import (
    ValidationError,
    as_float32_1d,
    check_array_1d,
    check_finite,
    check_in_range,
    check_positive,
    make_rng,
    require,
    spawn_rngs,
)


class TestRng:
    def test_default_seed_is_deterministic(self):
        a = make_rng(None).integers(0, 1000, 10)
        b = make_rng(None).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_explicit_seed(self):
        assert np.array_equal(
            make_rng(7).integers(0, 1000, 5), make_rng(7).integers(0, 1000, 5)
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            make_rng(1).integers(0, 10**9, 20), make_rng(2).integers(0, 10**9, 20)
        )

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_spawn_rngs_independent_and_deterministic(self):
        a = spawn_rngs(5, 3)
        b = spawn_rngs(5, 3)
        assert len(a) == 3
        for ga, gb in zip(a, b):
            assert np.array_equal(ga.integers(0, 10**9, 5), gb.integers(0, 10**9, 5))
        assert not np.array_equal(a[0].integers(0, 10**9, 20), a[1].integers(0, 10**9, 20))


class TestValidation:
    def test_require_passes_and_fails(self):
        require(True, "fine")
        with pytest.raises(ValidationError, match="broken"):
            require(False, "broken")

    def test_check_positive(self):
        assert check_positive(2.5, "x") == 2.5
        for bad in (0, -1):
            with pytest.raises(ValidationError):
                check_positive(bad, "x")

    def test_check_in_range(self):
        assert check_in_range(0.5, "x", 0, 1) == 0.5
        assert check_in_range(0, "x", 0, 1) == 0
        with pytest.raises(ValidationError):
            check_in_range(1.5, "x", 0, 1)

    def test_check_array_1d(self):
        out = check_array_1d([1, 2, 3], "x")
        assert out.shape == (3,)
        with pytest.raises(ValidationError):
            check_array_1d(np.zeros((2, 2)), "x")

    def test_check_finite(self):
        arr = np.array([1.0, 2.0])
        assert check_finite(arr, "x") is arr
        with pytest.raises(ValidationError):
            check_finite(np.array([1.0, np.nan]), "x")
        with pytest.raises(ValidationError):
            check_finite(np.array([np.inf]), "x")

    def test_as_float32_1d_flattens_and_casts(self):
        out = as_float32_1d(np.ones((3, 4), dtype=np.float64))
        assert out.dtype == np.float32
        assert out.shape == (12,)
        assert out.flags["C_CONTIGUOUS"]

    def test_as_float32_1d_rejects_nan(self):
        with pytest.raises(ValidationError):
            as_float32_1d(np.array([np.nan, 1.0]))
