"""Tests for repro.utils.bitstream."""

import numpy as np
import pytest

from repro.utils import BitReader, BitWriter, pack_bits, unpack_bits
from repro.utils.errors import DecompressionError, ValidationError


class TestPackUnpack:
    def test_roundtrip_exact_multiple_of_eight(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=bool)
        assert np.array_equal(unpack_bits(pack_bits(bits), 8), bits)

    def test_roundtrip_with_padding(self):
        bits = np.array([1, 1, 1, 0, 1], dtype=bool)
        packed = pack_bits(bits)
        assert len(packed) == 1
        assert np.array_equal(unpack_bits(packed, 5), bits)

    def test_empty(self):
        assert pack_bits(np.zeros(0, dtype=bool)) == b""
        assert unpack_bits(b"", 0).size == 0

    def test_accepts_integer_bits(self):
        bits = np.array([1, 0, 1], dtype=np.int64)
        assert np.array_equal(unpack_bits(pack_bits(bits), 3), bits.astype(bool))

    def test_rejects_2d_input(self):
        with pytest.raises(ValidationError):
            pack_bits(np.zeros((2, 2), dtype=bool))

    def test_unpack_too_many_bits_raises(self):
        with pytest.raises(DecompressionError):
            unpack_bits(b"\x00", 9)

    def test_unpack_negative_bits_raises(self):
        with pytest.raises(ValidationError):
            unpack_bits(b"\x00", -1)

    def test_msb_first_convention(self):
        # 0b10000000 must decode to [1, 0, 0, 0, 0, 0, 0, 0].
        bits = unpack_bits(b"\x80", 8)
        assert bits[0] and not bits[1:].any()


class TestBitWriter:
    def test_single_field_roundtrip(self):
        w = BitWriter()
        w.write(0b101, 3)
        r = BitReader(w.getvalue(), w.nbits)
        assert r.read(3) == 0b101

    def test_multiple_fields_roundtrip(self):
        w = BitWriter()
        fields = [(5, 3), (0, 1), (1023, 10), (1, 1), (77, 7)]
        for value, width in fields:
            w.write(value, width)
        r = BitReader(w.getvalue(), w.nbits)
        for value, width in fields:
            assert r.read(width) == value

    def test_write_zero_width_is_noop(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.nbits == 0

    def test_value_too_large_raises(self):
        w = BitWriter()
        with pytest.raises(ValidationError):
            w.write(8, 3)

    def test_negative_width_raises(self):
        w = BitWriter()
        with pytest.raises(ValidationError):
            w.write(1, -1)

    def test_write_array_fixed_width(self):
        w = BitWriter()
        values = np.arange(16, dtype=np.uint64)
        w.write_array(values, 4)
        r = BitReader(w.getvalue(), w.nbits)
        assert np.array_equal(r.read_array(16, 4), values)

    def test_write_array_variable_width(self):
        w = BitWriter()
        values = np.array([1, 3, 7, 15], dtype=np.uint64)
        widths = np.array([1, 2, 3, 4])
        w.write_array(values, widths)
        r = BitReader(w.getvalue(), w.nbits)
        for v, wd in zip(values, widths):
            assert r.read(int(wd)) == v

    def test_write_array_mismatched_lengths(self):
        w = BitWriter()
        with pytest.raises(ValidationError):
            w.write_array(np.array([1, 2]), np.array([1]))

    def test_write_array_value_overflow(self):
        w = BitWriter()
        with pytest.raises(ValidationError):
            w.write_array(np.array([4], dtype=np.uint64), np.array([2]))

    def test_nbits_tracks_total(self):
        w = BitWriter()
        w.write(1, 5)
        w.write_array(np.array([1, 2, 3], dtype=np.uint64), 3)
        assert w.nbits == 5 + 9
        assert len(w) == 14

    def test_large_interleaved_roundtrip(self, rng):
        w = BitWriter()
        widths = rng.integers(1, 20, size=500)
        values = np.array([int(rng.integers(0, 1 << wd)) for wd in widths], dtype=np.uint64)
        w.write_array(values, widths)
        r = BitReader(w.getvalue(), w.nbits)
        for v, wd in zip(values, widths):
            assert r.read(int(wd)) == v


class TestBitReader:
    def test_read_past_end_raises(self):
        r = BitReader(b"\xff", 8)
        r.read(8)
        with pytest.raises(DecompressionError):
            r.read(1)

    def test_read_array_past_end_raises(self):
        r = BitReader(b"\xff", 8)
        with pytest.raises(DecompressionError):
            r.read_array(3, 4)

    def test_remaining(self):
        r = BitReader(b"\xff\x00", 16)
        assert r.remaining == 16
        r.read(5)
        assert r.remaining == 11

    def test_read_zero_width(self):
        r = BitReader(b"", 0)
        assert r.read(0) == 0
        assert np.array_equal(r.read_array(3, 0), np.zeros(3, dtype=np.uint64))

    def test_read_remaining_bits(self):
        w = BitWriter()
        w.write(0b1011, 4)
        r = BitReader(w.getvalue(), 4)
        r.read(1)
        rest = r.read_remaining_bits()
        assert rest.tolist() == [False, True, True]
        assert r.remaining == 0
