"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils import Timer, TimingBreakdown


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005

    def test_multiple_intervals_accumulate(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestTimingBreakdown:
    def test_phase_records_named_time(self):
        tb = TimingBreakdown()
        with tb.phase("sz"):
            time.sleep(0.005)
        assert "sz" in tb.phases
        assert tb.phases["sz"] > 0

    def test_phases_accumulate_by_name(self):
        tb = TimingBreakdown()
        tb.add("lossless", 1.0)
        tb.add("lossless", 0.5)
        assert tb.phases["lossless"] == pytest.approx(1.5)

    def test_total_sums_phases(self):
        tb = TimingBreakdown()
        tb.add("a", 1.0)
        tb.add("b", 2.0)
        assert tb.total == pytest.approx(3.0)

    def test_merge_combines_without_mutating(self):
        a = TimingBreakdown({"x": 1.0})
        b = TimingBreakdown({"x": 2.0, "y": 3.0})
        merged = a.merge(b)
        assert merged.phases == {"x": 3.0, "y": 3.0}
        assert a.phases == {"x": 1.0}

    def test_as_dict_is_a_copy(self):
        tb = TimingBreakdown({"a": 1.0})
        d = tb.as_dict()
        d["a"] = 99.0
        assert tb.phases["a"] == 1.0

    def test_phase_records_even_on_exception(self):
        tb = TimingBreakdown()
        with pytest.raises(ValueError):
            with tb.phase("failing"):
                raise ValueError("boom")
        assert "failing" in tb.phases
