"""Tests for repro.utils.bytesio (framing and named sections)."""

import io

import pytest

from repro.utils import read_frame, read_named_sections, write_frame, write_named_sections
from repro.utils.errors import DecompressionError, ValidationError


class TestFrames:
    def test_roundtrip(self):
        buf = io.BytesIO()
        n = write_frame(buf, b"hello")
        assert n == 8 + 5
        buf.seek(0)
        assert read_frame(buf) == b"hello"

    def test_empty_payload(self):
        buf = io.BytesIO()
        write_frame(buf, b"")
        buf.seek(0)
        assert read_frame(buf) == b""

    def test_multiple_frames_sequential(self):
        buf = io.BytesIO()
        write_frame(buf, b"one")
        write_frame(buf, b"two")
        buf.seek(0)
        assert read_frame(buf) == b"one"
        assert read_frame(buf) == b"two"

    def test_truncated_header_raises(self):
        with pytest.raises(DecompressionError):
            read_frame(io.BytesIO(b"\x01\x00"))

    def test_truncated_payload_raises(self):
        buf = io.BytesIO()
        write_frame(buf, b"abcdef")
        data = buf.getvalue()[:-2]
        with pytest.raises(DecompressionError):
            read_frame(io.BytesIO(data))

    def test_non_bytes_payload_raises(self):
        with pytest.raises(ValidationError):
            write_frame(io.BytesIO(), "not-bytes")  # type: ignore[arg-type]


class TestNamedSections:
    def test_roundtrip_with_meta(self):
        blob = write_named_sections(
            {"a": b"xxx", "b": b"yy"}, meta={"answer": 42, "name": "deepsz"}
        )
        meta, sections = read_named_sections(blob)
        assert meta == {"answer": 42, "name": "deepsz"}
        assert sections == {"a": b"xxx", "b": b"yy"}

    def test_roundtrip_empty(self):
        meta, sections = read_named_sections(write_named_sections({}))
        assert meta == {}
        assert sections == {}

    def test_section_order_preserved(self):
        blob = write_named_sections({"z": b"1", "a": b"2", "m": b"3"})
        _, sections = read_named_sections(blob)
        assert list(sections) == ["z", "a", "m"]

    def test_binary_safe_payloads(self):
        payload = bytes(range(256)) * 3
        _, sections = read_named_sections(write_named_sections({"bin": payload}))
        assert sections["bin"] == payload

    def test_truncated_section_raises(self):
        blob = write_named_sections({"a": b"0123456789"})
        with pytest.raises(DecompressionError):
            read_named_sections(blob[:-4])

    def test_corrupt_header_raises(self):
        blob = write_named_sections({"a": b"abc"})
        corrupted = blob[:8] + b"\xff" * 10 + blob[18:]
        with pytest.raises(DecompressionError):
            read_named_sections(corrupted)

    def test_non_bytes_section_raises(self):
        with pytest.raises(ValidationError):
            write_named_sections({"a": 123})  # type: ignore[dict-item]
