"""Tests for the Deep Compression baseline."""

import numpy as np
import pytest

from repro.baselines import DeepCompressionConfig, DeepCompressionEncoder, kmeans_1d
from repro.pruning import encode_sparse, prune_weights
from repro.utils.errors import DecompressionError, ValidationError


@pytest.fixture()
def pruned_layer(rng):
    w = rng.normal(0, 0.03, (128, 256)).astype(np.float32)
    pruned, _ = prune_weights(w, 0.1)
    return encode_sparse(pruned)


class TestKMeans1D:
    def test_centroids_sorted_and_assignments_consistent(self, rng):
        values = rng.normal(0, 1, 5000)
        centroids, assignments = kmeans_1d(values, 16)
        assert np.all(np.diff(centroids) >= 0)
        assert assignments.min() >= 0 and assignments.max() < 16
        # Each value is assigned to its nearest centroid.
        dists = np.abs(values[:, None] - centroids[None, :])
        assert np.array_equal(dists.argmin(axis=1), assignments)

    def test_reconstruction_error_decreases_with_k(self, rng):
        values = rng.normal(0, 1, 3000)
        errors = []
        for k in (2, 8, 32):
            centroids, assignments = kmeans_1d(values, k)
            errors.append(np.abs(centroids[assignments] - values).max())
        assert errors[0] > errors[1] > errors[2]

    def test_constant_input(self):
        centroids, assignments = kmeans_1d(np.full(100, 3.0), 4)
        assert np.allclose(centroids, 3.0)
        assert not assignments.any()

    def test_empty_input(self):
        centroids, assignments = kmeans_1d(np.zeros(0), 4)
        assert centroids.shape == (4,)
        assert assignments.size == 0

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            kmeans_1d(np.ones(5), 0)

    def test_bimodal_data_separated(self):
        values = np.concatenate([np.full(100, -1.0), np.full(100, 1.0)])
        centroids, assignments = kmeans_1d(values, 2)
        assert centroids[0] == pytest.approx(-1.0, abs=1e-6)
        assert centroids[1] == pytest.approx(1.0, abs=1e-6)


class TestDeepCompression:
    def test_config_validation(self):
        with pytest.raises(ValidationError):
            DeepCompressionConfig(bits=0)
        with pytest.raises(ValidationError):
            DeepCompressionConfig(bits=20)

    def test_roundtrip_positions_and_codebook_values(self, pruned_layer):
        enc = DeepCompressionEncoder(DeepCompressionConfig(bits=5))
        result = enc.encode_layer("fc6", pruned_layer)
        name, dense = enc.decode_layer(result.payload)
        assert name == "fc6"
        assert dense.shape == pruned_layer.shape
        # Non-zero structure preserved; values within the quantization error.
        from repro.pruning import decode_sparse

        original = decode_sparse(pruned_layer)
        assert np.array_equal(dense != 0, original != 0) or (
            # padding entries may decode to a centroid very close to zero
            np.abs(dense[original == 0]).max() <= result.max_quantization_error
        )
        nz = original != 0
        assert np.abs(dense[nz] - original[nz]).max() <= result.max_quantization_error * (1 + 1e-6)

    def test_ratio_close_to_paper_range(self, pruned_layer):
        """5-bit Deep Compression lands near the paper's ~40x for 10% density."""
        result = DeepCompressionEncoder(DeepCompressionConfig(bits=5)).encode_layer(
            "fc6", pruned_layer
        )
        assert 25 < result.ratio < 60

    def test_lower_bits_give_higher_ratio_but_more_error(self, pruned_layer):
        r3 = DeepCompressionEncoder(DeepCompressionConfig(bits=3)).encode_layer("x", pruned_layer)
        r7 = DeepCompressionEncoder(DeepCompressionConfig(bits=7)).encode_layer("x", pruned_layer)
        assert r3.ratio > r7.ratio
        assert r3.max_quantization_error > r7.max_quantization_error

    def test_encode_network_covers_all_layers(self, pruned_layer):
        enc = DeepCompressionEncoder()
        results = enc.encode_network({"fc6": pruned_layer, "fc7": pruned_layer})
        assert set(results) == {"fc6", "fc7"}
        weights, timing = enc.decode_network(results)
        assert set(weights) == {"fc6", "fc7"}
        assert timing.total > 0
        assert "codebook quantization" in timing.phases
        assert "csr" in timing.phases

    def test_decode_rejects_foreign_payload(self):
        with pytest.raises(DecompressionError):
            DeepCompressionEncoder().decode_layer(b"not a deep compression payload")

    def test_empty_layer(self):
        empty = encode_sparse(np.zeros((4, 4), dtype=np.float32))
        enc = DeepCompressionEncoder()
        result = enc.encode_layer("empty", empty)
        _, dense = enc.decode_layer(result.payload)
        assert not dense.any()
