"""Tests for the Weightless baseline and its Bloomier filter."""

import numpy as np
import pytest

from repro.baselines import BloomierFilter, WeightlessConfig, WeightlessEncoder
from repro.pruning import decode_sparse, encode_sparse, prune_weights
from repro.utils.errors import DecompressionError, ValidationError


@pytest.fixture()
def pruned_layer(rng):
    w = rng.normal(0, 0.03, (96, 200)).astype(np.float32)
    pruned, _ = prune_weights(w, 0.08)
    return encode_sparse(pruned)


class TestBloomierFilter:
    def test_stored_keys_exact(self, rng):
        keys = rng.choice(50_000, size=4000, replace=False)
        values = rng.integers(0, 16, size=4000)
        bf = BloomierFilter(keys, values, value_bits=4, slot_bits=12, seed=3)
        out, found = bf.query(keys)
        assert found.all()
        assert np.array_equal(out, values)

    def test_non_keys_mostly_rejected(self, rng):
        keys = np.arange(0, 20_000, 2, dtype=np.uint64)  # even numbers
        values = rng.integers(0, 8, size=keys.size)
        bf = BloomierFilter(keys, values, value_bits=3, slot_bits=11, seed=4)
        non_keys = np.arange(1, 20_000, 2, dtype=np.uint64)  # odd numbers
        _, found = bf.query(non_keys)
        fp_rate = found.mean()
        expected = 2.0 ** -(11 - 3)
        assert fp_rate == pytest.approx(expected, abs=4 * expected)

    def test_empty_filter(self):
        bf = BloomierFilter(np.zeros(0), np.zeros(0), value_bits=4, slot_bits=8)
        _, found = bf.query(np.arange(10))
        assert found.shape == (10,)

    def test_single_key(self):
        bf = BloomierFilter(np.array([42]), np.array([7]), value_bits=4, slot_bits=10, seed=1)
        out, found = bf.query(np.array([42]))
        assert found[0] and out[0] == 7

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValidationError):
            BloomierFilter(np.array([1, 1]), np.array([2, 3]), value_bits=4, slot_bits=8)

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValidationError):
            BloomierFilter(np.array([1]), np.array([16]), value_bits=4, slot_bits=8)

    def test_invalid_bit_widths(self):
        with pytest.raises(ValidationError):
            BloomierFilter(np.array([1]), np.array([0]), value_bits=8, slot_bits=4)

    def test_state_roundtrip(self, rng):
        keys = rng.choice(10_000, size=500, replace=False)
        values = rng.integers(0, 4, size=500)
        bf = BloomierFilter(keys, values, value_bits=2, slot_bits=10, seed=5)
        clone = BloomierFilter.from_state(bf.state())
        out, found = clone.query(keys)
        assert found.all()
        assert np.array_equal(out, values)

    def test_size_scales_with_expansion(self, rng):
        keys = rng.choice(10_000, size=1000, replace=False)
        values = rng.integers(0, 4, size=1000)
        small = BloomierFilter(keys, values, value_bits=2, slot_bits=8, expansion=1.4, seed=6)
        large = BloomierFilter(keys, values, value_bits=2, slot_bits=8, expansion=2.0, seed=6)
        assert small.size_bytes < large.size_bytes

    def test_expansion_below_peeling_threshold_fails(self, rng):
        from repro.utils.errors import CompressionError

        keys = rng.choice(50_000, size=5000, replace=False)
        values = rng.integers(0, 4, size=5000)
        with pytest.raises(CompressionError):
            BloomierFilter(
                keys, values, value_bits=2, slot_bits=8, expansion=1.05, seed=6, max_attempts=4
            )


class TestWeightlessEncoder:
    def test_config_validation(self):
        with pytest.raises(ValidationError):
            WeightlessConfig(value_bits=8, slot_bits=8)
        with pytest.raises(ValidationError):
            WeightlessConfig(expansion=1.2)

    def test_roundtrip_kept_weights_close(self, pruned_layer):
        enc = WeightlessEncoder(WeightlessConfig(value_bits=4, slot_bits=10, seed=7))
        result = enc.encode_layer("fc6", pruned_layer)
        name, dense = enc.decode_layer(result.payload)
        assert name == "fc6"
        original = decode_sparse(pruned_layer)
        nz = original != 0
        # Kept weights reconstruct to their codebook centroid (bounded error).
        assert np.abs(dense[nz] - original[nz]).max() < 0.05

    def test_false_positive_rate_matches_config(self, pruned_layer):
        cfg = WeightlessConfig(value_bits=4, slot_bits=9, seed=8)
        enc = WeightlessEncoder(cfg)
        result = enc.encode_layer("fc6", pruned_layer)
        _, dense = enc.decode_layer(result.payload)
        original = decode_sparse(pruned_layer)
        zeros = original == 0
        observed = (dense[zeros] != 0).mean()
        assert observed == pytest.approx(result.false_positive_rate, rel=0.5)

    def test_ratio_beats_csr(self, pruned_layer):
        result = WeightlessEncoder(WeightlessConfig(seed=9)).encode_layer("fc6", pruned_layer)
        assert result.ratio > pruned_layer.compression_ratio

    def test_pick_target_layer_is_largest(self, rng):
        small = encode_sparse(prune_weights(rng.normal(0, 1, (10, 10)).astype(np.float32), 0.2)[0])
        big = encode_sparse(prune_weights(rng.normal(0, 1, (50, 50)).astype(np.float32), 0.2)[0])
        enc = WeightlessEncoder()
        assert enc.pick_target_layer({"small": small, "big": big}) == "big"
        with pytest.raises(ValidationError):
            enc.pick_target_layer({})

    def test_decode_rejects_foreign_payload(self):
        with pytest.raises(DecompressionError):
            WeightlessEncoder().decode_layer(b"garbage")

    def test_timing_breakdown_recorded(self, pruned_layer):
        from repro.utils.timing import TimingBreakdown

        enc = WeightlessEncoder(WeightlessConfig(seed=10))
        result = enc.encode_layer("fc6", pruned_layer)
        timing = TimingBreakdown()
        enc.decode_layer(result.payload, timing)
        assert "bloomier filter" in timing.phases
