"""Tests for analysis metrics and report rendering."""

import numpy as np
import pytest

from repro.analysis import (
    accuracy_table,
    architecture_table,
    ascii_series,
    bits_per_weight,
    comparison_table,
    compression_ratio,
    compression_stats_table,
    format_bytes,
    max_abs_error,
    psnr,
    render_table,
)
from repro.nn.specs import all_specs
from repro.utils.errors import ValidationError


class TestMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(100, 10) == 10.0
        assert compression_ratio(100, 0) == float("inf")
        with pytest.raises(ValidationError):
            compression_ratio(-1, 10)

    def test_bits_per_weight(self):
        assert bits_per_weight(10, 20) == pytest.approx(4.0)
        with pytest.raises(ValidationError):
            bits_per_weight(10, 0)

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KB"
        assert format_bytes(5 * 1024**2) == "5.00 MB"
        assert format_bytes(3 * 1024**3).endswith("GB")

    def test_max_abs_error(self, fresh_rng):
        a = fresh_rng.normal(size=100)
        b = a + 0.5
        assert max_abs_error(a, b) == pytest.approx(0.5)
        assert max_abs_error(np.zeros(0), np.zeros(0)) == 0.0
        with pytest.raises(ValidationError):
            max_abs_error(a, b[:-1])

    def test_psnr(self, fresh_rng):
        a = fresh_rng.uniform(-1, 1, 10_000)
        assert psnr(a, a) == float("inf")
        noisy = a + fresh_rng.uniform(-1e-3, 1e-3, a.shape)
        value = psnr(a, noisy)
        assert 55 < value < 80
        # Less noise -> higher PSNR.
        assert psnr(a, a + 1e-5) > value


class TestRenderers:
    def test_render_table_alignment_and_content(self):
        text = render_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_row_width_mismatch(self):
        with pytest.raises(ValidationError):
            render_table(["a"], [[1, 2]])

    def test_architecture_table_contains_all_networks(self):
        text = architecture_table(all_specs())
        for name in ("LeNet-300-100", "LeNet-5", "AlexNet", "VGG-16"):
            assert name in text
        assert "fc6 4096x25088" in text

    def test_compression_stats_table(self):
        text = compression_stats_table(
            "AlexNet",
            {
                "fc6": {
                    "original_bytes": 151_000_000,
                    "pruning_ratio": 0.09,
                    "csr_bytes": 17_000_000,
                    "compressed_bytes": 2_770_000,
                    "error_bound": 7e-3,
                }
            },
        )
        assert "fc6" in text and "9.0%" in text and "7e-03" in text

    def test_accuracy_table_handles_missing_top5(self):
        text = accuracy_table(
            [
                {"network": "LeNet-5", "top1": 0.9913, "top5": None, "fc_bytes": 1_620_000, "ratio": 57.3},
                {"network": "AlexNet", "top1": 0.5741, "top5": 0.804, "fc_bytes": 234_500_000, "ratio": 45.5},
            ]
        )
        assert "99.13%" in text and "80.40%" in text and "57.3x" in text

    def test_comparison_table_improvement_column(self):
        text = comparison_table(
            "VGG-16",
            {
                "fc6": {"deep_compression": 119.0, "weightless": 157.0, "deepsz": 152.1},
                "fc8": {"deep_compression": 19.1, "weightless": None, "deepsz": 19.8},
            },
        )
        assert "0.97x" in text or "1.0" in text  # improvement vs best other
        assert "157.0x" in text
        assert "-" in text  # missing weightless entry renders as dash

    def test_ascii_series(self):
        text = ascii_series("Fig X", {"SZ": {1e-3: 5.0, 1e-2: 9.0}, "ZFP": {1e-3: 3.0}})
        assert text.splitlines()[0] == "Fig X"
        assert "SZ" in text and "ZFP" in text and "0.001" in text
