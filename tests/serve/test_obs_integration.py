"""Observability wired through the real serving stack.

Covers the span trees both replica backends emit, the Prometheus series
the gateway collector publishes while a run is live, the stats-JSON
schema downstream tooling parses, and the ``repro metrics`` CLI.
"""

import json
import os

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.obs.metrics import MetricsRegistry, parse_prometheus
from repro.obs.trace import BufferExporter, Tracer, validate_span
from repro.serve import Gateway

_INPUT_DIM = 160  # fc6 of the session model is 96x160

_GATEWAY_SPANS = {"gateway.request", "gateway.admission", "gateway.shard"}
_REPLICA_SPANS = {"replica.queue", "replica.batch", "replica.forward", "replica.decode"}


def _run_traced(archive_blob, backend, requests=6):
    exporter = BufferExporter()
    gateway = Gateway(
        tracer=Tracer(1.0, exporter), replica_backend=backend,
        metrics=MetricsRegistry(),
    )
    gateway.add_model("m", archive_blob, replicas=1, max_queue_depth=64)
    x = np.ones(_INPUT_DIM, dtype=np.float32)
    with gateway:
        for future in [gateway.submit("m", x) for _ in range(requests)]:
            future.result(timeout=60)
    gateway.close()
    return exporter.by_trace()


def _check_trees(traces, requests):
    assert len(traces) == requests
    for spans in traces.values():
        for span in spans:
            validate_span(span)
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert set(by_name) == _GATEWAY_SPANS | _REPLICA_SPANS
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["gateway.request"]
        ids = {s["span_id"] for s in spans}
        assert all(s["parent_id"] in ids for s in spans if s["parent_id"] is not None)
        root = roots[0]
        # Admission, shard decision, and the replica queue/batch spans all
        # hang off the request root; forward nests in batch, decode in forward.
        for name in ("gateway.admission", "gateway.shard", "replica.queue", "replica.batch"):
            assert all(s["parent_id"] == root["span_id"] for s in by_name[name]), name
        (batch,) = by_name["replica.batch"]
        (forward,) = by_name["replica.forward"]
        assert forward["parent_id"] == batch["span_id"]
        decode_layers = []
        for span in by_name["replica.decode"]:
            assert span["parent_id"] == forward["span_id"]
            decode_layers.append(span["attrs"]["layer"])
        assert sorted(decode_layers) == sorted(set(decode_layers))
        assert root["start_s"] <= forward["start_s"] <= forward["end_s"] <= root["end_s"]
    return traces


class TestTraceStitching:
    def test_thread_backend_full_trees(self, archive_blob):
        traces = _check_trees(_run_traced(archive_blob, "thread"), 6)
        for spans in traces.values():
            assert {s["pid"] for s in spans} == {os.getpid()}

    def test_process_backend_stitches_worker_spans(self, archive_blob):
        traces = _check_trees(_run_traced(archive_blob, "process"), 6)
        for spans in traces.values():
            pids = {s["pid"] for s in spans}
            assert len(pids) == 2  # gateway + worker process
            for span in spans:
                if span["name"] in _REPLICA_SPANS:
                    assert span["pid"] != os.getpid()
                else:
                    assert span["pid"] == os.getpid()


class TestExposition:
    def test_registry_series_live_during_run(self, archive_blob):
        registry = MetricsRegistry()
        gateway = Gateway(metrics=registry)
        gateway.add_model("m", archive_blob, replicas=2, max_queue_depth=64)
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        with gateway:
            for future in [gateway.submit("m", x) for _ in range(8)]:
                future.result(timeout=60)
            series = parse_prometheus(registry.to_prometheus())
            for name in (
                "repro_gateway_requests_total",
                "repro_gateway_queue_depth",
                "repro_gateway_latency_seconds_bucket",
                "repro_gateway_latency_seconds_count",
                "repro_replica_inflight",
                "repro_replica_dispatched_total",
                "repro_cache_events_total",
                "repro_cache_resident_bytes",
            ):
                assert name in series, name
            completed = [
                value
                for labels, value in series["repro_gateway_requests_total"]["samples"]
                if labels == {"model": "m", "outcome": "completed"}
            ]
            assert completed == [8.0]
            dispatched = sum(
                value
                for _labels, value in series["repro_replica_dispatched_total"]["samples"]
            )
            assert dispatched == 8.0
        gateway.close()
        # The collector deregisters with the run: a stopped gateway must not
        # leave stale series behind on a shared registry.
        assert "repro_gateway_requests_total" not in parse_prometheus(
            registry.to_prometheus()
        )

    def test_process_backend_worker_stage_series(self, archive_blob):
        registry = MetricsRegistry()
        gateway = Gateway(metrics=registry, replica_backend="process")
        gateway.add_model("m", archive_blob, replicas=1, max_queue_depth=64)
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        with gateway:
            for future in [gateway.submit("m", x) for _ in range(4)]:
                future.result(timeout=60)
            series = parse_prometheus(registry.to_prometheus())
        gateway.close()
        stages = {
            labels["stage"]
            for labels, _value in series["repro_worker_stage_total"]["samples"]
        }
        assert stages == {"forward", "fetch"}
        forward_s = [
            value
            for labels, value in series["repro_worker_stage_seconds_total"]["samples"]
            if labels.get("stage") == "forward"
        ]
        assert forward_s and forward_s[0] > 0.0


class TestStatsSchema:
    def test_stats_json_schema_is_stable(self, archive_blob):
        """Downstream tooling (bench artifacts, compare_baselines) parses
        these exact keys; additions must be deliberate."""
        gateway = Gateway(metrics=MetricsRegistry())
        gateway.add_model("m", archive_blob, replicas=1, max_queue_depth=64)
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        with gateway:
            for future in [gateway.submit("m", x) for _ in range(3)]:
                future.result(timeout=60)
            payload = gateway.stats().as_dict()
        gateway.close()
        json.dumps(payload)  # JSON-ready end to end
        assert set(payload) == {
            "elapsed_seconds", "submitted", "completed", "failures", "rejected",
            "deadline_exceeded", "cancelled",
            "cache_bytes", "shared_bytes", "latencies_ms", "models",
            "throughput_rps", "rejection_rate",
        }
        model = payload["models"]["m"]
        assert set(model) == {
            "name", "policy", "backend", "shared_bytes", "submitted", "completed",
            "failures", "rejected", "deadline_exceeded", "cancelled",
            "queue_depth", "max_queue_depth",
            "max_concurrency", "elapsed_seconds", "latencies_ms", "replicas",
            "throughput_rps", "rejection_rate", "cache_bytes",
        }
        assert set(model["latencies_ms"]) == {"p50", "p90", "p99"}
        (replica,) = model["replicas"]
        assert set(replica) == {
            "id", "dispatched", "inflight", "cache_bytes", "decodes", "server",
        }
        assert set(replica["server"]) == {
            "requests", "batches", "failures", "elapsed_seconds", "latencies_ms",
            "mean_batch_size", "throughput_rps",
        }


class TestMetricsCli:
    def test_renders_prometheus_file(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("repro_demo_total", "demo", labels=("model",)).labels(
            model="m"
        ).inc(5)
        path = tmp_path / "metrics.prom"
        path.write_text(registry.to_prometheus())
        assert cli_main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_demo_total" in out
        assert "model=m" in out or 'model="m"' in out

    def test_renders_json_file(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.gauge("repro_depth", "queue depth").set(3)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(registry.to_json()))
        assert cli_main(["metrics", str(path)]) == 0
        assert "repro_depth" in capsys.readouterr().out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert cli_main(["metrics", str(tmp_path / "nope.prom")]) == 1
        capsys.readouterr()

    def test_bench_trace_flags_validated(self):
        from repro.serve.bench import gateway_benchmark
        from repro.utils.errors import ValidationError

        with pytest.raises(ValidationError):
            gateway_benchmark({"m": b""}, trace_sample=0.5)  # no trace_path
