"""Process-backed replica pools: parity, shm lifecycle, crash containment.

The worker processes here are real (spawned via the default ``spawn`` start
method), so this file is the cross-process counterpart of ``test_shm.py``:
it proves the gateway serves identical outputs from worker processes
reconstructing weights out of the shared segment, that segments are created
once per model and provably unlinked on ``stop()`` — including after a
``SIGKILL``ed worker — and that a crash fails only the requests that were
in flight on the dead replica.

No fixed sleeps: synchronisation goes through ``poll_until`` and the
replica servers' cross-process ``inflight`` gauges.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU
from repro.nn.network import Network
from repro.serve.gateway import Gateway
from repro.serve.shm import shared_weight_store
from repro.serve.worker import ProcessServer
from repro.utils.errors import ReplicaCrashed, ValidationError

_INPUT_DIM = 160  # fc6 of the session model is 96x160


def _repro_segments() -> set:
    return {f for f in os.listdir("/dev/shm") if f.startswith(("repro_", "psm_"))}


def make_session_network() -> Network:
    """Module-level so it pickles into spawn-started workers by reference."""
    return Network(
        [
            Dense("fc6", 160, 96), ReLU("relu6"),
            Dense("fc7", 96, 64), ReLU("relu7"),
            Dense("fc8", 64, 32),
        ],
        name="session-mlp",
    )


@pytest.fixture()
def inputs():
    rng = np.random.default_rng(11)
    return rng.standard_normal((24, _INPUT_DIM)).astype(np.float32)


def _run_gateway(archive_blob, inputs, backend, **model_kwargs):
    gateway = Gateway(replica_backend=backend)
    gateway.add_model("m", archive_blob, **model_kwargs)
    with gateway:
        futures = [gateway.submit("m", x) for x in inputs]
        outputs = np.stack([f.result(timeout=60) for f in futures])
        stats = gateway.stats()
    gateway.close()
    return outputs, stats


class TestProcessBackendParity:
    @pytest.mark.parametrize("sparse", [False, True], ids=["dense", "sparse"])
    def test_outputs_match_thread_backend(self, archive_blob, inputs, sparse):
        before = _repro_segments()
        thread_out, thread_stats = _run_gateway(
            archive_blob, inputs, "thread", replicas=2, sparse=sparse
        )
        process_out, process_stats = _run_gateway(
            archive_blob, inputs, "process", replicas=2, sparse=sparse,
            policy="least-loaded",
        )
        # Same weights, same kernels — only dynamic-batch composition may
        # differ between runs, which perturbs GEMM summation order at the
        # last-ulp level.
        np.testing.assert_allclose(process_out, thread_out, rtol=1e-5, atol=1e-7)

        model = process_stats.models["m"]
        assert model.backend == "process"
        assert thread_stats.models["m"].backend == "thread"
        assert model.completed == len(inputs)
        assert model.shared_bytes > 0
        assert process_stats.shared_bytes == model.shared_bytes
        for replica in model.replicas:
            assert replica.decodes == 0  # workers never decode
            assert replica.cache_bytes == 0  # weights alias the segment
            assert replica.inflight == 0
        assert sum(r.server.requests for r in model.replicas) == len(inputs)
        # stop() released the gateway's reference: segment unlinked.
        assert _repro_segments() == before

    def test_network_factory_runs_inside_workers(self, archive_blob, inputs):
        thread_out, _ = _run_gateway(
            archive_blob, inputs, "thread",
            replicas=1, network_factory=make_session_network,
        )
        process_out, _ = _run_gateway(
            archive_blob, inputs, "process",
            replicas=1, network_factory=make_session_network,
        )
        np.testing.assert_allclose(process_out, thread_out, rtol=1e-5, atol=1e-7)

    def test_stats_dict_is_json_ready(self, archive_blob, inputs):
        import json

        _, stats = _run_gateway(archive_blob, inputs, "process", replicas=1)
        payload = json.loads(json.dumps(stats.as_dict()))
        assert payload["models"]["m"]["backend"] == "process"
        assert payload["models"]["m"]["shared_bytes"] > 0


class TestSharedSegmentLifecycle:
    def test_segment_created_once_per_model(self, archive_blob, inputs, wait_until):
        before = _repro_segments()
        gateway = Gateway(replica_backend="process")
        gateway.add_model("m", archive_blob, replicas=3)
        with gateway:
            live = _repro_segments() - before
            # Replica metrics blocks are separate per-run segments; weight
            # sharing is what this test pins down.
            obs = {name for name in live if name.startswith("repro_obs_")}
            weights = live - obs
            # Three replicas, one weight segment: decode happened once per
            # model.  Each replica gets its own observability block.
            assert len(weights) == 1
            assert weights == set(shared_weight_store().active_segments())
            assert len(obs) == 3
            gateway.infer("m", inputs[0], timeout=60)
        gateway.close()
        assert _repro_segments() == before

    def test_restart_reacquires_segment(self, archive_blob, inputs):
        before = _repro_segments()
        gateway = Gateway(replica_backend="process")
        gateway.add_model("m", archive_blob, replicas=1)
        for _ in range(2):
            with gateway:
                out = gateway.infer("m", inputs[0], timeout=60)
                assert np.asarray(out).shape[-1] == 32
            # Unlinked between runs; the next start() re-acquires cleanly.
            assert _repro_segments() == before
        gateway.close()

    def test_submit_after_stop_raises(self, archive_blob, inputs):
        gateway = Gateway(replica_backend="process")
        gateway.add_model("m", archive_blob, replicas=1)
        with gateway:
            gateway.infer("m", inputs[0], timeout=60)
        with pytest.raises(ValidationError, match="not running"):
            gateway.submit("m", inputs[0])
        gateway.close()

    def test_open_archive_source_is_rejected(self, archive_blob):
        from repro.store.archive import ModelArchive

        gateway = Gateway(replica_backend="process")
        with pytest.raises(ValidationError, match="re-shareable"):
            gateway.add_model("m", ModelArchive.from_bytes(archive_blob))
        gateway.close()

    def test_unknown_backend_is_rejected(self, archive_blob):
        with pytest.raises(ValidationError, match="unknown replica backend"):
            Gateway(replica_backend="greenlet")
        gateway = Gateway()
        with pytest.raises(ValidationError, match="unknown replica backend"):
            gateway.add_model("m", archive_blob, replica_backend="fiber")
        gateway.close()


class TestCrashContainment:
    def test_killed_worker_fails_only_its_inflight_requests(
        self, archive_blob, inputs, wait_until
    ):
        before = _repro_segments()
        gateway = Gateway(replica_backend="process")
        # Batches larger than the traffic plus a long batch delay park the
        # requests inside the workers, holding a deterministic kill window
        # open; round-robin splits them 2/2 across the replicas.
        gateway.add_model(
            "m", archive_blob, replicas=2, policy="round-robin",
            batch_size=8, max_batch_delay=1.5,
        )
        with gateway:
            servers = [r.server for r in gateway._models["m"].replicas]
            futures = [gateway.submit("m", x) for x in inputs[:4]]
            wait_until(
                lambda: all(s.inflight == 2 for s in servers),
                message="two requests parked on each replica",
            )
            victim_pid = servers[0].worker_pid
            os.kill(victim_pid, signal.SIGKILL)

            survived, crashed = [], 0
            for future in futures:
                try:
                    survived.append(future.result(timeout=60))
                except ReplicaCrashed:
                    crashed += 1
            # Exactly the two requests parked on the killed replica fail;
            # the survivor's batch completes untouched.
            assert crashed == 2
            assert len(survived) == 2
            assert survived[0].shape == (32,)

            # The replica respawned against the still-live segment and
            # serves again — no re-decode, same shared weights.
            wait_until(
                lambda: servers[0].worker_pid not in (None, victim_pid),
                message="replica respawn",
            )
            retry = [gateway.submit("m", x) for x in inputs[4:8]]
            for future in retry:
                assert future.result(timeout=60).shape == (32,)

            stats = gateway.stats().models["m"]
            assert stats.failures == 2
            assert stats.completed == 6
        gateway.close()
        # A crashed-and-respawned run must still unlink everything.
        assert _repro_segments() == before

    def test_respawn_budget_exhaustion_marks_replica_dead(self, archive_blob):
        store = shared_weight_store()
        shared = store.acquire(archive_blob)
        server = ProcessServer(
            "m/0", batch_size=8, max_batch_delay=1.5, max_respawns=0
        )
        server.set_shared(shared)
        try:
            server.start()
            x = np.ones(_INPUT_DIM, dtype=np.float32)
            future = server.submit(x)
            os.kill(server.worker_pid, signal.SIGKILL)
            with pytest.raises(ReplicaCrashed, match="died"):
                future.result(timeout=60)
            # Budget spent (max_respawns=0): the replica stays down and
            # rejects new work instead of crash-looping.
            with pytest.raises(ReplicaCrashed, match="not respawning"):
                server.submit(x)
            assert server.inflight == 0
        finally:
            server.stop()
            store.release(shared)

    def test_worker_death_before_ready_raises_cleanly(self, archive_blob):
        from types import SimpleNamespace

        store = shared_weight_store()
        shared = store.acquire(archive_blob)
        # Point the worker at a nonexistent segment so reconstruction fails:
        # start() must surface the worker's error, not hang or EOFError.
        broken = dict(shared.manifest, segment="repro_does_not_exist")
        server = ProcessServer("m/0")
        server.set_shared(SimpleNamespace(manifest=broken))
        try:
            with pytest.raises(ValidationError, match="failed to start"):
                server.start()
        finally:
            server.stop()
            store.release(shared)
