"""Shared-memory weight cache: store lifecycle, manifests, zero-copy views.

Everything here runs in one process — the cross-process behaviour (workers
attaching, crash containment) lives in ``test_process_gateway.py``.  These
tests pin the store's refcounted decode-once contract and prove the
reconstruction really is zero-copy by checking the views alias the segment.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.nn.sparse import SparseWeight
from repro.serve.runtime import ModelRuntime
from repro.serve.shm import SharedRuntime, SharedWeightStore
from repro.utils.errors import ValidationError


def _shm_has(segment_name: str) -> bool:
    return os.path.exists(f"/dev/shm/{segment_name}")


@pytest.fixture()
def store():
    s = SharedWeightStore()
    yield s
    s.shutdown()


class TestSharedWeightStore:
    def test_acquire_is_refcounted_and_deduplicated(self, store, archive_blob):
        first = store.acquire(archive_blob)
        second = store.acquire(archive_blob)
        assert second is first
        assert first.refcount == 2
        assert _shm_has(first.segment_name)
        assert store.active_segments() == [first.segment_name]
        # Decoded exactly once, for every layer, despite two acquires.
        assert first.decodes == len(first.layer_names) == 3

        store.release(first)
        assert _shm_has(first.segment_name)  # one holder left
        store.release(first)
        assert not _shm_has(first.segment_name)
        assert store.active_segments() == []

    def test_dense_and_sparse_are_distinct_segments(self, store, archive_blob):
        dense = store.acquire(archive_blob)
        sparse = store.acquire(archive_blob, sparse=True)
        assert dense is not sparse
        assert dense.segment_name != sparse.segment_name
        # Sparse packing stores CSC arrays, far below the dense footprint
        # at the session model's ~10-25% densities.
        assert 0 < sparse.total_bytes < dense.total_bytes
        store.release(dense)
        store.release(sparse)

    def test_path_source_matches_bytes_source(self, store, archive_blob, tmp_path):
        path = tmp_path / "model.dsz"
        path.write_bytes(archive_blob)
        from_bytes = store.acquire(archive_blob)
        from_path = store.acquire(path)
        assert from_path is from_bytes  # keyed by content digest, not source
        store.release(from_bytes)
        store.release(from_path)

    def test_release_is_idempotent_for_stale_handles(self, store, archive_blob):
        weights = store.acquire(archive_blob)
        store.release(weights)
        store.release(weights)  # already unlinked: must be a no-op
        assert store.active_segments() == []

    def test_shutdown_unlinks_everything(self, archive_blob):
        store = SharedWeightStore()
        weights = store.acquire(archive_blob)
        name = weights.segment_name
        store.shutdown()
        assert not _shm_has(name)
        # And a fresh acquire after shutdown builds a fresh segment.
        again = store.acquire(archive_blob)
        assert again is not weights
        store.shutdown()

    def test_manifest_is_json_serialisable(self, store, archive_blob):
        weights = store.acquire(archive_blob, sparse=True)
        roundtrip = json.loads(json.dumps(weights.manifest))
        assert roundtrip == weights.manifest
        with SharedRuntime(roundtrip) as runtime:
            assert runtime.layer_names == weights.layer_names
        store.release(weights)


class TestSharedRuntime:
    def test_dense_views_match_model_runtime(self, store, archive_blob):
        weights = store.acquire(archive_blob)
        with ModelRuntime(archive_blob) as reference, SharedRuntime(
            weights.manifest
        ) as shared:
            assert shared.layer_names == reference.layer_names
            assert not shared.sparse
            for name in reference.layer_names:
                assert shared.layer_shape(name) == reference.layer_shape(name)
                view = shared.layer(name)
                np.testing.assert_array_equal(view, reference.layer(name))
                assert not view.flags.writeable
                # Zero-copy: the view aliases the segment's buffer.
                assert np.shares_memory(
                    view, np.frombuffer(shared._segment.buf, dtype=np.uint8)
                )
            assert shared.resident_bytes == 0
            assert shared.shared_bytes == weights.total_bytes > 0
        store.release(weights)

    def test_sparse_views_match_model_runtime(self, store, archive_blob):
        weights = store.acquire(archive_blob, sparse=True)
        rng = np.random.default_rng(3)
        with ModelRuntime(archive_blob, sparse=True) as reference, SharedRuntime(
            weights.manifest
        ) as shared:
            assert shared.sparse
            for name in reference.layer_names:
                view = shared.layer(name)
                assert isinstance(view, SparseWeight)
                ref = reference.layer(name)
                assert view.shape == ref.shape
                assert view.nnz == ref.nnz
                x = rng.standard_normal((5, view.shape[1])).astype(np.float32)
                np.testing.assert_allclose(
                    view.matmul(x), ref.matmul(x), rtol=1e-6, atol=1e-6
                )
                # CSC data aliases the segment — no per-process copy.
                assert np.shares_memory(
                    view.matrix.data,
                    np.frombuffer(shared._segment.buf, dtype=np.uint8),
                )
        store.release(weights)

    def test_unknown_layer_raises(self, store, archive_blob):
        weights = store.acquire(archive_blob)
        with SharedRuntime(weights.manifest) as shared:
            with pytest.raises(ValidationError, match="no layer"):
                shared.layer("nope")
            with pytest.raises(ValidationError, match="no layer"):
                shared.layer_shape("nope")
        store.release(weights)

    def test_archive_mlp_runs_over_shared_runtime(self, store, archive_blob):
        from repro.serve.gateway import ArchiveMLP

        weights = store.acquire(archive_blob)
        x = np.random.default_rng(4).standard_normal((7, 160)).astype(np.float32)
        with ModelRuntime(archive_blob) as reference, SharedRuntime(
            weights.manifest
        ) as shared:
            expected = ArchiveMLP(reference).forward(x)
            actual = ArchiveMLP(shared).forward(x)
        np.testing.assert_array_equal(actual, expected)
        store.release(weights)
