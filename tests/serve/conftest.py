"""Shared fixtures and synchronisation helpers for the serve test suite.

Concurrency tests in this package must never synchronise on fixed
``time.sleep`` waits — a loaded CI runner turns every "sleep long enough"
constant into a flake.  The two sanctioned tools are:

* :func:`poll_until` — poll a predicate against a hard deadline (available
  directly or via the ``wait_until`` fixture);
* ``threading.Event`` gates inside test doubles (see the gateway tests'
  blocking network), so a test *controls* when work proceeds instead of
  guessing how long it takes.
"""

from __future__ import annotations

import time
from typing import Callable

import pytest

from repro.store import archive_bytes


def poll_until(
    predicate: Callable[[], object],
    *,
    timeout: float = 10.0,
    interval: float = 0.002,
    message: str = "condition",
):
    """Poll ``predicate`` until truthy; raise AssertionError at the deadline.

    Returns the first truthy value, so it doubles as a fetch: e.g.
    ``stats = poll_until(lambda: s if s.requests == 3 else None)``.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"timed out after {timeout:.1f}s waiting for {message}"
            )
        time.sleep(interval)


@pytest.fixture()
def wait_until():
    """The deadline-polling helper, as a fixture for convenience."""
    return poll_until


@pytest.fixture(scope="module")
def archive_blob(small_compressed_model):
    """The session model as archive bytes (chained fc6->fc7->fc8 MLP)."""
    return archive_bytes(small_compressed_model)
