"""Tests for the byte-bounded, thread-safe LRU decoded-layer cache."""

import threading

import pytest

from repro.serve import LRUCache
from repro.utils.errors import ValidationError


class TestBasics:
    def test_put_get_and_stats(self):
        cache = LRUCache(100)
        assert cache.get("a") is None  # miss
        cache.put("a", "va", 10)
        assert cache.get("a") == "va"
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.inserts == 1
        assert stats.current_bytes == 10
        assert stats.max_bytes == 100
        assert 0 < stats.hit_rate < 1

    def test_bad_sizes(self):
        with pytest.raises(ValidationError):
            LRUCache(0)
        with pytest.raises(ValidationError):
            LRUCache(10).put("a", "v", -1)

    def test_eviction_is_lru_ordered(self):
        cache = LRUCache(30)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.get("a")  # refresh a: b is now least recently used
        cache.put("d", 4, 10)
        assert "b" not in cache
        assert all(k in cache for k in ("a", "c", "d"))
        assert cache.stats().evictions == 1
        assert cache.keys() == ["c", "a", "d"]

    def test_replacing_entry_adjusts_bytes(self):
        cache = LRUCache(100)
        cache.put("a", 1, 40)
        cache.put("a", 2, 10)
        assert cache.stats().current_bytes == 10
        assert cache.get("a") == 2

    def test_oversize_entry_not_cached(self):
        cache = LRUCache(10)
        cache.put("big", "x", 11)
        assert "big" not in cache
        assert cache.stats().oversize_rejects == 1
        assert cache.stats().current_bytes == 0

    def test_remove_and_clear(self):
        cache = LRUCache(100)
        cache.put("a", 1, 10)
        assert cache.remove("a")
        assert not cache.remove("a")
        cache.put("b", 2, 10)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().current_bytes == 0


class TestGetOrCreate:
    def test_factory_runs_once(self):
        cache = LRUCache(100)
        calls = []

        def factory():
            calls.append(1)
            return "value", 10

        assert cache.get_or_create("k", factory) == "value"
        assert cache.get_or_create("k", factory) == "value"
        assert len(calls) == 1

    def test_factory_error_propagates_and_is_retryable(self):
        cache = LRUCache(100)

        def boom():
            raise RuntimeError("decode failed")

        with pytest.raises(RuntimeError):
            cache.get_or_create("k", boom)
        assert cache.get_or_create("k", lambda: ("ok", 5)) == "ok"

    def test_concurrent_misses_single_flight(self):
        """Many threads hammering the same keys: every thread gets the right
        value and each key's factory runs exactly once."""
        cache = LRUCache(1 << 20)
        call_counts = {}
        call_lock = threading.Lock()
        barrier = threading.Barrier(16)
        results = []
        results_lock = threading.Lock()

        def factory_for(key):
            def factory():
                with call_lock:
                    call_counts[key] = call_counts.get(key, 0) + 1
                return f"value-{key}", 100

            return factory

        def worker(idx):
            barrier.wait()
            for round_no in range(50):
                key = f"k{(idx + round_no) % 8}"
                value = cache.get_or_create(key, factory_for(key))
                with results_lock:
                    results.append((key, value))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(value == f"value-{key}" for key, value in results)
        assert len(results) == 16 * 50
        # No eviction pressure (8 * 100 bytes << 1 MiB): single-flight means
        # exactly one factory call per key.
        assert set(call_counts) == {f"k{i}" for i in range(8)}
        assert all(count == 1 for count in call_counts.values())
        stats = cache.stats()
        assert stats.misses == 8
        # Waiters that piggybacked on a leader's decode are 'coalesced',
        # not hits; every lookup is accounted exactly once.
        assert stats.hits + stats.coalesced == 16 * 50 - 8
        assert stats.hit_rate == stats.hits / (16 * 50)

    def test_concurrent_distinct_keys(self):
        cache = LRUCache(1 << 20)
        barrier = threading.Barrier(8)

        def worker(idx):
            barrier.wait()
            for i in range(100):
                key = f"{idx}-{i}"
                assert cache.get_or_create(key, lambda k=key: (k, 10)) == key

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.stats().inserts == 800
