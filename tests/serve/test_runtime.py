"""Tests for the on-demand :class:`ModelRuntime`."""

import threading

import numpy as np
import pytest

from repro.core.decoder import DeepSZDecoder
from repro.serve import ModelRuntime
from repro.store import ModelArchive, archive_bytes, write_archive
from repro.utils.errors import DecompressionError, ValidationError


@pytest.fixture(scope="module")
def blob(small_compressed_model):
    return archive_bytes(small_compressed_model)


@pytest.fixture(scope="module")
def reference_weights(small_compressed_model):
    return DeepSZDecoder().decode(small_compressed_model).weights


class TestOnDemandDecode:
    def test_layer_matches_full_decode(self, blob, reference_weights):
        with ModelRuntime(blob) as runtime:
            for name, expected in reference_weights.items():
                np.testing.assert_array_equal(runtime.layer(name), expected)

    def test_lazy_decoding_touches_only_requested_layer(self, blob, reference_weights):
        with ModelRuntime(blob) as runtime:
            runtime.layer("fc7")
            stats = runtime.stats()
            assert stats.decodes == 1
            assert list(stats.decode_seconds) == ["fc7"]

    def test_second_access_is_a_cache_hit(self, blob):
        with ModelRuntime(blob) as runtime:
            first = runtime.layer("fc6")
            second = runtime.layer("fc6")
            assert first is second  # the cached object itself
            stats = runtime.stats()
            assert stats.decodes == 1
            assert stats.cache.hits == 1
            assert stats.cache.misses == 1

    def test_cached_arrays_are_read_only(self, blob):
        with ModelRuntime(blob) as runtime:
            array = runtime.layer("fc6")
            with pytest.raises(ValueError):
                array[0, 0] = 1.0

    def test_sources(self, small_compressed_model, blob, tmp_path, reference_weights):
        path = tmp_path / "model.dsz"
        write_archive(small_compressed_model, path)
        for source in (
            blob,
            str(path),
            path,
            ModelArchive.from_bytes(blob),
            small_compressed_model,
        ):
            with ModelRuntime(source) as runtime:
                np.testing.assert_array_equal(
                    runtime.layer("fc8"), reference_weights["fc8"]
                )
        with pytest.raises(ValidationError):
            ModelRuntime(12345)

    def test_v1_blob_source(self, small_compressed_model, reference_weights):
        with ModelRuntime(small_compressed_model.to_bytes()) as runtime:
            assert runtime.archive.version == 1
            np.testing.assert_array_equal(
                runtime.layer("fc6"), reference_weights["fc6"]
            )

    def test_unknown_layer(self, blob):
        with ModelRuntime(blob) as runtime:
            with pytest.raises(ValidationError, match="no layer"):
                runtime.layer("nope")
            with pytest.raises(ValidationError, match="no layer"):
                runtime.prefetch(["nope"])

    def test_corrupt_segment_raises_on_access(self, blob):
        manifest = ModelArchive.from_bytes(blob).manifest
        seg = manifest.layers["fc6"].segments["sz"]
        corrupted = bytearray(blob)
        corrupted[seg.offset] ^= 0xFF
        with ModelRuntime(bytes(corrupted)) as runtime:
            with pytest.raises(DecompressionError, match="CRC32"):
                runtime.layer("fc6")
            # Sibling layers stay servable.
            assert runtime.layer("fc7") is not None


class TestPrefetchAndCache:
    def test_prefetch_all(self, blob, reference_weights):
        with ModelRuntime(blob) as runtime:
            names = runtime.prefetch(workers=4)
            assert set(names) == set(reference_weights)
            stats = runtime.stats()
            assert stats.decodes == len(reference_weights)
            # Every subsequent access is a hit.
            for name in names:
                runtime.layer(name)
            assert runtime.stats().cache.hits >= len(names)

    def test_tiny_cache_still_serves_with_evictions(self, blob, reference_weights):
        sizes = {n: a.nbytes for n, a in reference_weights.items()}
        budget = max(sizes.values()) + 1  # holds exactly one decoded layer
        with ModelRuntime(blob, cache_bytes=budget) as runtime:
            for _ in range(3):
                for name, expected in reference_weights.items():
                    np.testing.assert_array_equal(runtime.layer(name), expected)
            stats = runtime.stats()
            assert stats.cache.evictions > 0
            assert stats.decodes > len(reference_weights)

    def test_concurrent_access_hammering(self, blob, reference_weights):
        names = list(reference_weights)
        with ModelRuntime(blob) as runtime:
            barrier = threading.Barrier(12)
            errors = []

            def worker(idx):
                try:
                    barrier.wait()
                    rng = np.random.default_rng(idx)
                    for _ in range(40):
                        name = names[rng.integers(len(names))]
                        np.testing.assert_array_equal(
                            runtime.layer(name), reference_weights[name]
                        )
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            # Single-flight: each layer decoded once despite 12 threads.
            assert runtime.stats().decodes == len(names)

    def test_load_into_network_and_decode_all(self, blob, reference_weights):
        with ModelRuntime(blob) as runtime:
            decoded = runtime.decode_all()
            assert set(decoded) == set(reference_weights)

            class FakeNetwork:
                def __init__(self):
                    self.loaded = {}

                def set_weights(self, name, weights):
                    self.loaded[name] = np.array(weights)

            net = FakeNetwork()
            runtime.load_into(net)
            for name, expected in reference_weights.items():
                np.testing.assert_array_equal(net.loaded[name], expected)


class TestSparseRuntime:
    """Compressed-domain serving mode: values, byte accounting, eviction."""

    def test_sparse_layers_match_dense_decode(self, blob, reference_weights):
        with ModelRuntime(blob, sparse=True) as runtime:
            assert runtime.sparse
            for name, expected in reference_weights.items():
                weight = runtime.layer(name)
                np.testing.assert_array_equal(weight.to_dense(), expected)

    def test_cached_sparse_arrays_are_read_only(self, blob):
        with ModelRuntime(blob, sparse=True) as runtime:
            weight = runtime.layer("fc6")
            with pytest.raises(ValueError):
                weight.matrix.data[0] = 1.0

    def test_cache_charges_actual_sparse_footprint(self, blob, reference_weights):
        """Regression: sparse entries are charged data + indices + indptr
        bytes, not the dense ``nbytes`` of the matrix they represent."""
        with ModelRuntime(blob, sparse=True) as runtime:
            decoded = runtime.decode_all()
            expected = sum(w.nbytes for w in decoded.values())
            assert runtime.stats().cache.current_bytes == expected
            # ~4x on this deliberately small model (its fc8 sits at 25%
            # density and indptr overhead looms large at 96x160); the >=5x
            # bar at paper densities is asserted by bench_sparse_inference.
            dense_total = sum(a.nbytes for a in reference_weights.values())
            assert expected < dense_total / 3

    def test_eviction_order_under_sparse_accounting(self, blob, reference_weights):
        """Pin the LRU behaviour that the true-footprint accounting buys.

        The budget is one dense layer's nbytes: under the dense charging a
        single entry would blow it, but every sparse entry fits with room to
        spare — zero evictions.  A budget one byte short of the sparse total
        then evicts in exact LRU order.
        """
        with ModelRuntime(blob, sparse=True) as probe:
            sizes = {n: probe.layer(n).nbytes for n in probe.layer_names}
        names = list(sizes)  # manifest order: fc6, fc7, fc8
        dense_single = max(a.nbytes for a in reference_weights.values())
        assert sum(sizes.values()) < dense_single

        with ModelRuntime(blob, cache_bytes=dense_single, sparse=True) as runtime:
            for name in names:
                runtime.layer(name)
            stats = runtime.stats()
            assert stats.cache.evictions == 0
            assert runtime._cache.keys() == names

        budget = sum(sizes.values()) - 1
        with ModelRuntime(blob, cache_bytes=budget, sparse=True) as runtime:
            for name in names:
                runtime.layer(name)
            # Third insert pushed past the budget: the LRU entry (fc6) went.
            assert runtime.stats().cache.evictions == 1
            assert runtime._cache.keys() == names[1:]
            runtime.layer(names[1])  # refresh fc7 -> fc8 becomes LRU
            runtime.layer(names[0])  # re-decode fc6 -> evicts fc8
            assert runtime._cache.keys() == [names[1], names[0]]
            assert runtime.stats().cache.evictions == 2

    def test_load_into_installs_sparse_weights(self, blob, reference_weights):
        with ModelRuntime(blob, sparse=True) as runtime:

            class FakeNetwork:
                def __init__(self):
                    self.sparse_loaded = {}

                def set_sparse_weights(self, name, weight):
                    self.sparse_loaded[name] = weight

            net = FakeNetwork()
            runtime.load_into(net)
            for name, expected in reference_weights.items():
                np.testing.assert_array_equal(
                    net.sparse_loaded[name].to_dense(), expected
                )
