"""Tests for the multi-model serving :class:`Gateway`.

Concurrency here is synchronised with ``threading.Event`` gates and the
``wait_until`` deadline-poll helper from ``conftest`` — never fixed sleeps
(see the conftest docstring).
"""

import json
import threading

import numpy as np
import pytest

from repro.serve import (
    ArchiveMLP,
    ConsistentHashPolicy,
    Gateway,
    LeastLoadedPolicy,
    ModelRuntime,
    RoundRobinPolicy,
    resolve_policy,
)
from repro.serve.bench import gateway_benchmark, serving_benchmark
from repro.store import ModelStore
from repro.utils.errors import GatewayOverloaded, ValidationError

_INPUT_DIM = 160  # fc6 of the session model is 96x160
_OUTPUT_DIM = 32  # fc8 is 32x64


class BlockingNetwork:
    """Forward passes block until the test releases them — deterministic
    saturation and in-flight draining without a single sleep."""

    def __init__(self, out_dim: int = 4):
        self.out_dim = out_dim
        self.release = threading.Event()
        self.entered = threading.Event()

    # Runtime weight-install hooks (the gateway's server calls these).
    def set_weights(self, name, weights):
        pass

    def set_sparse_weights(self, name, weight):
        pass

    def forward(self, x, training=False):
        self.entered.set()
        assert self.release.wait(timeout=30), "test never released the network"
        return np.zeros((x.shape[0], self.out_dim), dtype=np.float32)


class _FakeReplica:
    def __init__(self, inflight):
        self.inflight = inflight


class TestPolicies:
    def test_round_robin_cycles(self):
        policy = RoundRobinPolicy()
        replicas = [_FakeReplica(0)] * 3
        assert [policy.choose(replicas) for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_least_loaded_picks_min_with_deterministic_ties(self):
        policy = LeastLoadedPolicy()
        replicas = [_FakeReplica(3), _FakeReplica(1), _FakeReplica(1)]
        assert policy.choose(replicas) == 1  # tie between 1 and 2 -> lowest
        replicas[1].inflight = 5
        assert policy.choose(replicas) == 2

    def test_consistent_hash_is_deterministic_across_instances(self):
        ids = [f"model/{i}" for i in range(4)]
        first, second = ConsistentHashPolicy(), ConsistentHashPolicy()
        first.bind(ids)
        second.bind(ids)
        keys = [f"user-{i}" for i in range(200)]
        mapping = [first.replica_for(k) for k in keys]
        assert mapping == [second.replica_for(k) for k in keys]
        # Repeated queries never move a key.
        assert mapping == [first.replica_for(k) for k in keys]
        # The ring spreads load: every replica owns part of the key space.
        assert set(mapping) == {0, 1, 2, 3}

    def test_consistent_hash_keyless_falls_back_to_round_robin(self):
        policy = ConsistentHashPolicy()
        policy.bind(["m/0", "m/1"])
        replicas = [_FakeReplica(0)] * 2
        assert [policy.choose(replicas, None) for _ in range(4)] == [0, 1, 0, 1]

    def test_consistent_hash_requires_bind(self):
        with pytest.raises(ValidationError, match="not bound"):
            ConsistentHashPolicy().replica_for("key")

    def test_resolve_policy(self):
        assert resolve_policy("least-loaded").name == "least-loaded"
        # Fresh state per resolution: two models must not share a cursor.
        assert resolve_policy("round-robin") is not resolve_policy("round-robin")
        own = ConsistentHashPolicy(vnodes=8)
        assert resolve_policy(own) is own
        with pytest.raises(ValidationError, match="unknown shard policy"):
            resolve_policy("random")


class TestArchiveMLP:
    def test_forward_matches_manual_stack(self, archive_blob):
        with ModelRuntime(archive_blob) as runtime:
            mlp = ArchiveMLP(runtime)
            assert mlp.input_dim == _INPUT_DIM
            assert mlp.output_dim == _OUTPUT_DIM
            rng = np.random.default_rng(0)
            x = rng.standard_normal((5, _INPUT_DIM)).astype(np.float32)
            expected = x
            for i, name in enumerate(runtime.layer_names):
                expected = expected @ runtime.layer(name).T
                if i < len(runtime.layer_names) - 1:
                    expected = np.maximum(expected, 0.0)
            np.testing.assert_allclose(mlp.forward(x), expected, rtol=1e-5)

    def test_sparse_runtime_parity(self, archive_blob):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((3, _INPUT_DIM)).astype(np.float32)
        with ModelRuntime(archive_blob) as dense_rt:
            dense = ArchiveMLP(dense_rt).forward(x)
        with ModelRuntime(archive_blob, sparse=True) as sparse_rt:
            sparse = ArchiveMLP(sparse_rt).forward(x)
        np.testing.assert_allclose(sparse, dense, atol=1e-5)

    def test_non_chaining_archive_rejected(self):
        from repro.cli import synthetic_sparse_layers
        from repro.core.encoder import DeepSZEncoder
        from repro.store import archive_bytes

        sparse = synthetic_sparse_layers("a=8x16:0.5,b=8x16:0.5", seed=0)
        model = DeepSZEncoder().encode("bad", sparse, {n: 1e-3 for n in sparse})
        with ModelRuntime(archive_bytes(model)) as runtime:
            with pytest.raises(ValidationError, match="do not chain"):
                ArchiveMLP(runtime)


class TestGatewayServing:
    def test_round_robin_spreads_exactly(self, archive_blob):
        gateway = Gateway()
        gateway.add_model("m", archive_blob, replicas=3, max_queue_depth=64)
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        with gateway:
            futures = [gateway.submit("m", x) for _ in range(12)]
            rows = [f.result(timeout=30) for f in futures]
        stats = gateway.stats().models["m"]
        assert [r.dispatched for r in stats.replicas] == [4, 4, 4]
        assert stats.completed == 12
        assert stats.failures == 0
        for row in rows:
            # Identical input through identical weights; tolerance covers
            # batch-size-dependent BLAS kernel differences across replicas.
            np.testing.assert_allclose(row, rows[0], atol=1e-5)
        gateway.close()

    def test_consistent_hash_sticks_and_matches_policy_map(self, archive_blob):
        probe = ConsistentHashPolicy()
        probe.bind([f"m/{i}" for i in range(3)])
        expected_index = probe.replica_for("device-7")

        gateway = Gateway()
        gateway.add_model(
            "m", archive_blob, replicas=3, policy="consistent-hash",
            max_queue_depth=64,
        )
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        with gateway:
            for future in [
                gateway.submit("m", x, key="device-7") for _ in range(9)
            ]:
                future.result(timeout=30)
        dispatched = [
            r.dispatched for r in gateway.stats().models["m"].replicas
        ]
        assert dispatched[expected_index] == 9
        assert sum(dispatched) == 9
        gateway.close()

    def test_concurrent_multi_model_mixed_dense_sparse(self, archive_blob):
        """Eight client threads against a dense pool and a sparse pool of
        the same archive: every response must match the single-runtime
        reference, and the sparse pool must sit at a fraction of the dense
        pool's resident bytes."""
        with ModelRuntime(archive_blob) as runtime:
            reference = ArchiveMLP(runtime)
            rng = np.random.default_rng(42)
            xs = rng.standard_normal((8, _INPUT_DIM)).astype(np.float32)
            expected = reference.forward(xs)

        gateway = Gateway()
        gateway.add_model("dense", archive_blob, replicas=2, max_queue_depth=512)
        gateway.add_model(
            "sparse", archive_blob, replicas=2, sparse=True,
            policy="consistent-hash", max_queue_depth=512,
        )
        errors = []
        with gateway:
            def client(thread_index):
                try:
                    for round_no in range(15):
                        name = "dense" if (thread_index + round_no) % 2 else "sparse"
                        row = gateway.infer(
                            name,
                            xs[thread_index],
                            key=f"client-{thread_index}",
                            timeout=30,
                        )
                        np.testing.assert_allclose(
                            row, expected[thread_index], atol=1e-4
                        )
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = gateway.stats()
        assert not errors
        assert stats.completed == 8 * 15
        assert stats.failures == 0
        assert stats.rejected == 0
        assert stats.models["dense"].completed + stats.models["sparse"].completed == 120
        # Compressed-domain replicas are charged their true CSC footprint.
        assert 0 < stats.models["sparse"].cache_bytes < stats.models["dense"].cache_bytes / 2
        gateway.close()

    def test_store_digest_resolution(self, tmp_path, archive_blob):
        store = ModelStore(tmp_path / "store")
        digest = store.put_bytes(archive_blob)
        gateway = Gateway(store=store)
        gateway.add_model("by-prefix", digest=digest[:10], replicas=1)
        with gateway:
            row = gateway.infer("by-prefix", np.ones(_INPUT_DIM, dtype=np.float32))
        assert row.shape == (_OUTPUT_DIM,)
        gateway.close()

        with pytest.raises(ValidationError, match="no object"):
            other = Gateway(store=store)
            missing = "0000" if not digest.startswith("0000") else "ffff"
            other.add_model("nope", digest=missing)

    def test_validation(self, archive_blob, tmp_path):
        gateway = Gateway()
        with pytest.raises(ValidationError, match="exactly one"):
            gateway.add_model("m")
        with pytest.raises(ValidationError, match="exactly one"):
            gateway.add_model("m", archive_blob, digest="ab" * 32)
        with pytest.raises(ValidationError, match="needs a store"):
            gateway.add_model("m", digest="ab" * 32)
        with pytest.raises(ValidationError, match="replicas"):
            gateway.add_model("m", archive_blob, replicas=0)
        with pytest.raises(ValidationError, match="max_queue_depth"):
            gateway.add_model("m", archive_blob, max_queue_depth=0)
        with pytest.raises(ValidationError, match="unknown shard policy"):
            gateway.add_model("m", archive_blob, policy="alphabetical")
        with pytest.raises(ValidationError, match="no models"):
            gateway.start()

        gateway.add_model("m", archive_blob)
        with pytest.raises(ValidationError, match="already hosts"):
            gateway.add_model("m", archive_blob)
        with pytest.raises(ValidationError, match="not running"):
            gateway.submit("m", np.ones(_INPUT_DIM, dtype=np.float32))
        with gateway:
            with pytest.raises(ValidationError, match="while the gateway is running"):
                gateway.add_model("late", archive_blob)
            with pytest.raises(ValidationError, match="no model named"):
                gateway.submit("ghost", np.ones(_INPUT_DIM, dtype=np.float32))
        gateway.close()
        with pytest.raises(ValidationError, match="closed"):
            gateway.start()

    def test_stats_are_json_serializable(self, archive_blob):
        gateway = Gateway()
        gateway.add_model("m", archive_blob, replicas=2)
        with gateway:
            gateway.infer("m", np.ones(_INPUT_DIM, dtype=np.float32), timeout=30)
            payload = json.dumps(gateway.stats().as_dict())
        assert '"m"' in payload
        gateway.close()


class TestAdmissionControl:
    def test_fast_fail_rejection_under_saturation(self, archive_blob, wait_until):
        networks = []

        def factory():
            network = BlockingNetwork()
            networks.append(network)
            return network

        gateway = Gateway()
        gateway.add_model(
            "m", archive_blob, replicas=1, network_factory=factory,
            max_queue_depth=4, max_concurrency=1, batch_size=1,
        )
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        with gateway:
            # One request enters service and blocks, pinning the single
            # concurrency slot.
            first = gateway.submit("m", x)
            assert networks[0].entered.wait(timeout=10)
            wait_until(
                lambda: gateway.queue_depth("m") == 0,
                message="first request to leave the gateway queue",
            )
            # Fill the admission queue exactly to its depth limit...
            queued = [gateway.submit("m", x) for _ in range(4)]
            # ...so the next submit fast-fails with the 429-style error.
            with pytest.raises(GatewayOverloaded, match="saturated"):
                gateway.submit("m", x)
            with pytest.raises(GatewayOverloaded):
                gateway.submit("m", x)
            stats = gateway.stats().models["m"]
            assert stats.rejected == 2
            assert stats.submitted == 5
            assert stats.queue_depth == 4
            assert 0 < stats.rejection_rate < 1

            # Releasing the network drains everything that was admitted.
            networks[0].release.set()
            for future in [first, *queued]:
                future.result(timeout=30)
            wait_until(
                lambda: gateway.stats().models["m"].completed == 5,
                message="all admitted requests to complete",
            )
            assert gateway.queue_depth("m") == 0
        final = gateway.stats().models["m"]
        assert final.completed == 5
        assert final.failures == 0
        assert final.rejected == 2
        gateway.close()

    def test_failing_policy_does_not_leak_admission_slots(self, archive_blob, wait_until):
        """Regression: a shard policy that raises must not leave the popped
        request counted against the queue forever (the model would reach its
        depth limit and reject everything after max_queue_depth failures)."""

        class ExplodingPolicy(RoundRobinPolicy):
            name = "exploding"

            def choose(self, replicas, key=None):
                if key == "boom":
                    raise RuntimeError("no shard for you")
                return super().choose(replicas, key)

        gateway = Gateway()
        gateway.add_model(
            "m", archive_blob, replicas=1, policy=ExplodingPolicy(),
            max_queue_depth=2,
        )
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        with gateway:
            for _ in range(3):  # more failures than the depth limit
                with pytest.raises(RuntimeError, match="no shard"):
                    gateway.submit("m", x, key="boom").result(timeout=30)
            wait_until(
                lambda: gateway.queue_depth("m") == 0,
                message="failed requests to release their queue slots",
            )
            # Healthy traffic still flows after the failures.
            assert gateway.infer("m", x, timeout=30).shape == (_OUTPUT_DIM,)
            stats = gateway.stats().models["m"]
        assert stats.failures == 3
        assert stats.completed == 1
        assert stats.rejected == 0
        gateway.close()

    def test_submit_many_partial_admission_carries_admitted_futures(
        self, archive_blob, wait_until
    ):
        """Regression: a mid-sequence GatewayOverloaded must hand back the
        already-admitted futures via ``exc.admitted`` instead of orphaning
        them in the queue."""
        networks = []

        def factory():
            network = BlockingNetwork(out_dim=_OUTPUT_DIM)
            networks.append(network)
            return network

        gateway = Gateway()
        gateway.add_model(
            "m", archive_blob, replicas=1, network_factory=factory,
            max_queue_depth=2, max_concurrency=1, batch_size=1,
        )
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        with gateway:
            first = gateway.submit("m", x)
            assert networks[0].entered.wait(timeout=10)
            wait_until(
                lambda: gateway.queue_depth("m") == 0,
                message="first request to leave the gateway queue",
            )
            with pytest.raises(GatewayOverloaded, match="saturated") as info:
                gateway.submit_many("m", [x] * 5)
            admitted = info.value.admitted
            assert isinstance(admitted, tuple)
            assert len(admitted) == 2  # the queue's depth limit
            networks[0].release.set()
            assert first.result(timeout=30).shape == (_OUTPUT_DIM,)
            for future in admitted:
                assert future.result(timeout=30).shape == (_OUTPUT_DIM,)
        stats = gateway.stats().models["m"]
        assert stats.completed == 3
        assert stats.rejected == 1
        gateway.close()

    def test_every_admission_attempt_exports_one_finished_span(
        self, archive_blob, wait_until
    ):
        """Regression: overload rejections used to leak unfinished
        ``gateway.request`` spans — every attempt, admitted or rejected,
        must export exactly one span with its terminal outcome."""
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import BufferExporter, Tracer

        networks = []

        def factory():
            network = BlockingNetwork()
            networks.append(network)
            return network

        exporter = BufferExporter()
        gateway = Gateway(tracer=Tracer(1.0, exporter), metrics=MetricsRegistry())
        gateway.add_model(
            "m", archive_blob, replicas=1, network_factory=factory,
            max_queue_depth=2, max_concurrency=1, batch_size=1,
        )
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        with gateway:
            first = gateway.submit("m", x)
            assert networks[0].entered.wait(timeout=10)
            wait_until(
                lambda: gateway.queue_depth("m") == 0,
                message="first request to leave the gateway queue",
            )
            admitted = [gateway.submit("m", x) for _ in range(2)]
            for _ in range(2):
                with pytest.raises(GatewayOverloaded):
                    gateway.submit("m", x)
            with pytest.raises(ValidationError, match="1-D"):
                gateway.submit("m", np.ones((2, 2), dtype=np.float32))
            networks[0].release.set()
            for future in [first, *admitted]:
                future.result(timeout=30)
        gateway.close()
        requests = [s for s in exporter.spans if s["name"] == "gateway.request"]
        # 3 completed + 2 rejected; the invalid sample is turned away
        # before a span exists, so 5 attempts -> 5 finished spans.
        assert len(requests) == 5
        outcomes = sorted(s["attrs"]["outcome"] for s in requests)
        assert outcomes == [
            "completed", "completed", "completed", "rejected", "rejected",
        ]
        assert all(s["end_s"] >= s["start_s"] for s in requests)

    def test_admission_reopens_after_drain(self, archive_blob):
        gateway = Gateway()
        gateway.add_model("m", archive_blob, replicas=1, max_queue_depth=2)
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        with gateway:
            # Closed-loop traffic never trips a depth-2 queue: each wave's
            # requests are drained before the next wave is admitted.
            for _ in range(5):
                for future in [gateway.submit("m", x), gateway.submit("m", x)]:
                    future.result(timeout=30)
        assert gateway.stats().models["m"].rejected == 0
        assert gateway.stats().models["m"].completed == 10
        gateway.close()


class TestStopRestart:
    def test_stop_drains_inflight_and_restart_resets(self, archive_blob, wait_until):
        networks = []

        def factory():
            network = BlockingNetwork()
            networks.append(network)
            return network

        gateway = Gateway()
        gateway.add_model(
            "m", archive_blob, replicas=2, network_factory=factory,
            max_queue_depth=64, max_concurrency=4,
        )
        x = np.ones(_INPUT_DIM, dtype=np.float32)
        gateway.start()
        futures = [gateway.submit("m", x) for _ in range(6)]
        assert networks[0].entered.wait(timeout=10)

        # stop() must block until every accepted request resolves, so it
        # runs on a helper thread while this thread releases the networks.
        stopper = threading.Thread(target=gateway.stop)
        stopper.start()
        # Admission closes at the head of stop(); peek the flag rather than
        # probing with real submits (which would mutate the request count).
        wait_until(
            lambda: not gateway._models["m"].accepting,
            message="admission to close",
        )
        with pytest.raises(ValidationError, match="not running"):
            gateway.submit("m", x)
        assert stopper.is_alive(), "stop() returned with requests still blocked"
        for network in networks:
            network.release.set()
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        for future in futures:
            assert future.done()
            assert future.result().shape == (4,)

        stats = gateway.stats().models["m"]
        assert stats.completed == 6
        assert stats.queue_depth == 0

        # A restarted gateway serves again with fresh per-run stats.
        gateway.start()
        row = gateway.infer("m", x, timeout=30)
        assert row.shape == (4,)
        restarted = gateway.stats().models["m"]
        assert restarted.submitted == 1
        assert restarted.completed == 1
        gateway.stop()
        with pytest.raises(ValidationError, match="not running"):
            gateway.submit("m", x)
        gateway.close()


class TestGatewayBenchmarkHarness:
    def test_smoke_run_shape_and_saturation(self, archive_blob):
        results = gateway_benchmark(
            {"a": archive_blob, "b": archive_blob},
            replicas=2,
            clients=2,
            requests_per_client=8,
            burst=4,
            sparse={"b": True},
            saturation_queue_depth=2,
        )
        assert results["completed"] == 16
        assert results["failures"] == 0
        assert results["throughput_rps"] > 0
        assert set(results["per_model"]) == {"a", "b"}
        assert set(results["latency_ms"]) <= {"p50", "p90", "p99"}
        saturation = results["saturation"]
        assert saturation["offered"] == saturation["admitted"] + saturation["rejected"]
        assert saturation["rejected"] > 0
        assert saturation["queue_depth_limit"] == 2

    def test_serving_benchmark_gateway_wiring(self, archive_blob):
        results = serving_benchmark(
            archive_blob,
            concurrency=(1,),
            accesses_per_thread=10,
            warm_repeats=2,
            gateway_replicas=(1, 2),
            gateway_clients=2,
            gateway_requests_per_client=6,
        )
        sweep = results["gateway"]
        assert set(sweep) == {"1", "2"}
        assert all(point["throughput_rps"] > 0 for point in sweep.values())
        # The saturation probe runs once, at the largest pool.
        assert "saturation" not in sweep["1"]
        assert sweep["2"]["saturation"]["rejected"] > 0
