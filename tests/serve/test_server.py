"""Tests for the dynamic-batching inference :class:`Server`."""

import threading

import numpy as np
import pytest

from repro.serve import Server
from repro.utils.errors import ValidationError


class FakeNetwork:
    """Deterministic stand-in: 'probabilities' are a linear map of the input."""

    def __init__(self, in_dim=6, classes=4):
        rng = np.random.default_rng(3)
        self.w = rng.normal(0, 1, (in_dim, classes)).astype(np.float32)
        self.batch_shapes = []
        self._lock = threading.Lock()

    def forward(self, x, training=False):
        assert not training
        with self._lock:
            self.batch_shapes.append(x.shape)
        return x @ self.w


class FakeRuntime:
    def __init__(self):
        self.loaded = False

    def load_into(self, network):
        self.loaded = True


class TestServing:
    def test_single_request_matches_direct_forward(self):
        net = FakeNetwork()
        x = np.arange(6, dtype=np.float32)
        with Server(net, batch_size=4) as server:
            probs = server.infer(x, timeout=5)
        np.testing.assert_allclose(probs, (x[None, :] @ net.w)[0], rtol=1e-6)

    def test_runtime_weights_installed_on_start(self):
        runtime = FakeRuntime()
        with Server(FakeNetwork(), runtime):
            pass
        assert runtime.loaded

    def test_concurrent_requests_are_batched_and_correct(self):
        net = FakeNetwork()
        rng = np.random.default_rng(11)
        samples = rng.normal(0, 1, (120, 6)).astype(np.float32)
        expected = samples @ net.w
        with Server(net, batch_size=16, max_batch_delay=0.01) as server:
            futures = [server.submit(s) for s in samples]
            results = [f.result(timeout=10) for f in futures]
            stats = server.stats()
        for got, want in zip(results, expected):
            np.testing.assert_allclose(got, want, rtol=1e-6)
        assert stats.requests == 120
        assert stats.batches <= 120
        assert stats.mean_batch_size >= 1.0
        # Dynamic batching must have coalesced *some* of the burst.
        assert any(shape[0] > 1 for shape in net.batch_shapes)
        assert set(stats.latencies_ms) == {"p50", "p90", "p99"}
        assert stats.throughput_rps > 0

    def test_many_client_threads(self):
        net = FakeNetwork()
        rng = np.random.default_rng(5)
        samples = rng.normal(0, 1, (8, 20, 6)).astype(np.float32)
        errors = []
        with Server(net, batch_size=8, max_batch_delay=0.005) as server:
            def client(idx):
                try:
                    for s in samples[idx]:
                        got = server.infer(s, timeout=10)
                        np.testing.assert_allclose(got, s @ net.w, rtol=1e-6)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats()
        assert not errors
        assert stats.requests == 160

    def test_forward_error_propagates_to_futures(self):
        class BrokenNetwork:
            def forward(self, x, training=False):
                raise RuntimeError("no weights")

        with Server(BrokenNetwork()) as server:
            future = server.submit(np.zeros(4, dtype=np.float32))
            with pytest.raises(RuntimeError, match="no weights"):
                future.result(timeout=5)
            stats = server.stats()
        assert stats.failures == 1

    def test_submit_requires_running_server(self):
        server = Server(FakeNetwork())
        with pytest.raises(ValidationError, match="not running"):
            server.submit(np.zeros(6, dtype=np.float32))
        server.start()
        server.stop()
        with pytest.raises(ValidationError, match="not running"):
            server.submit(np.zeros(6, dtype=np.float32))

    def test_restart_serves_again(self):
        """stop() may leave its sentinel unconsumed; a restarted server must
        not inherit it (fresh queue per start)."""
        net = FakeNetwork()
        x = np.ones(6, dtype=np.float32)
        server = Server(net, batch_size=4)
        for _ in range(3):
            server.start()
            np.testing.assert_allclose(
                server.infer(x, timeout=5), x @ net.w, rtol=1e-6
            )
            server.stop()
            # Stats cover one run: each restart resets the counters.
            assert server.stats().requests == 1

    def test_classify(self):
        net = FakeNetwork()
        x = np.ones(6, dtype=np.float32)
        with Server(net) as server:
            label = server.classify(x, timeout=5)
        assert label == int(np.argmax(x @ net.w))

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            Server(FakeNetwork(), batch_size=0)
        with pytest.raises(ValidationError):
            Server(FakeNetwork(), max_batch_delay=-1)
