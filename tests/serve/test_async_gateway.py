"""Tests for the asyncio front door: deadlines, cancellation, drain, HTTP.

Every test drives the event loop through ``asyncio.run`` (the container
ships no pytest-asyncio).  Determinism comes from ``BlockingNetwork``-style
release gates and ``asyncio``-native waits — never fixed thread sleeps.
The process-backend tests spawn real workers, so this module must stay
import-safe for the spawn start method (no module-level serving work).
"""

import asyncio
import json
import os
import signal
import threading

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import BufferExporter, Tracer
from repro.serve import AsyncGateway, HttpFrontDoor
from repro.utils.errors import (
    DeadlineExceeded,
    GatewayOverloaded,
    ReplicaCrashed,
    ValidationError,
)

_INPUT_DIM = 160  # fc6 of the session model is 96x160
_OUTPUT_DIM = 32  # fc8 is 32x64


class BlockingNetwork:
    """Forward passes block until the test releases them — deterministic
    saturation without a single sleep (same pattern as test_gateway)."""

    def __init__(self, out_dim: int = _OUTPUT_DIM):
        self.out_dim = out_dim
        self.release = threading.Event()
        self.entered = threading.Event()

    def set_weights(self, name, weights):
        pass

    def set_sparse_weights(self, name, weight):
        pass

    def forward(self, x, training=False):
        self.entered.set()
        assert self.release.wait(timeout=30), "test never released the network"
        return np.zeros((x.shape[0], self.out_dim), dtype=np.float32)


def _blocking_gateway(archive_blob, *, max_queue_depth, tracer=None):
    """A thread-backed AsyncGateway whose single replica blocks on demand."""
    networks = []

    def factory():
        network = BlockingNetwork()
        networks.append(network)
        return network

    gateway = AsyncGateway(
        replica_backend="thread", tracer=tracer, metrics=MetricsRegistry()
    )
    gateway.add_model(
        "m", archive_blob, replicas=1, network_factory=factory,
        max_queue_depth=max_queue_depth, max_concurrency=1, batch_size=1,
    )
    return gateway, networks


class TestAsyncServing:
    def test_submit_gather_and_submit_many_process_backend(self, archive_blob):
        async def main():
            gateway = AsyncGateway(replica_backend="process")
            gateway.add_model("m", archive_blob, replicas=1, max_queue_depth=64)
            x = np.ones(_INPUT_DIM, dtype=np.float32)
            async with gateway:
                y = await gateway.submit("m", x)
                assert y.shape == (_OUTPUT_DIM,)
                ys = await asyncio.gather(*[gateway.submit("m", x) for _ in range(16)])
                assert len(ys) == 16
                many = await gateway.submit_many("m", [x] * 4)
                assert [row.shape for row in many] == [(_OUTPUT_DIM,)] * 4
                if AsyncGateway._add_reader_supported(asyncio.get_running_loop()):
                    # Multiplex mode: worker pipes are loop readers, and the
                    # replica runs no receiver thread.
                    assert gateway._watched
                stats = gateway.stats().models["m"]
                assert stats.completed == 21
                assert stats.failures == 0
            await gateway.close()

        asyncio.run(main())

    def test_admission_validation_before_any_await(self, archive_blob):
        async def main():
            gateway = AsyncGateway(replica_backend="thread")
            gateway.add_model("m", archive_blob, replicas=1, max_queue_depth=8)
            async with gateway:
                with pytest.raises(ValidationError, match="features"):
                    await gateway.submit("m", np.ones(7, dtype=np.float32))
                with pytest.raises(ValidationError, match="deadline"):
                    await gateway.submit(
                        "m", np.ones(_INPUT_DIM, dtype=np.float32), deadline=-1.0
                    )
                # The bad submits left no queue slot behind.
                assert gateway._model("m").queued == 0
                y = await gateway.submit("m", np.ones(_INPUT_DIM, dtype=np.float32))
                assert y.shape == (_OUTPUT_DIM,)
            await gateway.close()

        asyncio.run(main())

    def test_sync_context_manager_rejected(self, archive_blob):
        gateway = AsyncGateway(replica_backend="thread")
        gateway.add_model("m", archive_blob, replicas=1)
        with pytest.raises(ValidationError, match="async with"):
            with gateway:
                pass

    def test_submit_from_foreign_loop_rejected(self, archive_blob):
        async def main():
            gateway = AsyncGateway(replica_backend="thread")
            gateway.add_model("m", archive_blob, replicas=1, max_queue_depth=8)
            x = np.ones(_INPUT_DIM, dtype=np.float32)
            async with gateway:

                async def foreign():
                    with pytest.raises(ValidationError, match="event loop"):
                        await gateway.submit("m", x)

                # A second event loop on another thread must be turned away
                # at admission, not corrupt loop-owned state.
                await asyncio.to_thread(asyncio.run, foreign())
            await gateway.close()

        asyncio.run(main())


class TestDeadlines:
    def test_deadline_expiry_frees_admission_slot(self, archive_blob):
        """The acceptance regression: a deadline-expired request must give
        back its queue slot — with a depth-1 queue, traffic after the expiry
        is admitted where a leak would fast-fail it forever."""

        async def main():
            exporter = BufferExporter()
            gateway, networks = _blocking_gateway(
                archive_blob, max_queue_depth=1, tracer=Tracer(1.0, exporter)
            )
            x = np.ones(_INPUT_DIM, dtype=np.float32)
            async with gateway:
                # First request enters service and blocks, pinning the
                # single concurrency slot.
                first = asyncio.ensure_future(gateway.submit("m", x))
                assert await asyncio.to_thread(networks[0].entered.wait, 10)
                # Second request fills the depth-1 admission queue...
                second = asyncio.ensure_future(
                    gateway.submit("m", x, deadline=0.15)
                )
                await asyncio.sleep(0)  # let it admit
                assert gateway._model("m").queued == 1
                # ...so a third fast-fails while the queue is full.
                with pytest.raises(GatewayOverloaded, match="saturated"):
                    await gateway.submit("m", x)
                # The queued request expires: its slot must free *now*.
                with pytest.raises(DeadlineExceeded):
                    await second
                assert gateway._model("m").queued == 0
                # Proof the slot came back: a new request is admitted even
                # though the blocking request still owns the service slot.
                fourth = asyncio.ensure_future(gateway.submit("m", x))
                await asyncio.sleep(0)
                assert gateway._model("m").queued == 1
                networks[0].release.set()
                assert (await first).shape == (_OUTPUT_DIM,)
                assert (await fourth).shape == (_OUTPUT_DIM,)
                stats = gateway.stats().models["m"]
                assert stats.completed == 2
                assert stats.deadline_exceeded == 1
                assert stats.rejected == 1
            await gateway.close()
            # Every admission attempt exported exactly one finished
            # gateway.request span with its terminal outcome.
            requests = [
                s for s in exporter.spans if s["name"] == "gateway.request"
            ]
            outcomes = sorted(s["attrs"]["outcome"] for s in requests)
            assert outcomes == [
                "completed", "completed", "deadline_exceeded", "rejected",
            ]
            assert all(s["end_s"] >= s["start_s"] for s in requests)

        asyncio.run(main())

    def test_deadline_during_worker_sigkill(self, archive_blob):
        """Expiry racing a worker crash: the caller unblocks with a real
        error, the admission slot frees, and the respawned worker serves."""

        async def main():
            gateway = AsyncGateway(replica_backend="process")
            gateway.add_model("m", archive_blob, replicas=1, max_queue_depth=16)
            x = np.ones(_INPUT_DIM, dtype=np.float32)
            async with gateway:
                y = await gateway.submit("m", x)
                assert y.shape == (_OUTPUT_DIM,)
                server = gateway._model("m").replicas[0].server
                os.kill(server.worker_pid, signal.SIGKILL)
                # Submitting into the dying worker must resolve promptly:
                # crash containment (ReplicaCrashed), the race with stop
                # bookkeeping (ValidationError), or the deadline itself.
                with pytest.raises(
                    (DeadlineExceeded, ReplicaCrashed, ValidationError)
                ):
                    await gateway.submit("m", x, deadline=0.5)
                assert gateway._model("m").queued == 0
                # The server respawns the worker; traffic recovers.
                recovered = False
                for _ in range(200):
                    try:
                        y = await gateway.submit("m", x, deadline=5.0)
                        assert y.shape == (_OUTPUT_DIM,)
                        recovered = True
                        break
                    except (DeadlineExceeded, ReplicaCrashed, ValidationError):
                        await asyncio.sleep(0.05)
                assert recovered, "gateway did not recover after worker SIGKILL"
                assert gateway._model("m").queued == 0
            await gateway.close()

        asyncio.run(main())


class TestCancellation:
    def test_cancel_before_first_step_releases_admission(self, archive_blob):
        """Regression: a task cancelled before its coroutine ever runs must
        still decrement the queue gauge and count as cancelled."""

        async def main():
            gateway = AsyncGateway(replica_backend="thread", metrics=MetricsRegistry())
            gateway.add_model("m", archive_blob, replicas=1, max_queue_depth=1)
            x = np.ones(_INPUT_DIM, dtype=np.float32)
            async with gateway:
                task = asyncio.ensure_future(gateway.submit("m", x))
                await asyncio.sleep(0)  # admits; the request task has not run
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                assert gateway._model("m").queued == 0
                # The depth-1 queue accepts new work — nothing leaked.
                y = await gateway.submit("m", x)
                assert y.shape == (_OUTPUT_DIM,)
                stats = gateway.stats().models["m"]
                assert stats.cancelled == 1
                assert stats.completed == 1
            await gateway.close()

        asyncio.run(main())

    def test_cancellation_vs_completion_race(self, archive_blob):
        """Cancel at every stage — unstarted, queued, in service, finished —
        and require the books to balance exactly."""

        async def main():
            total = 24
            gateway, networks = _blocking_gateway(archive_blob, max_queue_depth=total)
            x = np.ones(_INPUT_DIM, dtype=np.float32)
            async with gateway:
                tasks = [
                    asyncio.ensure_future(gateway.submit("m", x))
                    for _ in range(total)
                ]
                # A third cancelled before any task steps, a third after the
                # head of the line is blocked in service, a third raced
                # against the release itself.
                for task in tasks[:8]:
                    task.cancel()
                assert await asyncio.to_thread(networks[0].entered.wait, 10)
                for task in tasks[8:16]:
                    task.cancel()
                networks[0].release.set()
                for task in tasks[16:]:
                    task.cancel()
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                completed = sum(
                    1 for o in outcomes if isinstance(o, np.ndarray)
                )
                cancelled = sum(
                    1 for o in outcomes if isinstance(o, asyncio.CancelledError)
                )
                assert completed + cancelled == total
                stats = gateway.stats().models["m"]
                # Tasks cancelled before their submit coroutine ever stepped
                # were never admitted, so the gateway books cover admitted
                # requests only — and they must balance exactly.
                assert stats.submitted == stats.completed + stats.cancelled
                assert stats.completed >= completed
                assert stats.failures == 0
                assert gateway._model("m").queued == 0

                # An abandoned in-service request frees its slot when the
                # replica's (discarded) answer settles, which can land after
                # gather returns — so prove capacity by *using* it: this
                # submit parks on the gate until the slot comes back.
                y = await gateway.submit("m", x)
                assert y.shape == (_OUTPUT_DIM,)
                # Every concurrency slot came back.
                assert gateway._gates["m"].free == 1
            await gateway.close()

        asyncio.run(main())


class TestDrainOnStop:
    def test_stop_waits_for_inflight_and_deadlines_unblock_queued(
        self, archive_blob
    ):
        async def main():
            gateway, networks = _blocking_gateway(archive_blob, max_queue_depth=8)
            x = np.ones(_INPUT_DIM, dtype=np.float32)
            await gateway.start()
            first = asyncio.ensure_future(gateway.submit("m", x))
            assert await asyncio.to_thread(networks[0].entered.wait, 10)
            queued = [
                asyncio.ensure_future(gateway.submit("m", x, deadline=0.15))
                for _ in range(3)
            ]
            await asyncio.sleep(0)  # all three admitted behind the blocker
            stop_task = asyncio.ensure_future(gateway.stop())
            await asyncio.sleep(0)
            # Admission is closed the moment stop begins.
            with pytest.raises(ValidationError, match="not running"):
                await gateway.submit("m", x)
            # The queued requests expire on their own deadlines; the drain
            # does not hold them hostage to the blocked head-of-line.
            outcomes = await asyncio.gather(*queued, return_exceptions=True)
            assert all(isinstance(o, DeadlineExceeded) for o in outcomes)
            # ...but stop still waits for the genuinely in-flight request.
            assert not stop_task.done()
            networks[0].release.set()
            assert (await first).shape == (_OUTPUT_DIM,)
            await stop_task
            stats = gateway.stats().models["m"]
            assert stats.completed == 1
            assert stats.deadline_exceeded == 3
            assert gateway._model("m").queued == 0
            # Stopped twice is a no-op; restart serves again.
            await gateway.stop()
            async with gateway:
                for network in networks:
                    network.release.set()
                y = await gateway.submit("m", x)
                assert y.shape == (_OUTPUT_DIM,)
            await gateway.close()

        asyncio.run(main())


async def _http_roundtrip(reader, writer, method, path, body=None, close=False):
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\n"
    )
    if close:
        head += "Connection: close\r\n"
    writer.write(head.encode("latin-1") + b"\r\n" + payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    data = await reader.readexactly(length) if length else b""
    return status, headers, data


class TestHttpFrontDoor:
    def test_endpoints_keepalive_and_error_mapping(self, archive_blob):
        async def main():
            gateway = AsyncGateway(replica_backend="thread", metrics=MetricsRegistry())
            gateway.add_model("m", archive_blob, replicas=1, max_queue_depth=32)
            async with gateway:
                async with HttpFrontDoor(gateway, port=0) as front:
                    host, port = front.address
                    reader, writer = await asyncio.open_connection(host, port)
                    try:
                        # Keep-alive: the whole sequence rides one connection.
                        status, _headers, body = await _http_roundtrip(
                            reader, writer, "GET", "/healthz"
                        )
                        assert status == 200
                        assert json.loads(body) == {
                            "status": "ok", "models": ["m"],
                        }
                        x = [1.0] * _INPUT_DIM
                        status, _headers, body = await _http_roundtrip(
                            reader, writer, "POST", "/v1/infer/m", body={"x": x}
                        )
                        assert status == 200
                        reply = json.loads(body)
                        assert reply["model"] == "m"
                        assert len(reply["y"]) == _OUTPUT_DIM
                        # Admission-time validation surfaces as 400.
                        status, _headers, body = await _http_roundtrip(
                            reader, writer, "POST", "/v1/infer/m",
                            body={"x": [1.0, 2.0]},
                        )
                        assert status == 400
                        assert "features" in json.loads(body)["error"]
                        # Unknown model and unknown route are 404.
                        status, _headers, _body = await _http_roundtrip(
                            reader, writer, "POST", "/v1/infer/ghost",
                            body={"x": x},
                        )
                        assert status == 404
                        status, _headers, _body = await _http_roundtrip(
                            reader, writer, "GET", "/nope"
                        )
                        assert status == 404
                        # Wrong method is 405; malformed JSON is 400.
                        status, _headers, _body = await _http_roundtrip(
                            reader, writer, "GET", "/v1/infer/m"
                        )
                        assert status == 405
                        writer.write(
                            b"POST /v1/infer/m HTTP/1.1\r\nHost: t\r\n"
                            b"Content-Length: 3\r\n\r\n{{{"
                        )
                        await writer.drain()
                        status_line = await reader.readline()
                        assert int(status_line.split()[1]) == 400
                        length = 0
                        while True:
                            line = await reader.readline()
                            if line in (b"\r\n", b"\n"):
                                break
                            if line.lower().startswith(b"content-length:"):
                                length = int(line.split(b":")[1])
                        body = await reader.readexactly(length)
                        assert "JSON" in json.loads(body)["error"]
                    finally:
                        writer.close()
                    # A deadline too tight to meet maps onto 504, and the
                    # live /metrics scrape shows the outcome series moving.
                    reader, writer = await asyncio.open_connection(host, port)
                    try:
                        status, _headers, body = await _http_roundtrip(
                            reader, writer, "POST", "/v1/infer/m",
                            body={"x": x, "deadline": 1e-6},
                        )
                        assert status == 504
                        status, _headers, body = await _http_roundtrip(
                            reader, writer, "GET", "/metrics", close=True
                        )
                        assert status == 200
                        text = body.decode("utf-8")
                        assert "repro_gateway_requests_total" in text
                        assert "repro_gateway_deadline_exceeded_total" in text
                    finally:
                        writer.close()
            await gateway.close()

        asyncio.run(main())

    def test_front_door_requires_start_for_address(self, archive_blob):
        gateway = AsyncGateway(replica_backend="thread")
        front = HttpFrontDoor(gateway)
        with pytest.raises(ValidationError, match="not started"):
            front.address
