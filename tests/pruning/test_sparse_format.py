"""Tests for the two-array sparse layer format."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.pruning import SparseLayer, decode_sparse, encode_sparse, sparse_to_scipy
from repro.utils.errors import DecompressionError, ValidationError


def random_pruned_matrix(rng, shape=(64, 100), density=0.08):
    w = rng.normal(0, 0.05, shape).astype(np.float32)
    mask = rng.random(shape) < density
    return w * mask


class TestEncodeDecode:
    def test_roundtrip_exact(self, rng):
        w = random_pruned_matrix(rng)
        layer = encode_sparse(w)
        assert np.array_equal(decode_sparse(layer), w)

    def test_roundtrip_various_densities(self, rng):
        for density in (0.01, 0.05, 0.2, 0.8):
            w = random_pruned_matrix(rng, density=density)
            assert np.array_equal(decode_sparse(encode_sparse(w)), w)

    def test_nnz_counts_true_nonzeros(self, rng):
        w = random_pruned_matrix(rng)
        layer = encode_sparse(w)
        assert layer.nnz == int((w != 0).sum())
        assert layer.entry_count >= layer.nnz

    def test_empty_matrix(self):
        layer = encode_sparse(np.zeros((10, 20), dtype=np.float32))
        assert layer.nnz == 0
        assert layer.entry_count == 0
        assert not decode_sparse(layer).any()

    def test_dense_matrix(self, rng):
        w = rng.normal(0, 1, (8, 8)).astype(np.float32)
        w[w == 0] = 1.0
        layer = encode_sparse(w)
        assert layer.nnz == 64
        assert np.array_equal(decode_sparse(layer), w)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            encode_sparse(np.zeros(10, dtype=np.float32))

    def test_large_gaps_use_padding_entries(self):
        w = np.zeros((1, 1000), dtype=np.float32)
        w[0, 0] = 1.0
        w[0, 999] = 2.0
        layer = encode_sparse(w)
        # Gap of 999 needs 3 padding entries of 255 plus the real delta.
        assert layer.entry_count == 2 + 3
        assert (layer.index == 255).sum() >= 3
        assert np.array_equal(decode_sparse(layer), w)

    def test_gap_exactly_255(self):
        w = np.zeros((1, 600), dtype=np.float32)
        w[0, 0] = 1.0
        w[0, 255] = 2.0  # delta exactly 255: representable without padding
        layer = encode_sparse(w)
        assert layer.entry_count == 2
        assert np.array_equal(decode_sparse(layer), w)

    def test_gap_of_256_needs_padding(self):
        w = np.zeros((1, 600), dtype=np.float32)
        w[0, 0] = 1.0
        w[0, 256] = 2.0
        layer = encode_sparse(w)
        assert layer.entry_count == 3
        assert np.array_equal(decode_sparse(layer), w)

    def test_leading_gap_handled(self):
        w = np.zeros((1, 1000), dtype=np.float32)
        w[0, 700] = 3.0
        layer = encode_sparse(w)
        assert np.array_equal(decode_sparse(layer), w)

    def test_all_indices_fit_in_uint8(self, rng):
        w = random_pruned_matrix(rng, shape=(32, 2048), density=0.002)
        layer = encode_sparse(w)
        assert layer.index.dtype == np.uint8
        assert np.array_equal(decode_sparse(layer), w)


class TestReplacementData:
    def test_decode_with_replacement_values(self, rng):
        w = random_pruned_matrix(rng)
        layer = encode_sparse(w)
        noisy = layer.data + rng.uniform(-1e-3, 1e-3, layer.data.shape).astype(np.float32)
        dense = decode_sparse(layer, data=noisy)
        # Reconstructed non-zero positions carry the replacement values.
        positions = w != 0
        assert np.max(np.abs(dense[positions] - w[positions])) <= 1e-3 * (1 + 1e-6)

    def test_replacement_length_mismatch_raises(self, rng):
        layer = encode_sparse(random_pruned_matrix(rng))
        with pytest.raises(DecompressionError):
            decode_sparse(layer, data=np.zeros(layer.entry_count + 1, dtype=np.float32))


class TestSizeAccounting:
    def test_packed_bytes_is_40_bits_per_entry(self, rng):
        layer = encode_sparse(random_pruned_matrix(rng))
        assert layer.packed_bytes == layer.entry_count * 5

    def test_csr_ratio_below_nominal_pruning_ratio(self, rng):
        """40 bits/entry means the CSR ratio is below 1/density (Section 3.2)."""
        w = random_pruned_matrix(rng, shape=(128, 256), density=0.1)
        layer = encode_sparse(w)
        nominal = 1.0 / layer.density
        assert layer.compression_ratio < nominal
        assert layer.compression_ratio > nominal * 0.7

    def test_density(self, rng):
        w = random_pruned_matrix(rng, shape=(50, 50), density=0.1)
        layer = encode_sparse(w)
        assert layer.density == pytest.approx((w != 0).mean())

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValidationError):
            SparseLayer(
                data=np.zeros(3, dtype=np.float32),
                index=np.zeros(2, dtype=np.uint8),
                shape=(2, 2),
                nnz=2,
            )


class TestCorruptIndex:
    def test_zero_delta_raises_on_both_decode_paths(self, rng):
        """A zero delta cannot come out of encode_sparse (deltas are in
        [1, 255]); both reconstructions must flag it as corruption rather
        than silently colliding two entries on one position."""
        layer = encode_sparse(random_pruned_matrix(rng))
        bad_index = layer.index.copy()
        bad_index[1] = 0
        corrupt = SparseLayer(
            data=layer.data, index=bad_index, shape=layer.shape, nnz=layer.nnz
        )
        with pytest.raises(DecompressionError, match="zero delta"):
            decode_sparse(corrupt)
        with pytest.raises(DecompressionError, match="zero delta"):
            sparse_to_scipy(corrupt)

    def test_overflowing_index_raises_on_both_decode_paths(self, rng):
        layer = encode_sparse(random_pruned_matrix(rng))
        bad_index = layer.index.copy()
        bad_index[:] = 255
        corrupt = SparseLayer(
            data=layer.data, index=bad_index, shape=(2, 3), nnz=layer.nnz
        )
        with pytest.raises(DecompressionError, match="past the end"):
            decode_sparse(corrupt)
        with pytest.raises(DecompressionError, match="past the end"):
            sparse_to_scipy(corrupt)


class TestScipyInterop:
    def test_matches_scipy_csr(self, rng):
        w = random_pruned_matrix(rng)
        layer = encode_sparse(w)
        csr = sparse_to_scipy(layer)
        assert isinstance(csr, sp.csr_matrix)
        assert np.array_equal(csr.toarray(), w)
        assert csr.nnz == layer.nnz
