"""Tests for magnitude pruning and masked retraining."""

import numpy as np
import pytest

from repro.nn import SGDConfig, models
from repro.pruning import PruningConfig, magnitude_threshold, prune_network, prune_weights
from repro.utils.errors import ValidationError


class TestThreshold:
    def test_keep_ratio_respected(self, rng):
        w = rng.normal(0, 1, (100, 100)).astype(np.float32)
        for ratio in (0.05, 0.1, 0.5):
            pruned, mask = prune_weights(w, ratio)
            kept = mask.mean()
            assert kept == pytest.approx(ratio, abs=0.01)
            assert not pruned[~mask].any()

    def test_keeps_largest_magnitudes(self, rng):
        w = rng.normal(0, 1, (50, 50)).astype(np.float32)
        _, mask = prune_weights(w, 0.1)
        kept_min = np.abs(w[mask]).min()
        dropped_max = np.abs(w[~mask]).max()
        assert kept_min >= dropped_max

    def test_keep_all_and_none(self, rng):
        w = rng.normal(0, 1, (10, 10)).astype(np.float32)
        assert magnitude_threshold(w, 1.0) == 0.0
        assert np.isinf(magnitude_threshold(w, 0.0))

    def test_invalid_ratio(self, rng):
        w = rng.normal(0, 1, (4, 4)).astype(np.float32)
        with pytest.raises(ValidationError):
            prune_weights(w, 1.5)
        with pytest.raises(ValidationError):
            prune_weights(w, -0.1)


class TestPruningConfig:
    def test_ratio_validation(self):
        with pytest.raises(ValidationError):
            PruningConfig(ratios={"ip1": 2.0})

    def test_default_retrain_config(self):
        cfg = PruningConfig(ratios={"ip1": 0.1})
        assert isinstance(cfg.retrain_config, SGDConfig)


class TestPruneNetwork:
    def test_unknown_layer_rejected(self):
        net = models.lenet_300_100(seed=0)
        with pytest.raises(ValidationError):
            prune_network(net, PruningConfig(ratios={"nope": 0.1}, retrain=False))

    def test_retrain_without_data_rejected(self):
        net = models.lenet_300_100(seed=0)
        with pytest.raises(ValidationError):
            prune_network(net, PruningConfig(ratios={"ip1": 0.1}, retrain=True))

    def test_prune_without_retrain(self):
        net = models.lenet_300_100(seed=0)
        result = prune_network(net, PruningConfig(ratios={"ip1": 0.1, "ip2": 0.2}, retrain=False))
        assert set(result.sparse_layers) == {"ip1", "ip2"}
        assert result.density("ip1") == pytest.approx(0.1, abs=0.01)
        assert result.retrain_history is None
        # Network weights were actually zeroed in place.
        assert (net.get_weights("ip1") != 0).mean() == pytest.approx(0.1, abs=0.01)

    def test_pruned_network_stats(self):
        net = models.lenet_300_100(seed=0)
        result = prune_network(
            net, PruningConfig(ratios={"ip1": 0.08, "ip2": 0.09, "ip3": 0.26}, retrain=False)
        )
        assert result.dense_fc_bytes == net.fc_parameter_bytes() - sum(
            l.params["bias"].nbytes for l in net.fc_layers()
        )
        assert 7 < result.pruning_compression_ratio < 13

    def test_retraining_keeps_masks_and_recovers(self, small_dataset, trained_lenet300):
        train, test = small_dataset
        net = trained_lenet300.clone()
        before = net.accuracy(test.images, test.labels)
        result = prune_network(
            net,
            PruningConfig(
                ratios={"ip1": 0.08, "ip2": 0.09, "ip3": 0.26},
                retrain=True,
                retrain_config=SGDConfig(epochs=3, learning_rate=0.02, weight_decay=1e-4, seed=1),
            ),
            train_images=train.images,
            train_labels=train.labels,
        )
        after = net.accuracy(test.images, test.labels)
        # Pruning + masked retraining must stay within a couple points of the
        # dense model (the paper's pruning is lossless; ours is near-lossless).
        assert after >= before - 0.03
        for name, mask in result.masks.items():
            w = net.get_weights(name)
            assert not w[~mask].any()
        assert result.retrain_history is not None

    def test_refresh_sparse_layers(self, pruned_lenet300):
        pruned = pruned_lenet300
        stale = {name: layer.data.copy() for name, layer in pruned.sparse_layers.items()}
        pruned.refresh_sparse_layers()
        for name, layer in pruned.sparse_layers.items():
            assert layer.data.shape == stale[name].shape
