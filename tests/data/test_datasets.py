"""Tests for the dataset container and synthetic generators."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    SyntheticSpec,
    imagenet_like,
    iterate_batches,
    make_classification_images,
    mnist_like,
    train_test_split,
)
from repro.utils.errors import ValidationError


class TestDataset:
    def test_basic_properties(self, fresh_rng):
        images = fresh_rng.normal(size=(10, 1, 4, 4)).astype(np.float32)
        labels = np.arange(10) % 3
        ds = Dataset(images, labels, name="x")
        assert len(ds) == 10
        assert ds.num_classes == 3
        assert ds.image_shape == (1, 4, 4)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            Dataset(np.zeros((3, 4, 4)), np.zeros(3, dtype=int))
        with pytest.raises(ValidationError):
            Dataset(np.zeros((3, 1, 4, 4)), np.zeros(4, dtype=int))

    def test_subset_and_take(self, fresh_rng):
        images = fresh_rng.normal(size=(10, 1, 2, 2)).astype(np.float32)
        ds = Dataset(images, np.arange(10), name="x")
        sub = ds.subset(np.array([3, 1]))
        assert np.array_equal(sub.labels, [3, 1])
        assert len(ds.take(4)) == 4
        assert len(ds.take(100)) == 10

    def test_train_test_split_disjoint_and_complete(self):
        ds = mnist_like(samples_per_class=20, seed=0)
        train, test = train_test_split(ds, 0.25, seed=1)
        assert len(train) + len(test) == len(ds)
        assert len(test) == round(0.25 * len(ds))
        # Determinism
        train2, test2 = train_test_split(ds, 0.25, seed=1)
        assert np.array_equal(test.labels, test2.labels)

    def test_train_test_split_invalid_fraction(self):
        ds = mnist_like(samples_per_class=5, seed=0)
        with pytest.raises(ValidationError):
            train_test_split(ds, 0.0)
        with pytest.raises(ValidationError):
            train_test_split(ds, 1.0)

    def test_iterate_batches_covers_everything(self):
        ds = mnist_like(samples_per_class=13, seed=0)
        seen = 0
        for xb, yb in iterate_batches(ds, 32):
            assert len(xb) == len(yb) <= 32
            seen += len(xb)
        assert seen == len(ds)

    def test_iterate_batches_shuffle_deterministic(self):
        ds = mnist_like(samples_per_class=10, seed=0)
        a = [yb for _, yb in iterate_batches(ds, 16, shuffle=True, seed=5)]
        b = [yb for _, yb in iterate_batches(ds, 16, shuffle=True, seed=5)]
        for ya, yb in zip(a, b):
            assert np.array_equal(ya, yb)

    def test_iterate_batches_invalid_batch_size(self):
        ds = mnist_like(samples_per_class=5, seed=0)
        with pytest.raises(ValidationError):
            list(iterate_batches(ds, 0))


class TestSyntheticGenerators:
    def test_mnist_like_shapes(self):
        ds = mnist_like(samples_per_class=15, seed=1)
        assert ds.images.shape == (150, 1, 28, 28)
        assert ds.images.dtype == np.float32
        assert ds.num_classes == 10
        assert np.bincount(ds.labels).tolist() == [15] * 10

    def test_imagenet_like_shapes(self):
        ds = imagenet_like(samples_per_class=8, num_classes=12, seed=2)
        assert ds.images.shape == (96, 3, 32, 32)
        assert ds.num_classes == 12

    def test_deterministic_given_seed(self):
        a = mnist_like(samples_per_class=10, seed=3)
        b = mnist_like(samples_per_class=10, seed=3)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = mnist_like(samples_per_class=10, seed=3)
        b = mnist_like(samples_per_class=10, seed=4)
        assert not np.array_equal(a.images, b.images)

    def test_classes_are_distinguishable(self):
        """Nearest-class-template classification must beat chance by a lot."""
        spec = SyntheticSpec(num_classes=5, samples_per_class=40, ambiguity=0.3, seed=5)
        ds = make_classification_images(spec)
        flat = ds.images.reshape(len(ds), -1)
        means = np.stack([flat[ds.labels == c].mean(axis=0) for c in range(5)])
        dists = ((flat[:, None, :] - means[None, :, :]) ** 2).sum(axis=2)
        acc = (dists.argmin(axis=1) == ds.labels).mean()
        assert acc > 0.8

    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            SyntheticSpec(num_classes=1)
        with pytest.raises(ValidationError):
            SyntheticSpec(support=0.0)
        with pytest.raises(ValidationError):
            SyntheticSpec(ambiguity=1.5)
        with pytest.raises(ValidationError):
            SyntheticSpec(noise_std=-0.1)
        with pytest.raises(ValidationError):
            SyntheticSpec(basis_size=1)

    def test_ambiguity_controls_difficulty(self):
        """Higher ambiguity must reduce nearest-template accuracy."""
        accs = []
        for ambiguity in (0.2, 0.9):
            spec = SyntheticSpec(
                num_classes=5, samples_per_class=60, ambiguity=ambiguity, noise_std=0.1, seed=6
            )
            ds = make_classification_images(spec)
            flat = ds.images.reshape(len(ds), -1)
            means = np.stack([flat[ds.labels == c].mean(axis=0) for c in range(5)])
            dists = ((flat[:, None, :] - means[None, :, :]) ** 2).sum(axis=2)
            accs.append((dists.argmin(axis=1) == ds.labels).mean())
        assert accs[1] < accs[0]
