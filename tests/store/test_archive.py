"""Tests for the random-access ``.dsz`` archive format (v2 + v1 compat)."""

import zlib

import numpy as np
import pytest

from repro.core.decoder import DeepSZDecoder
from repro.core.encoder import CompressedModel, DeepSZEncoder
from repro.pruning import encode_sparse, prune_weights
from repro.store import (
    ARCHIVE_MAGIC,
    ModelArchive,
    archive_bytes,
    is_archive,
    write_archive,
)
from repro.store.archive import FOOTER_SIZE
from repro.utils.errors import DecompressionError, ValidationError


@pytest.fixture(scope="module")
def blob(small_compressed_model):
    return archive_bytes(small_compressed_model)


class TestRoundTrip:
    def test_magic_and_sniffing(self, blob):
        assert is_archive(blob)
        assert blob.startswith(ARCHIVE_MAGIC)
        assert blob.endswith(ARCHIVE_MAGIC)
        assert not is_archive(b"definitely not an archive")

    def test_load_model_round_trips(self, small_compressed_model, blob):
        loaded = ModelArchive.from_bytes(blob).load_model()
        assert loaded.network == small_compressed_model.network
        assert set(loaded.layers) == set(small_compressed_model.layers)
        for name, layer in small_compressed_model.layers.items():
            got = loaded.layers[name]
            assert got.sz_payload == layer.sz_payload
            assert got.index_payload == layer.index_payload
            assert got.shape == layer.shape
            assert got.nnz == layer.nnz
            assert got.entry_count == layer.entry_count
            assert got.index_backend == layer.index_backend
            assert got.data_codec == layer.data_codec
            assert got.error_bound == layer.error_bound

    def test_decoded_weights_match_v1_path(self, small_compressed_model, blob):
        via_archive = DeepSZDecoder().decode(ModelArchive.from_bytes(blob))
        direct = DeepSZDecoder().decode(small_compressed_model)
        for name in small_compressed_model.layers:
            np.testing.assert_array_equal(
                via_archive.weights[name], direct.weights[name]
            )

    def test_file_round_trip_and_mmap_open(self, small_compressed_model, tmp_path):
        path = tmp_path / "model.dsz"
        written = write_archive(small_compressed_model, path)
        assert path.stat().st_size == written
        with ModelArchive.open(path) as archive:
            assert archive.version == 2
            layer = archive.read_layer("fc7")
            assert layer.sz_payload == small_compressed_model.layers["fc7"].sz_payload

    def test_open_without_mmap(self, small_compressed_model, tmp_path):
        path = tmp_path / "model.dsz"
        write_archive(small_compressed_model, path)
        with ModelArchive.open(path, use_mmap=False) as archive:
            model = archive.load_model()
            assert set(model.layers) == set(small_compressed_model.layers)

    def test_save_load_methods(self, small_compressed_model, tmp_path):
        path = tmp_path / "model.dsz"
        small_compressed_model.save(path)
        loaded = CompressedModel.load(path)
        assert loaded.layers["fc8"].sz_payload == (
            small_compressed_model.layers["fc8"].sz_payload
        )

    def test_empty_model(self):
        empty = CompressedModel(network="empty", layers={}, expected_accuracy_loss=0.0)
        archive = ModelArchive.from_bytes(archive_bytes(empty))
        assert archive.layer_names == []
        loaded = archive.load_model()
        assert loaded.network == "empty"
        assert loaded.layers == {}

    def test_single_layer_model(self, rng):
        pruned, _ = prune_weights(rng.normal(0, 0.05, (24, 40)).astype(np.float32), 0.2)
        model = DeepSZEncoder().encode(
            "one", {"fc": encode_sparse(pruned)}, {"fc": 1e-3}
        )
        archive = ModelArchive.from_bytes(archive_bytes(model))
        assert archive.layer_names == ["fc"]
        got = archive.read_layer("fc")
        assert got.sz_payload == model.layers["fc"].sz_payload


class TestRandomAccess:
    def test_layer_reads_survive_corrupting_every_other_segment(
        self, small_compressed_model, blob
    ):
        """The acceptance bar: any single layer decodes with every sibling
        segment destroyed — proof reads touch only the target's bytes."""
        manifest = ModelArchive.from_bytes(blob).manifest
        decoder = DeepSZDecoder()
        reference = decoder.decode(small_compressed_model)
        for target in manifest.layers:
            corrupted = bytearray(blob)
            for other, entry in manifest.layers.items():
                if other == target:
                    continue
                for seg in entry.segments.values():
                    corrupted[seg.offset : seg.end] = b"\xff" * seg.length
            archive = ModelArchive.from_bytes(bytes(corrupted))
            layer = archive.read_layer(target)  # CRC passes: bytes untouched
            single = CompressedModel(
                network="x", layers={target: layer}, expected_accuracy_loss=0.0
            )
            np.testing.assert_array_equal(
                decoder.decode(single).weights[target], reference.weights[target]
            )
            # ... while the siblings are detected as corrupt.
            for other in manifest.layers:
                if other != target:
                    with pytest.raises(DecompressionError, match="CRC32"):
                        archive.read_layer(other)

    def test_single_layer_read_touches_only_its_byte_ranges(self, blob):
        """Stronger than corruption: a byte source that *refuses* any read
        outside the target layer's segments still serves that layer."""
        archive = ModelArchive.from_bytes(blob)
        entry = archive.manifest.layers["fc7"]
        allowed = [(seg.offset, seg.end) for seg in entry.segments.values()]
        real = archive._source

        class GatedSource:
            @property
            def size(self):
                return real.size

            def read_at(self, offset, length):
                assert any(
                    offset >= lo and offset + length <= hi for lo, hi in allowed
                ), f"read [{offset}, {offset + length}) outside layer fc7"
                return real.read_at(offset, length)

        archive._source = GatedSource()
        layer = archive.read_layer("fc7")
        assert layer.entry_count == entry.entry_count

    def test_segment_crc_mismatch_names_layer_and_kind(self, blob):
        manifest = ModelArchive.from_bytes(blob).manifest
        seg = manifest.layers["fc7"].segments["sz"]
        corrupted = bytearray(blob)
        corrupted[seg.offset] ^= 0xFF
        archive = ModelArchive.from_bytes(bytes(corrupted))
        with pytest.raises(DecompressionError, match="'fc7' sz segment"):
            archive.read_layer("fc7")
        # verify=False skips the checksum (caller opts out explicitly)
        raw = archive.segment("fc7", "sz", verify=False)
        assert len(raw) == seg.length

    def test_unknown_layer_or_kind(self, blob):
        archive = ModelArchive.from_bytes(blob)
        with pytest.raises(ValidationError, match="no layer"):
            archive.read_layer("nope")
        with pytest.raises(ValidationError, match="segment kind"):
            archive.segment("fc6", "bogus")

    def test_verify_walks_every_segment(self, blob):
        assert ModelArchive.from_bytes(blob).verify() == []


class TestCorruptContainers:
    def test_truncated_footer(self, blob):
        for cut in (1, FOOTER_SIZE - 1, FOOTER_SIZE + 3):
            with pytest.raises(DecompressionError):
                ModelArchive.from_bytes(blob[:-cut]).load_model()

    def test_tiny_blob(self):
        with pytest.raises(DecompressionError):
            ModelArchive.from_bytes(b"DSZ")

    def test_manifest_crc_mismatch(self, blob):
        # Flip a byte inside the manifest JSON (between last segment and footer).
        manifest = ModelArchive.from_bytes(blob).manifest
        last_end = max(
            seg.end for e in manifest.layers.values() for seg in e.segments.values()
        )
        corrupted = bytearray(blob)
        corrupted[last_end + 2] ^= 0x01
        with pytest.raises(DecompressionError, match="manifest"):
            ModelArchive.from_bytes(bytes(corrupted))

    def test_manifest_overrunning_segment_rejected(self, small_compressed_model):
        # Hand-corrupt the footer to point the manifest past the file end.
        blob = bytearray(archive_bytes(small_compressed_model))
        import struct

        offset, length, _ = struct.unpack(
            "<QQI", bytes(blob[-FOOTER_SIZE : -FOOTER_SIZE + 20])
        )
        bad = struct.pack("<QQI", offset + 10_000_000, length, 0)
        blob[-FOOTER_SIZE : -FOOTER_SIZE + 20] = bad
        with pytest.raises(DecompressionError, match="overruns"):
            ModelArchive.from_bytes(bytes(blob))


class TestV1Compat:
    def test_v1_blob_opens_with_lazy_reads(self, small_compressed_model):
        v1 = small_compressed_model.to_bytes()
        archive = ModelArchive.from_bytes(v1)
        assert archive.version == 1
        assert set(archive.layer_names) == set(small_compressed_model.layers)
        layer = archive.read_layer("fc6")
        assert layer.sz_payload == small_compressed_model.layers["fc6"].sz_payload
        assert layer.index_payload == small_compressed_model.layers["fc6"].index_payload

    def test_v1_blob_checksums_are_consumed(self, small_compressed_model):
        v1 = small_compressed_model.to_bytes()
        archive = ModelArchive.from_bytes(v1)
        seg = archive.manifest.layers["fc6"].segments["sz"]
        assert seg.crc32 == zlib.crc32(small_compressed_model.layers["fc6"].sz_payload)
        corrupted = bytearray(v1)
        corrupted[seg.offset] ^= 0xFF
        with pytest.raises(DecompressionError, match="'fc6' sz segment"):
            ModelArchive.from_bytes(bytes(corrupted)).read_layer("fc6")

    def test_golden_v1_blob_loads_through_compat_reader(self):
        from pathlib import Path

        blob = (
            Path(__file__).resolve().parent.parent / "golden" / "golden_model_v1.bin"
        ).read_bytes()
        archive = ModelArchive.from_bytes(blob)
        assert archive.version == 1
        # Pre-PR2 blobs carry no checksums; the compat reader skips crc.
        assert archive.manifest.layers["fc1"].segments["sz"].crc32 is None
        assert sorted(archive.verify()) == ["fc1/index", "fc1/sz"]
        model = archive.load_model()
        expected = CompressedModel.from_bytes(blob)
        assert model.layers["fc1"].sz_payload == expected.layers["fc1"].sz_payload

    def test_garbage_is_neither_format(self):
        with pytest.raises(DecompressionError):
            ModelArchive.from_bytes(b"\x00" * 64)

    def test_corrupt_v1_headers_map_to_decompression_error(self):
        """Malformed-but-parseable v1 JSON headers (wrong types, bad section
        tuples, negative lengths) must fail with the decode error type, not
        leak AttributeError/ValueError."""
        import json
        import struct

        v1_meta = {"magic": "repro-deepsz-model-v1", "layers": {"x": {}}}
        headers = [
            [1, 2],  # header is not a dict
            {"meta": v1_meta, "sections": [["only-one-element"]]},
            {"meta": v1_meta, "sections": [["x/sz", -5]]},
            {"meta": {"magic": "repro-deepsz-model-v1", "layers": 7}, "sections": []},
        ]
        for header in headers:
            payload = json.dumps(header).encode()
            blob = struct.pack("<Q", len(payload)) + payload
            with pytest.raises(DecompressionError):
                ModelArchive.from_bytes(blob)
