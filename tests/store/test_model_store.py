"""Tests for the content-addressed :class:`ModelStore`."""

import hashlib

import pytest

from repro.store import ModelStore, archive_bytes
from repro.utils.errors import IntegrityError, ValidationError


@pytest.fixture()
def blob(small_compressed_model):
    return archive_bytes(small_compressed_model)


class TestPutGet:
    def test_round_trip(self, tmp_path, small_compressed_model, blob):
        store = ModelStore(tmp_path / "store")
        digest = store.put_model(small_compressed_model)
        assert digest == hashlib.sha256(blob).hexdigest()
        assert digest in store
        assert store.get_bytes(digest) == blob
        model = store.open(digest).load_model()
        assert set(model.layers) == set(small_compressed_model.layers)

    def test_put_file(self, tmp_path, small_compressed_model):
        path = tmp_path / "model.dsz"
        small_compressed_model.save(path)
        store = ModelStore(tmp_path / "store")
        digest = store.put_file(path)
        assert store.get_bytes(digest) == path.read_bytes()

    def test_dedup(self, tmp_path, small_compressed_model, blob):
        store = ModelStore(tmp_path / "store")
        first = store.put_bytes(blob)
        second = store.put_model(small_compressed_model)
        assert first == second
        assert store.stats.puts == 1
        assert store.stats.dedup_hits == 1
        assert store.stats.objects == 1
        assert store.stats.total_bytes == len(blob)

    def test_unknown_digest(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        with pytest.raises(ValidationError, match="no object"):
            store.get_bytes("0" * 64)
        with pytest.raises(ValidationError, match="sha256"):
            store.get_bytes("not-a-digest")

    def test_delete(self, tmp_path, blob):
        store = ModelStore(tmp_path / "store")
        digest = store.put_bytes(blob)
        assert store.delete(digest)
        assert digest not in store
        assert not store.delete(digest)
        assert store.stats.objects == 0

    def test_index_survives_reopen(self, tmp_path, blob):
        root = tmp_path / "store"
        digest = ModelStore(root).put_bytes(blob)
        reopened = ModelStore(root)
        assert digest in reopened
        assert reopened.get_bytes(digest) == blob


class TestResolve:
    def test_prefix_resolves_to_full_digest(self, tmp_path, blob):
        store = ModelStore(tmp_path / "store")
        digest = store.put_bytes(blob)
        assert store.resolve(digest) == digest
        assert store.resolve(digest[:8]) == digest
        assert store.resolve(f"sha256:{digest[:12]}") == digest
        assert store.resolve(digest[:8].upper()) == digest

    def test_unknown_and_invalid_prefixes(self, tmp_path, blob):
        store = ModelStore(tmp_path / "store")
        digest = store.put_bytes(blob)
        missing = ("0000" if not digest.startswith("0000") else "ffff")
        with pytest.raises(ValidationError, match="no object"):
            store.resolve(missing)
        with pytest.raises(ValidationError, match=">= 4 hex chars"):
            store.resolve(digest[:3])
        with pytest.raises(ValidationError, match=">= 4 hex chars"):
            store.resolve("not-hex!")

    def test_ambiguous_prefix(self, tmp_path, blob):
        store = ModelStore(tmp_path / "store")
        digest = store.put_bytes(blob)
        # A second object sharing the first 4 hex chars makes that prefix
        # ambiguous; fake the sibling through the index (contents are
        # irrelevant to prefix matching).
        sibling = digest[:4] + ("0" * 60 if digest[4] != "0" else "f" * 60)
        path = store._object_path(sibling)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"sibling")
        store._index[sibling] = store._index[digest]
        with pytest.raises(ValidationError, match="ambiguous"):
            store.resolve(digest[:4])
        # Longer prefixes that only one object matches still resolve.
        assert store.resolve(digest[:8]) == digest


class TestIntegrity:
    def test_corrupted_object_detected_on_read(self, tmp_path, blob):
        store = ModelStore(tmp_path / "store")
        digest = store.put_bytes(blob)
        path = store._object_path(digest)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(IntegrityError, match="integrity"):
            store.get_bytes(digest)
        assert store.stats.integrity_failures == 1
        # verify=False trusts the object and defers to segment CRCs.
        assert store.get_bytes(digest, verify=False) != blob

    def test_open_verifies_by_default(self, tmp_path, blob):
        store = ModelStore(tmp_path / "store")
        digest = store.put_bytes(blob)
        path = store._object_path(digest)
        path.write_bytes(b"garbage" * 10)
        with pytest.raises(IntegrityError):
            store.open(digest)


class TestEviction:
    def _blob(self, tag: bytes, size: int = 1000) -> bytes:
        return tag * (size // len(tag))

    def test_lru_eviction_under_budget(self, tmp_path):
        store = ModelStore(tmp_path / "store", max_bytes=2500)
        a = store.put_bytes(self._blob(b"aa"))
        b = store.put_bytes(self._blob(b"bb"))
        store.get_bytes(a, verify=False)  # touch a: b becomes LRU
        c = store.put_bytes(self._blob(b"cc"))  # would be 3000 bytes: evict b
        assert a in store and c in store
        assert b not in store
        assert store.stats.evictions == 1
        assert store.stats.total_bytes <= 2500

    def test_oversize_object_rejected(self, tmp_path):
        store = ModelStore(tmp_path / "store", max_bytes=100)
        with pytest.raises(ValidationError, match="budget"):
            store.put_bytes(b"x" * 101)

    def test_digests_ordered_by_recency(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        a = store.put_bytes(self._blob(b"aa"))
        b = store.put_bytes(self._blob(b"bb"))
        store.get_bytes(a, verify=False)
        assert store.digests() == [b, a]
