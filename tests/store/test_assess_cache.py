"""Tests for the persistent assessment-candidate cache."""

import json

import numpy as np
import pytest

from repro.store import AssessmentCache, sha256_array
from repro.store import test_set_digest as dataset_digest
from repro.utils.errors import ValidationError


@pytest.fixture()
def cache(tmp_path):
    return AssessmentCache(tmp_path / "cache")


KEY = {"data_sha": "ab", "error_bound": "1e-3", "codec": "sz"}


class TestRoundTrip:
    def test_put_get_exact(self, cache):
        # 0.1 + 0.2 is deliberately non-representable: JSON floats use
        # shortest-repr encoding, so the accuracy must round-trip bit-exactly.
        accuracy = 0.1 + 0.2
        cache.put(KEY, accuracy, 12345)
        assert cache.get(KEY) == (accuracy, 12345)

    def test_miss_returns_none(self, cache):
        assert cache.get(KEY) is None
        assert cache.stats.misses == 1

    def test_key_order_independent(self, cache):
        cache.put({"a": 1, "b": 2}, 0.5, 10)
        assert cache.get({"b": 2, "a": 1}) == (0.5, 10)

    def test_distinct_keys_distinct_records(self, cache):
        cache.put(dict(KEY, error_bound="1e-3"), 0.9, 1)
        cache.put(dict(KEY, error_bound="2e-3"), 0.8, 2)
        assert cache.get(dict(KEY, error_bound="1e-3")) == (0.9, 1)
        assert cache.get(dict(KEY, error_bound="2e-3")) == (0.8, 2)
        assert len(cache) == 2

    def test_stats(self, cache):
        cache.put(KEY, 0.9, 1)
        cache.get(KEY)
        cache.get({"other": True})
        assert cache.stats.puts == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_empty_key_rejected(self, cache):
        with pytest.raises(ValidationError):
            cache.get({})


class TestRobustness:
    def test_corrupt_record_is_a_miss(self, cache):
        cache.put(KEY, 0.9, 1)
        path = next((cache.root / "records").glob("*/*.json"))
        path.write_text("{not json")
        assert cache.get(KEY) is None

    def test_record_missing_field_is_a_miss(self, cache):
        cache.put(KEY, 0.9, 1)
        path = next((cache.root / "records").glob("*/*.json"))
        path.write_text(json.dumps({"accuracy": 0.9}))
        assert cache.get(KEY) is None

    def test_reopen_preserves_records(self, tmp_path):
        first = AssessmentCache(tmp_path / "cache")
        first.put(KEY, 0.75, 42)
        second = AssessmentCache(tmp_path / "cache")
        assert second.get(KEY) == (0.75, 42)


class TestContentDigests:
    def test_sha256_array_covers_dtype_and_shape(self):
        a = np.arange(6, dtype=np.float32)
        assert sha256_array(a) != sha256_array(a.astype(np.float64))
        assert sha256_array(a) != sha256_array(a.reshape(2, 3))
        assert sha256_array(a) == sha256_array(a.copy())

    def test_test_set_digest_sensitive_to_labels(self):
        images = np.zeros((4, 2), dtype=np.float32)
        labels = np.array([0, 1, 0, 1])
        assert dataset_digest(images, labels) != dataset_digest(
            images, np.array([1, 0, 1, 0])
        )
