"""Tests for the reusable task pool and worker-count resolution."""

import os

import pytest

from repro.parallel.pool import WORKERS_ENV, TaskPool, in_pool_worker, resolve_workers
from repro.utils.errors import ValidationError


def _square(x):
    return x * x


_INIT_STATE = {}


def _set_state(value):
    _INIT_STATE["value"] = value


def _read_state(_):
    return _INIT_STATE.get("value")


def _nested_map(x):
    # A task that opens its own pool: must degrade to the serial loop.
    inner = TaskPool(4).map(_square, [x, x + 1])
    return (in_pool_worker(), inner)


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "6")
        assert resolve_workers(None) == 6

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)

    def test_invalid_values(self, monkeypatch):
        with pytest.raises(ValidationError):
            resolve_workers(0)
        monkeypatch.setenv(WORKERS_ENV, "zero")
        with pytest.raises(ValidationError):
            resolve_workers(None)
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ValidationError):
            resolve_workers(None)


class TestTaskPool:
    def test_serial_map_preserves_order(self):
        assert TaskPool(1).map(_square, range(10)) == [x * x for x in range(10)]

    def test_process_map_matches_serial(self):
        items = list(range(8))
        assert TaskPool(2).map(_square, items) == TaskPool(1).map(_square, items)

    def test_thread_mode(self):
        assert TaskPool(2, mode="thread").map(_square, range(8)) == [
            x * x for x in range(8)
        ]

    def test_invalid_mode(self):
        with pytest.raises(ValidationError):
            TaskPool(1, mode="fiber")

    def test_single_task_runs_inline(self):
        assert TaskPool(4).map(_square, [3]) == [9]

    def test_initializer_serial(self):
        _INIT_STATE.clear()
        out = TaskPool(1).map(_read_state, [0], initializer=_set_state, initargs=(42,))
        assert out == [42]

    def test_initializer_process(self):
        out = TaskPool(2).map(
            _read_state, [0, 1], initializer=_set_state, initargs=(17,)
        )
        assert out == [17, 17]

    def test_nested_pool_degrades_to_serial(self):
        results = TaskPool(2).map(_nested_map, [1, 2, 3])
        # Outer pool used processes, so each task saw the worker marker and
        # ran its inner map serially — with correct results either way.
        assert [r[1] for r in results] == [[1, 4], [4, 9], [9, 16]]
        assert all(r[0] for r in results)

    def test_not_in_worker_in_main_process(self):
        assert not in_pool_worker()


def _nested_from_thread(x):
    inner = TaskPool(4).map(_square, [x])
    return (in_pool_worker(), inner[0])


class TestThreadModeNesting:
    def test_thread_workers_are_marked(self):
        results = TaskPool(2, mode="thread").map(_nested_from_thread, [2, 3, 4])
        assert [r[1] for r in results] == [4, 9, 16]
        assert all(r[0] for r in results)

    def test_main_thread_unmarked_after_thread_map(self):
        TaskPool(2, mode="thread").map(_square, range(4))
        assert not in_pool_worker()
