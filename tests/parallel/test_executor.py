"""Tests for the parallel assessment harness."""

import numpy as np
import pytest

from repro.core.assessment import AssessmentConfig
from repro.parallel import AssessmentTask, ParallelAssessment, run_tasks_serial
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def harness_inputs(pruned_lenet300, small_dataset):
    _, test = small_dataset
    # A small test subset keeps each task cheap.
    images, labels = test.images[:200], test.labels[:200]
    tasks = [
        AssessmentTask(layer="ip1", error_bound=1e-3),
        AssessmentTask(layer="ip1", error_bound=1e-2),
        AssessmentTask(layer="ip2", error_bound=1e-2),
        AssessmentTask(layer="ip3", error_bound=1e-2),
    ]
    return pruned_lenet300, images, labels, tasks


class TestSerialRunner:
    def test_results_in_task_order(self, harness_inputs):
        pruned, images, labels, tasks = harness_inputs
        results = run_tasks_serial(
            pruned.network, pruned.sparse_layers, images, labels, tasks
        )
        assert [(r[0], r[1]) for r in results] == [(t.layer, t.error_bound) for t in tasks]
        for _, _, accuracy, size in results:
            assert 0.0 <= accuracy <= 1.0
            assert size > 0


class TestParallelRunner:
    def test_worker_validation(self):
        with pytest.raises(ValidationError):
            ParallelAssessment(workers=0)

    def test_single_worker_equals_serial(self, harness_inputs):
        pruned, images, labels, tasks = harness_inputs
        serial = run_tasks_serial(pruned.network, pruned.sparse_layers, images, labels, tasks)
        single = ParallelAssessment(workers=1).run(
            pruned.network, pruned.sparse_layers, images, labels, tasks
        )
        assert serial == single

    def test_process_pool_matches_serial(self, harness_inputs):
        pruned, images, labels, tasks = harness_inputs
        serial = run_tasks_serial(pruned.network, pruned.sparse_layers, images, labels, tasks)
        parallel = ParallelAssessment(workers=2).run(
            pruned.network, pruned.sparse_layers, images, labels, tasks
        )
        assert len(parallel) == len(serial)
        for (l1, e1, a1, s1), (l2, e2, a2, s2) in zip(serial, parallel):
            assert (l1, e1) == (l2, e2)
            assert a1 == pytest.approx(a2)
            assert s1 == s2

    def test_assessment_points_grouping(self, harness_inputs):
        pruned, images, labels, tasks = harness_inputs
        runner = ParallelAssessment(workers=1)
        results = runner.run(pruned.network, pruned.sparse_layers, images, labels, tasks)
        baseline = pruned.network.accuracy(images, labels)
        grouped = runner.assessment_points(baseline, results)
        assert set(grouped) == {"ip1", "ip2", "ip3"}
        assert len(grouped["ip1"]) == 2
        assert grouped["ip1"][0].error_bound < grouped["ip1"][1].error_bound
        for points in grouped.values():
            for p in points:
                assert p.degradation == pytest.approx(baseline - p.accuracy)
