"""The matrix runner: config loading, cell schema, and gating metrics."""

from __future__ import annotations

import json
import sys

import pytest

from repro.sim.matrix import (
    ARTIFACT_SCHEMA_VERSION,
    MatrixConfig,
    cell_key,
    flatten_metrics,
    load_config,
    matrix_artifact,
    normalize_policy,
    run_matrix,
)
from repro.utils.errors import ValidationError

TINY_SPEC = "fc6=24x32:0.2,fc7=12x24:0.2"

_CELL_KEYS = {
    "scenario", "policy", "backend", "frontdoor", "replicas", "queue_depth",
    "trace_sha256", "cache_hit_rate", "mode", "offered", "completed",
    "rejected", "expired", "failures", "deadline_misses", "elapsed_s",
    "rps", "goodput_rps", "rejection_rate", "deadline_miss_rate",
    "latency_ms", "max_submit_lag_s",
}


def _tiny_config(**overrides):
    kwargs = dict(
        scenarios=("steady",),
        policies=("round-robin", "consistent-hash"),
        frontdoors=("sync",),
        models=2,
        tenants=4,
        duration_s=0.3,
        rate_rps=60.0,
        deadline_ms=200.0,
        seed=4,
        synthetic=TINY_SPEC,
        batch_size=4,
    )
    kwargs.update(overrides)
    return MatrixConfig(**kwargs)


class TestConfig:
    def test_validate_catches_bad_axes(self):
        for overrides, match in (
            (dict(scenarios=()), "scenario"),
            (dict(scenarios=("nope",)), "nope"),
            (dict(policies=()), "policy"),
            (dict(backends=("gpu",)), "gpu"),
            (dict(frontdoors=("grpc",)), "grpc"),
            (dict(replicas=(0,)), "replicas"),
            (dict(mode="laps"), "laps"),
            (dict(models=0), "model"),
            (dict(scenario_params={"nope": {}}), "nope"),
        ):
            with pytest.raises(ValidationError, match=match):
                _tiny_config(**overrides).validate()

    def test_cell_count(self):
        config = _tiny_config(scenarios=("steady", "burst"), replicas=(1, 2))
        assert config.cell_count() == 2 * 2 * 1 * 1 * 2 * 1

    def test_normalize_policy(self):
        assert normalize_policy("least_loaded") == "least-loaded"
        assert normalize_policy(" round-robin ") == "round-robin"

    def test_load_json_config(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "matrix": {"scenarios": ["burst"], "policies": ["least_loaded"],
                       "replicas": [2], "queue_depths": [8]},
            "workload": {"models": 2, "duration_s": 0.5, "rate_rps": 40,
                         "scenario_params": {"burst": {"burst_x": 2.0}}},
            "serving": {"synthetic": TINY_SPEC},
        }))
        config = load_config(str(path))
        assert config.scenarios == ("burst",)
        assert config.policies == ("least-loaded",)  # normalized
        assert config.replicas == (2,)
        assert config.scenario_params == {"burst": {"burst_x": 2.0}}
        assert config.synthetic == TINY_SPEC

    def test_load_config_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"matrix": {"scenarois": ["steady"]}}))
        with pytest.raises(ValidationError, match="scenarois"):
            load_config(str(path))
        path.write_text(json.dumps({"martix": {}}))
        with pytest.raises(ValidationError, match="martix"):
            load_config(str(path))

    @pytest.mark.skipif(sys.version_info < (3, 11), reason="stdlib tomllib")
    def test_load_toml_config(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            "[matrix]\n"
            'scenarios = ["steady"]\n'
            'policies = ["round_robin"]\n'
            "[workload]\n"
            "models = 2\n"
            "rate_rps = 25.0\n"
            f"[serving]\nsynthetic = \"{TINY_SPEC}\"\n"
        )
        config = load_config(str(path))
        assert config.policies == ("round-robin",)
        assert config.rate_rps == 25.0

    def test_toml_gated_when_tomllib_missing(self, tmp_path, monkeypatch):
        import builtins

        real_import = builtins.__import__

        def _no_tomllib(name, *args, **kwargs):
            if name == "tomllib":
                raise ModuleNotFoundError("No module named 'tomllib'")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", _no_tomllib)
        path = tmp_path / "grid.toml"
        path.write_text("[matrix]\n")
        with pytest.raises(ValidationError, match="3.11"):
            load_config(str(path))


class TestRunMatrix:
    @pytest.fixture(scope="class")
    def result(self):
        return run_matrix(_tiny_config())

    def test_cell_schema_is_stable(self, result):
        assert result["cells"], "no cells produced"
        for cell in result["cells"]:
            assert set(cell) == _CELL_KEYS
            assert cell["completed"] > 0
            assert cell["failures"] == 0
            for stat in ("p50", "p90", "p99", "mean", "max"):
                assert stat in cell["latency_ms"]

    def test_same_scenario_cells_replay_identical_trace(self, result):
        digests = {c["trace_sha256"] for c in result["cells"]}
        assert len(digests) == 1  # one scenario -> one trace, every policy
        assert result["traces"]["steady"]["sha256"] in digests

    def test_thread_backend_reports_cache_hits(self, result):
        for cell in result["cells"]:
            cache = cell["cache_hit_rate"]
            assert cache["overall"] is not None
            assert 0.0 <= cache["overall"] <= 1.0
            assert set(cache["per_model"]) == {"m0", "m1"}

    def test_flatten_metrics_and_gate(self, result):
        metrics, gate, directions = flatten_metrics(result)
        key = cell_key(result["cells"][0])
        assert key == "steady_round_robin_thread_sync_r1_q64"
        for stat in ("rps", "goodput_rps", "p99_ms", "rejection_rate",
                     "deadline_miss_rate"):
            assert f"{key}_{stat}" in metrics
        assert metrics["cells_completed"] == len(result["cells"])
        assert gate[0] == "cells_completed"
        assert f"{key}_rps" in gate  # steady throughput is gated
        assert all(directions[name] == "higher" for name in gate)

    def test_artifact_envelope(self, result):
        artifact = matrix_artifact(result, mode="smoke")
        assert artifact["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert artifact["suite"] == "scenarios"
        assert artifact["mode"] == "smoke"
        assert artifact["host_cores"] >= 1
        assert set(artifact["gate"]) <= set(artifact["metrics"])
        assert set(artifact["gate"]) == set(artifact["directions"])

    def test_async_cell_runs(self):
        config = _tiny_config(
            policies=("round-robin",), frontdoors=("async",), duration_s=0.25
        )
        result = run_matrix(config)
        (cell,) = result["cells"]
        assert cell["frontdoor"] == "async"
        assert cell["completed"] > 0
        assert cell["failures"] == 0

    def test_closed_loop_mode(self):
        config = _tiny_config(
            policies=("round-robin",), mode="closed", clients=2, duration_s=0.25
        )
        result = run_matrix(config)
        (cell,) = result["cells"]
        assert cell["mode"] == "closed"
        assert cell["completed"] > 0
