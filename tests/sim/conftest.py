"""Shared fixtures for the workload-simulation tests.

One tiny chained archive (session-scoped: encoding is the slow part) and
small helper factories keep each driver/matrix test in the tens of
milliseconds even though it boots a real gateway.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.bench import archive_input_dim

#: Chained MLP small enough that add_model + start is milliseconds.
TINY_SPEC = "fc6=24x32:0.2,fc7=12x24:0.2"


@pytest.fixture(scope="session")
def tiny_archive() -> bytes:
    from repro.cli import synthetic_sparse_layers
    from repro.core.encoder import DeepSZEncoder
    from repro.store import archive_bytes

    layers = synthetic_sparse_layers(TINY_SPEC, seed=11)
    model = DeepSZEncoder().encode("sim-tiny", layers, {n: 1e-3 for n in layers})
    return archive_bytes(model)


@pytest.fixture(scope="session")
def tiny_input(tiny_archive) -> np.ndarray:
    rng = np.random.default_rng(5)
    return rng.standard_normal(archive_input_dim(tiny_archive)).astype(np.float32)
