"""Properties of the trace generator: the determinism and distribution
claims the benchmark matrix rests on."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.workload import (
    SCENARIOS,
    WorkloadTrace,
    generate_trace,
    get_scenario,
    list_scenarios,
    zipf_weights,
)
from repro.utils.errors import ValidationError

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

MODELS = ["m0", "m1", "m2", "m3"]
TENANTS = ["t0", "t1", "t2"]


def _trace(scenario, *, seed=0, duration=4.0, rate=150.0, deadline=None, params=None):
    return generate_trace(
        scenario,
        models=MODELS,
        tenants=TENANTS,
        duration_s=duration,
        rate_rps=rate,
        seed=seed,
        deadline_s=deadline,
        params=params,
    )


scenario_names = st.sampled_from(sorted(SCENARIOS))
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestDeterminism:
    @SETTINGS
    @given(scenario=scenario_names, seed=seeds)
    def test_identical_seed_identical_trace(self, scenario, seed):
        a = _trace(scenario, seed=seed, duration=1.0)
        b = _trace(scenario, seed=seed, duration=1.0)
        assert a.requests == b.requests
        assert a.to_json() == b.to_json()
        assert a.digest() == b.digest()

    @SETTINGS
    @given(scenario=scenario_names, seed=seeds)
    def test_serialization_round_trips(self, scenario, seed):
        trace = _trace(scenario, seed=seed, duration=1.0, deadline=0.05)
        back = WorkloadTrace.from_json(trace.to_json())
        assert back == trace
        assert back.digest() == trace.digest()

    def test_different_seeds_differ(self):
        assert _trace("steady", seed=1).digest() != _trace("steady", seed=2).digest()

    def test_rejects_wrong_schema_version(self):
        import json

        payload = json.loads(_trace("steady").to_json())
        payload["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema_version"):
            WorkloadTrace.from_json(json.dumps(payload))


class TestArrivalProcesses:
    @SETTINGS
    @given(seed=seeds)
    def test_poisson_interarrival_mean_matches_rate(self, seed):
        # ~600 exponential gaps: the sample mean sits within 30% of 1/rate
        # with overwhelming margin (30% ≈ 7σ at this n).
        rate = 150.0
        trace = _trace("steady", seed=seed, duration=4.0, rate=rate)
        arrivals = np.array([r.arrival_s for r in trace.requests])
        gaps = np.diff(arrivals)
        assert gaps.size > 300
        assert (gaps >= 0).all()
        assert 1.0 / rate * 0.7 < gaps.mean() < 1.0 / rate * 1.3

    @SETTINGS
    @given(seed=seeds)
    def test_poisson_arrivals_are_uniform_in_time(self, seed):
        # KS-style bound: for a homogeneous process, arrival times are
        # i.i.d. uniform on [0, T); the empirical CDF stays close.
        trace = _trace("steady", seed=seed, duration=4.0, rate=150.0)
        arrivals = np.sort([r.arrival_s for r in trace.requests]) / 4.0
        n = arrivals.size
        ecdf = np.arange(1, n + 1) / n
        ks = np.abs(ecdf - arrivals).max()
        assert ks < 0.15  # ~7x the expected KS statistic at this n

    def test_burst_window_is_denser(self):
        trace = _trace("burst", seed=3, duration=10.0, rate=100.0)
        arrivals = np.array([r.arrival_s for r in trace.requests])
        # defaults: 6x rate on [0.4, 0.6) of the trace
        inside = ((arrivals >= 4.0) & (arrivals < 6.0)).sum() / 2.0
        outside = ((arrivals < 4.0) | (arrivals >= 6.0)).sum() / 8.0
        assert inside > 3.0 * outside

    def test_diurnal_peak_beats_trough(self):
        trace = _trace("diurnal", seed=3, duration=10.0, rate=100.0)
        arrivals = np.array([r.arrival_s for r in trace.requests])
        # defaults: trough at t=0/T, peak at T/2
        peak = ((arrivals >= 4.0) & (arrivals < 6.0)).sum()
        trough = (arrivals < 2.0).sum() + (arrivals >= 8.0).sum()
        assert peak > 2.0 * trough

    def test_coldstart_flood_targets_pushed_model(self):
        trace = _trace("coldstart", seed=3, duration=10.0, rate=120.0)
        pushed = MODELS[-1]
        before = [r for r in trace.requests if r.arrival_s < 3.0]
        after = [r for r in trace.requests if r.arrival_s >= 3.0]
        assert all(r.model != pushed for r in before)  # not yet pushed
        share = sum(1 for r in after if r.model == pushed) / max(len(after), 1)
        assert share > 0.2  # flood_share=0.7 decaying


class TestZipf:
    def test_weights_strictly_decreasing_and_normalized(self):
        w = zipf_weights(16, s=1.1)
        assert np.all(np.diff(w) < 0)
        assert w.sum() == pytest.approx(1.0)

    def test_s_zero_is_uniform(self):
        assert np.allclose(zipf_weights(8, s=0.0), 1.0 / 8)

    @SETTINGS
    @given(seed=seeds)
    def test_sampled_model_frequencies_monotone_in_rank(self, seed):
        # With ~1500 draws over 4 ranks at s=1.1, the head ranks keep
        # their order with >= 5 sigma of margin; adjacent tail ranks are
        # only ~3 sigma apart, so the tail is compared to rank 1 instead
        # (a gap the sampling noise cannot close).
        trace = _trace("steady", seed=seed, duration=10.0, rate=150.0)
        counts = [sum(1 for r in trace.requests if r.model == m) for m in MODELS]
        assert counts[0] > counts[1] > counts[2]
        assert counts[1] > counts[3]

    def test_validation(self):
        with pytest.raises(ValidationError):
            zipf_weights(0)
        with pytest.raises(ValidationError):
            zipf_weights(4, s=-1.0)


class TestRegistry:
    def test_catalog_contents(self):
        assert set(list_scenarios()) == {"steady", "diurnal", "burst", "coldstart"}
        for name in list_scenarios():
            scenario = get_scenario(name)
            assert scenario.summary and scenario.stresses

    def test_unknown_scenario_lists_available(self):
        with pytest.raises(ValidationError, match="steady"):
            get_scenario("nope")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValidationError, match="burst_x"):
            _trace("burst", params={"burts_x": 2.0})

    def test_param_override_applies(self):
        calm = _trace("burst", seed=5, duration=4.0, rate=100.0, params={"burst_x": 1.0})
        wild = _trace("burst", seed=5, duration=4.0, rate=100.0, params={"burst_x": 8.0})
        assert len(wild.requests) > len(calm.requests)

    def test_deadline_propagates(self):
        trace = _trace("steady", deadline=0.025)
        assert all(r.deadline_s == 0.025 for r in trace.requests)

    def test_coldstart_needs_two_models(self):
        with pytest.raises(ValidationError, match="2 models"):
            generate_trace(
                "coldstart",
                models=["only"],
                tenants=TENANTS,
                duration_s=1.0,
                rate_rps=50.0,
            )

    def test_input_validation(self):
        for kwargs in (
            dict(models=[], tenants=TENANTS),
            dict(models=MODELS, tenants=[]),
            dict(models=MODELS, tenants=TENANTS, duration_s=0.0),
            dict(models=MODELS, tenants=TENANTS, rate_rps=-1.0),
        ):
            merged = dict(duration_s=1.0, rate_rps=50.0)
            merged.update(kwargs)
            with pytest.raises(ValidationError):
                generate_trace("steady", **merged)

    def test_tenants_cover_population(self):
        trace = _trace("steady", seed=9, duration=6.0, rate=150.0)
        seen = {r.tenant for r in trace.requests}
        assert seen == set(TENANTS)  # heavy-hitter Zipf still reaches the tail
