"""Open/closed-loop drivers against real (tiny) gateways.

Traces here are sub-second and time-compressed; the assertions are about
accounting invariants (offered = completed + rejected + expired +
failures) and mechanism (rejections under a depth-1 queue, deadline
misses under an impossible budget), never about absolute speed.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.async_gateway import AsyncGateway
from repro.serve.gateway import Gateway
from repro.sim.driver import (
    drive_closed_loop,
    drive_closed_loop_async,
    drive_open_loop,
    drive_open_loop_async,
)
from repro.sim.workload import generate_trace
from repro.utils.errors import ValidationError


def _trace(*, deadline_s=None, rate=120.0, duration=0.4, seed=2):
    return generate_trace(
        "steady",
        models=["tiny"],
        tenants=["t0", "t1", "t2"],
        duration_s=duration,
        rate_rps=rate,
        seed=seed,
        deadline_s=deadline_s,
    )


@pytest.fixture
def gateway(tiny_archive):
    gw = Gateway()
    gw.add_model("tiny", tiny_archive, replicas=1, batch_size=4)
    gw.start()
    yield gw
    gw.close()


class TestSyncDrivers:
    def test_open_loop_accounting(self, gateway, tiny_input):
        trace = _trace()
        result = drive_open_loop(gateway, trace, {"tiny": tiny_input})
        assert result.offered == len(trace.requests) > 0
        assert result.completed + result.rejected + result.failures == result.offered
        assert result.expired == 0  # sync gateway never cancels in flight
        assert result.failures == 0
        assert len(result.latencies_s) == result.completed
        assert result.rps > 0
        stats = result.latency_ms()
        assert stats["p50"] <= stats["p99"] <= stats["max"]

    def test_open_loop_deadline_scoring(self, gateway, tiny_input):
        # A 1-microsecond budget: everything completes, everything is late.
        trace = _trace(deadline_s=1e-6)
        result = drive_open_loop(gateway, trace, {"tiny": tiny_input})
        assert result.completed > 0
        assert result.deadline_misses == result.completed
        assert result.goodput_rps == 0.0
        assert result.deadline_miss_rate > 0.0

    def test_open_loop_time_scale_compresses(self, gateway, tiny_input):
        trace = _trace(duration=1.0, rate=60.0)
        result = drive_open_loop(gateway, trace, {"tiny": tiny_input}, time_scale=0.2)
        assert result.elapsed_s < 0.8  # 1s trace replayed in ~0.2s + drain

    def test_closed_loop_accounting(self, gateway, tiny_input):
        trace = _trace()
        result = drive_closed_loop(gateway, trace, {"tiny": tiny_input}, clients=3)
        assert result.mode == "closed"
        assert result.completed + result.rejected + result.failures == result.offered
        assert result.failures == 0
        assert result.completed > 0

    def test_closed_loop_rejects_bad_clients(self, gateway, tiny_input):
        with pytest.raises(ValidationError):
            drive_closed_loop(gateway, _trace(), {"tiny": tiny_input}, clients=0)

    def test_missing_input_rejected(self, gateway):
        with pytest.raises(ValidationError, match="tiny"):
            drive_open_loop(gateway, _trace(), {})

    def test_overload_counts_rejections(self, tiny_archive, tiny_input):
        gw = Gateway()
        gw.add_model(
            "tiny", tiny_archive, replicas=1, max_queue_depth=1,
            max_concurrency=1, batch_size=1,
        )
        gw.start()
        try:
            # 50 requests in ~50ms against a depth-1 queue: some must be
            # fast-failed by admission control.
            trace = _trace(rate=1000.0, duration=0.05, seed=7)
            result = drive_open_loop(gw, trace, {"tiny": tiny_input})
        finally:
            gw.close()
        assert result.rejected > 0
        assert result.rejection_rate == result.rejected / result.offered
        assert result.completed + result.rejected + result.failures == result.offered


class TestAsyncDrivers:
    def _run(self, tiny_archive, coro_factory):
        async def _main():
            gw = AsyncGateway()
            gw.add_model("tiny", tiny_archive, replicas=1, batch_size=4)
            await gw.start()
            try:
                return await coro_factory(gw)
            finally:
                await gw.close()

        return asyncio.run(_main())

    def test_open_loop_accounting(self, tiny_archive, tiny_input):
        trace = _trace(deadline_s=5.0)

        result = self._run(
            tiny_archive,
            lambda gw: drive_open_loop_async(gw, trace, {"tiny": tiny_input}),
        )
        assert result.offered == len(trace.requests)
        settled = result.completed + result.rejected + result.expired + result.failures
        assert settled == result.offered
        assert result.failures == 0
        assert result.expired == 0  # 5s budget is bottomless here
        assert result.completed > 0

    def test_open_loop_enforced_deadline_expires(self, tiny_archive, tiny_input):
        # A 2ms budget at high rate against batch_size=4: the queue wait
        # alone blows the budget for a measurable share of requests.
        trace = _trace(deadline_s=0.002, rate=400.0, duration=0.25, seed=9)

        result = self._run(
            tiny_archive,
            lambda gw: drive_open_loop_async(gw, trace, {"tiny": tiny_input}),
        )
        assert result.expired > 0
        assert result.deadline_misses >= result.expired
        settled = result.completed + result.rejected + result.expired + result.failures
        assert settled == result.offered
        assert result.goodput_rps <= result.rps

    def test_closed_loop_accounting(self, tiny_archive, tiny_input):
        trace = _trace(deadline_s=5.0)

        result = self._run(
            tiny_archive,
            lambda gw: drive_closed_loop_async(
                gw, trace, {"tiny": tiny_input}, clients=3
            ),
        )
        assert result.mode == "closed"
        settled = result.completed + result.rejected + result.expired + result.failures
        assert settled == result.offered
        assert result.completed > 0
