"""Runtime lock-order detector tests: cycles, self-deadlock, factory gating."""

from __future__ import annotations

import threading

import pytest

from repro.lint.lockcheck import (
    InstrumentedLock,
    InstrumentedRLock,
    LockOrderGraph,
    LockOrderViolation,
    enabled,
    global_graph,
    make_lock,
    make_rlock,
    reset,
)


def run_in_thread(fn):
    """Run ``fn`` on a fresh thread; return the exception it raised (or None)."""
    box = {}

    def target():
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to the test
            box["exc"] = exc

    thread = threading.Thread(target=target)
    thread.start()
    thread.join(timeout=10)
    assert not thread.is_alive(), "helper thread wedged"
    return box.get("exc")


@pytest.fixture
def graph():
    return LockOrderGraph()


class TestLockOrderGraph:
    def test_ab_ba_two_thread_cycle_detected(self, graph):
        a = InstrumentedLock("A", graph)
        b = InstrumentedLock("B", graph)

        def first_order():
            with a:
                with b:
                    pass

        def second_order():
            with b:
                with a:
                    pass

        assert run_in_thread(first_order) is None
        exc = run_in_thread(second_order)
        assert isinstance(exc, LockOrderViolation)
        # Both call paths ship in the report so CI shows what to reorder.
        assert exc.first_stack and exc.second_stack
        assert "first_order" in exc.first_stack
        assert "second_order" in exc.second_stack
        assert "'A'" in str(exc) and "'B'" in str(exc)

    def test_transitive_cycle_detected(self, graph):
        a = InstrumentedLock("A", graph)
        b = InstrumentedLock("B", graph)
        c = InstrumentedLock("C", graph)

        def a_then_b():
            with a, b:
                pass

        def b_then_c():
            with b, c:
                pass

        def c_then_a():
            with c, a:
                pass

        assert run_in_thread(a_then_b) is None
        assert run_in_thread(b_then_c) is None
        assert isinstance(run_in_thread(c_then_a), LockOrderViolation)

    def test_consistent_order_never_raises(self, graph):
        a = InstrumentedLock("A", graph)
        b = InstrumentedLock("B", graph)

        def ordered():
            with a, b:
                pass

        for _ in range(3):
            assert run_in_thread(ordered) is None

    def test_same_name_siblings_form_no_self_edge(self, graph):
        # One lock per model entry shares a class name; iterating entries
        # takes them in arbitrary sequence, which must stay legal.
        first = InstrumentedLock("serve.model", graph)
        second = InstrumentedLock("serve.model", graph)
        with first:
            with second:
                pass
        with second:
            with first:
                pass
        assert "serve.model" not in graph.edges().get("serve.model", {})

    def test_self_deadlock_on_nonreentrant_reacquire(self, graph):
        lock = InstrumentedLock("A", graph)
        with lock:
            with pytest.raises(LockOrderViolation, match="self-deadlock"):
                lock.acquire()

    def test_rlock_reentry_allowed(self, graph):
        lock = InstrumentedRLock("A", graph)
        with lock:
            with lock:
                pass
        assert graph.edges() == {}

    def test_clear_forgets_orderings(self, graph):
        a = InstrumentedLock("A", graph)
        b = InstrumentedLock("B", graph)
        with a, b:
            pass
        graph.clear()
        with b, a:
            pass  # no cycle: the A->B edge was forgotten


class TestInstrumentedLockApi:
    def test_nonblocking_and_timeout_acquire(self, graph):
        lock = InstrumentedLock("A", graph)
        assert lock.acquire(0) is True  # positional, Condition-style
        assert run_in_thread(lambda: lock.acquire(False) and None) is None
        lock.release()
        assert lock.acquire(True, 0.5) is True
        lock.release()
        assert not lock.locked()

    def test_condition_compatible(self, graph):
        lock = InstrumentedLock("serve.cond", graph)
        cond = threading.Condition(lock)
        ready = []

        def waiter():
            with cond:
                while not ready:
                    cond.wait(timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        with cond:
            ready.append(True)
            cond.notify_all()
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestFactory:
    def test_disabled_by_default_returns_plain_primitives(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKCHECK", raising=False)
        assert not enabled()
        assert not isinstance(make_lock("x"), InstrumentedLock)
        assert not isinstance(make_rlock("x"), InstrumentedRLock)

    def test_env_flag_enables_instrumentation(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKCHECK", "1")
        assert enabled()
        assert isinstance(make_lock("x"), InstrumentedLock)
        assert isinstance(make_rlock("x"), InstrumentedRLock)

    def test_reset_clears_global_graph(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKCHECK", "1")
        reset()
        a = make_lock("reset.A")
        b = make_lock("reset.B")
        with a, b:
            pass
        assert "reset.A" in global_graph().edges()
        reset()
        assert "reset.A" not in global_graph().edges()
