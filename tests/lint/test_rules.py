"""Per-rule fixture tests: positive, negative, suppression, baseline."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import Baseline, lint_paths
from repro.lint.findings import Finding, apply_baseline, suppressed_rules


def run_lint(tmp_path: Path, rel: str, source: str, baseline=None):
    """Write ``source`` at ``tmp_path/rel`` and lint it with every rule."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([target], root=tmp_path, baseline=baseline)


def rule_ids(result):
    return [f.rule for f in result.findings]


# ---------------------------------------------------------------------------
# LOCK-HELD-BLOCKING
# ---------------------------------------------------------------------------


class TestLockHeldBlocking:
    def test_pipe_send_under_lock_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            class S:
                def push(self, item):
                    with self._lock:
                        self.conn.send(item)
            """,
        )
        assert rule_ids(result) == ["LOCK-HELD-BLOCKING"]
        assert "send" in result.findings[0].message

    def test_flows_one_level_through_helper(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            class S:
                def push(self, item):
                    with self._lock:
                        self._deliver(item)

                def _deliver(self, item):
                    self.conn.send(item)
            """,
        )
        assert rule_ids(result) == ["LOCK-HELD-BLOCKING"]
        assert "via helper _deliver()" in result.findings[0].message

    def test_shm_create_and_decode_and_pool_submit_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            from multiprocessing.shared_memory import SharedMemory

            class S:
                def build(self):
                    with self._lock:
                        seg = SharedMemory(create=True, size=64)
                        data = decode_layer(seg)
                        self._pool.submit(work, data)
            """,
        )
        # SHM-UNLINK-PAIRING also fires on this fixture (create, no release);
        # this test only pins the three blocking calls.
        assert rule_ids(result).count("LOCK-HELD-BLOCKING") == 3

    def test_send_outside_lock_ok(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            class S:
                def push(self, item):
                    with self._lock:
                        queued = self._queue.popleft()
                    self.conn.send(queued)
            """,
        )
        assert result.clean

    def test_dedicated_io_lock_exempt(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            class S:
                def push(self, item):
                    with self._send_lock:
                        self.conn.send(item)
            """,
        )
        assert result.clean

    def test_closure_under_lock_not_charged(self, tmp_path):
        # A function *defined* under the lock does not run under it.
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            class S:
                def push(self, item):
                    with self._lock:
                        def later():
                            self.conn.send(item)
                        self._callbacks.append(later)
            """,
        )
        assert result.clean

    def test_not_applied_outside_repro_sources(self, tmp_path):
        result = run_lint(
            tmp_path,
            "tests/serve/helper_mod.py",
            """
            def push(conn, lock, item):
                with lock:
                    conn.send(item)
            """,
        )
        assert "LOCK-HELD-BLOCKING" not in rule_ids(result)

    def test_inline_suppression(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            class S:
                def push(self, item):
                    with self._lock:
                        self.conn.send(item)  # repro-lint: disable=LOCK-HELD-BLOCKING -- bounded pipe
            """,
        )
        assert result.clean
        assert result.suppressed == 1


# ---------------------------------------------------------------------------
# SHM-UNLINK-PAIRING
# ---------------------------------------------------------------------------


class TestShmUnlinkPairing:
    def test_create_without_release_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/seg.py",
            """
            from multiprocessing.shared_memory import SharedMemory

            def make():
                return SharedMemory(create=True, size=128)
            """,
        )
        assert rule_ids(result) == ["SHM-UNLINK-PAIRING"]
        assert "unlink" in result.findings[0].message

    def test_create_with_unlink_and_backstop_ok(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/seg.py",
            """
            import atexit
            from multiprocessing.shared_memory import SharedMemory

            _SEGMENTS = []

            def _cleanup():
                for seg in _SEGMENTS:
                    seg.unlink()

            atexit.register(_cleanup)

            def make():
                seg = SharedMemory(create=True, size=128)
                _SEGMENTS.append(seg)
                return seg
            """,
        )
        assert result.clean

    def test_attach_only_ok(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/seg.py",
            """
            from multiprocessing.shared_memory import SharedMemory

            def attach(name):
                return SharedMemory(name=name)
            """,
        )
        assert result.clean


# ---------------------------------------------------------------------------
# BARE-EXCEPT-SWALLOW
# ---------------------------------------------------------------------------


class TestBareExceptSwallow:
    def test_bare_except_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/obs/mod.py",
            """
            def f():
                try:
                    work()
                except:
                    pass
            """,
        )
        assert rule_ids(result) == ["BARE-EXCEPT-SWALLOW"]
        assert "bare `except:`" in result.findings[0].message

    def test_broad_swallow_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/obs/mod.py",
            """
            def f():
                try:
                    work()
                except Exception:
                    pass
            """,
        )
        assert rule_ids(result) == ["BARE-EXCEPT-SWALLOW"]

    def test_logged_handler_ok(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/obs/mod.py",
            """
            from repro.obs.log import get_logger

            _log = get_logger("mod")

            def f():
                try:
                    work()
                except Exception:
                    _log.warning("work failed", exc_info=True)
            """,
        )
        assert result.clean

    def test_reraise_and_bound_name_ok(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/obs/mod.py",
            """
            def f():
                try:
                    work()
                except Exception:
                    raise

            def g(out):
                try:
                    work()
                except Exception as exc:
                    out.append(exc)
            """,
        )
        assert result.clean

    def test_narrow_handler_ok(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/obs/mod.py",
            """
            def f():
                try:
                    work()
                except FileNotFoundError:
                    pass
            """,
        )
        assert result.clean


# ---------------------------------------------------------------------------
# METRIC-NAME
# ---------------------------------------------------------------------------


class TestMetricName:
    def test_bad_counter_literal_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            def f(registry):
                registry.counter("requests")
            """,
        )
        assert rule_ids(result) == ["METRIC-NAME"]

    def test_counter_missing_total_suffix_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            def f(registry):
                registry.counter("repro_gateway_requests")
            """,
        )
        assert rule_ids(result) == ["METRIC-NAME"]

    def test_good_names_ok(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            def f(registry):
                registry.counter("repro_gateway_requests_total")
                registry.gauge("repro_replica_inflight")
                registry.histogram("repro_decode_latency_seconds")
            """,
        )
        assert result.clean

    def test_unknown_span_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            def f(tracer):
                with tracer.start_span("gateway.bogus"):
                    pass
            """,
        )
        assert rule_ids(result) == ["METRIC-NAME"]

    def test_catalog_span_ok(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/mod.py",
            """
            def f(tracer):
                with tracer.start_span("gateway.request"):
                    pass
            """,
        )
        assert result.clean


# ---------------------------------------------------------------------------
# SLEEP-IN-TESTS
# ---------------------------------------------------------------------------


class TestSleepInTests:
    def test_sleep_in_serve_test_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "tests/serve/test_thing.py",
            """
            import time

            def test_thing():
                time.sleep(0.2)
            """,
        )
        assert rule_ids(result) == ["SLEEP-IN-TESTS"]

    def test_sleep_in_obs_test_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "tests/obs/test_thing.py",
            """
            from time import sleep

            def test_thing():
                sleep(0.2)
            """,
        )
        assert rule_ids(result) == ["SLEEP-IN-TESTS"]

    def test_conftest_exempt(self, tmp_path):
        result = run_lint(
            tmp_path,
            "tests/serve/conftest.py",
            """
            import time

            def poll_until(fn, deadline=5.0):
                while not fn():
                    time.sleep(0.01)
            """,
        )
        assert result.clean

    def test_other_suites_exempt(self, tmp_path):
        result = run_lint(
            tmp_path,
            "tests/core/test_thing.py",
            """
            import time

            def test_thing():
                time.sleep(0.01)
            """,
        )
        assert result.clean


# ---------------------------------------------------------------------------
# PIPE-PROTOCOL
# ---------------------------------------------------------------------------

_SCHEMA_PREAMBLE = """
REQUEST_FIELDS = ("req_id", "sample", "ctx")
RESPONSE_KINDS = {"ready": 2, "ok": 4, "err": 4, "bye": 1}
"""


def schema_src(body: str) -> str:
    """A fixture module: the schema constants plus a dedented ``body``."""
    return _SCHEMA_PREAMBLE + textwrap.dedent(body)


class TestPipeProtocol:
    def test_response_arity_mismatch_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/wire.py",
            schema_src(
                """
                def reply(conn, req_id, out):
                    conn.send(("ok", req_id, out))
                """
            ),
        )
        assert rule_ids(result) == ["PIPE-PROTOCOL"]
        assert "RESPONSE_KINDS says 4" in result.findings[0].message

    def test_unknown_kind_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/wire.py",
            schema_src(
                """
                def reply(conn, req_id):
                    conn.send(("done", req_id))
                """
            ),
        )
        assert rule_ids(result) == ["PIPE-PROTOCOL"]
        assert "'done'" in result.findings[0].message

    def test_request_arity_mismatch_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/wire.py",
            schema_src(
                """
                def submit(conn, req_id, sample):
                    conn.send((req_id, sample))
                """
            ),
        )
        assert rule_ids(result) == ["PIPE-PROTOCOL"]

    def test_recv_unpack_mismatch_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/wire.py",
            schema_src(
                """
                def loop(conn):
                    req_id, sample = conn.recv()
                """
            ),
        )
        assert rule_ids(result) == ["PIPE-PROTOCOL"]

    def test_matching_shapes_and_sentinel_ok(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/wire.py",
            schema_src(
                """
                def roundtrip(conn, req_id, sample, ctx, out, meta):
                    conn.send((req_id, sample, ctx))
                    conn.send(("ok", req_id, out, meta))
                    conn.send(("bye",))
                    conn.send(None)
                    got_id, got_sample, got_ctx = conn.recv()
                """
            ),
        )
        assert result.clean

    def test_no_schema_module_exempt(self, tmp_path):
        result = run_lint(
            tmp_path,
            "src/repro/serve/other.py",
            """
            def reply(conn, anything):
                conn.send(("whatever", anything))
            """,
        )
        assert "PIPE-PROTOCOL" not in rule_ids(result)


# ---------------------------------------------------------------------------
# Engine behaviour: parse errors, pragmas, baseline round-trip
# ---------------------------------------------------------------------------


class TestEngine:
    def test_parse_error_reported_not_raised(self, tmp_path):
        result = run_lint(tmp_path, "src/repro/broken.py", "def f(:\n")
        assert not result.clean
        assert result.parse_errors[0].rule == "PARSE-ERROR"

    def test_suppressed_rules_parsing(self):
        line = "x()  # repro-lint: disable=RULE-A,RULE-B -- justified"
        assert suppressed_rules(line) == frozenset({"RULE-A", "RULE-B"})
        assert suppressed_rules("x()  # a normal comment") == frozenset()

    def test_baseline_round_trip(self, tmp_path):
        findings = [
            Finding(rule="R1", path="src/a.py", line=3, message="m"),
            Finding(rule="R1", path="src/a.py", line=9, message="m"),
            Finding(rule="R2", path="src/b.py", line=1, message="m"),
        ]
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.dump(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        assert apply_baseline(findings, loaded) == []

    def test_baseline_growth_surfaces_whole_group(self, tmp_path):
        old = [Finding(rule="R1", path="src/a.py", line=3, message="m")]
        baseline = Baseline.from_findings(old)
        grown = old + [Finding(rule="R1", path="src/a.py", line=9, message="m")]
        surfaced = apply_baseline(grown, baseline)
        assert len(surfaced) == 2  # the whole group, not just the new one

    def test_baseline_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}', encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_baseline_silences_findings_through_lint_paths(self, tmp_path):
        source = """
        class S:
            def push(self, item):
                with self._lock:
                    self.conn.send(item)
        """
        dirty = run_lint(tmp_path, "src/repro/serve/mod.py", source)
        assert not dirty.clean
        baseline = Baseline.from_findings(dirty.findings)
        clean = run_lint(tmp_path, "src/repro/serve/mod.py", source, baseline=baseline)
        assert clean.clean
