"""Regression pin: the shipped tree stays clean against the committed baseline.

This is the test that makes every concurrency fix in this PR load-bearing:
revert any one of them (a pipe send moved back under a state lock, a
swallowed broad except, a drifted metric literal) and ``repro lint`` exits
non-zero, which fails here and in the CI ``lint`` job.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import Baseline, lint_paths, run_cli

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "lint-baseline.json"

#: The PR-wide budget for inline ``# repro-lint: disable=`` pragmas.
MAX_INLINE_SUPPRESSIONS = 5


def test_src_and_tests_clean_against_committed_baseline():
    baseline = Baseline.load(BASELINE)
    result = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"],
        root=REPO_ROOT,
        baseline=baseline,
    )
    assert result.clean, "\n".join(f.format_text() for f in result.findings)
    assert result.files_checked > 100  # the walk actually covered the tree


def test_committed_baseline_is_empty():
    # All pre-existing findings were fixed in this PR rather than baselined;
    # if debt ever gets added here, this pin forces the diff to say so.
    data = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert data == {"version": 1, "entries": []}


def test_inline_suppression_budget():
    result = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"], root=REPO_ROOT)
    assert result.suppressed <= MAX_INLINE_SUPPRESSIONS


def test_cli_json_report(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    code = run_cli(["src"], fmt="json")
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["clean"] is True
    assert payload["findings"] == []


def test_cli_detects_injected_violation(tmp_path, capsys, monkeypatch):
    bad = tmp_path / "src" / "repro" / "serve" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "class S:\n"
        "    def push(self, item):\n"
        "        with self._lock:\n"
        "            self.conn.send(item)\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    code = run_cli(["src"], fmt="text")
    out = capsys.readouterr().out
    assert code == 1
    assert "LOCK-HELD-BLOCKING" in out
