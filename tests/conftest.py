"""Shared fixtures for the test suite.

Expensive artifacts (synthetic datasets, trained networks, pruned networks)
are built once per session and shared; tests that mutate a network must use
``.clone()`` or the function-scoped copies provided here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoder import DeepSZEncoder
from repro.data import mnist_like, train_test_split
from repro.nn import SGDConfig, SGDTrainer, models
from repro.nn.specs import PAPER_PRUNING_RATIOS
from repro.pruning import PruningConfig, encode_sparse, prune_network, prune_weights


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def fresh_rng() -> np.random.Generator:
    return np.random.default_rng(999)


@pytest.fixture(scope="session")
def small_compressed_model():
    """A three-layer encoded model shared by the store / serve / CLI tests
    (session cached; treat as immutable)."""
    rng = np.random.default_rng(777)
    layers = {}
    for name, shape, density in [
        ("fc6", (96, 160), 0.10),
        ("fc7", (64, 96), 0.12),
        ("fc8", (32, 64), 0.25),
    ]:
        weights = (rng.standard_normal(shape) * 0.05).astype(np.float32)
        pruned, _ = prune_weights(weights, density)
        layers[name] = encode_sparse(pruned)
    return DeepSZEncoder().encode(
        "store-net", layers, {name: 1e-3 for name in layers}
    )


@pytest.fixture(scope="session")
def small_dataset():
    """A small MNIST-like dataset split into train/test (session cached)."""
    ds = mnist_like(samples_per_class=120, seed=7)
    return train_test_split(ds, test_fraction=0.3, seed=8)


@pytest.fixture(scope="session")
def trained_lenet300(small_dataset):
    """A LeNet-300-100 trained on the small dataset (session cached)."""
    train, _ = small_dataset
    net = models.lenet_300_100(seed=21)
    trainer = SGDTrainer(SGDConfig(epochs=6, learning_rate=0.03, weight_decay=1e-3, seed=22))
    trainer.train(net, train.images, train.labels)
    return net


@pytest.fixture(scope="session")
def pruned_lenet300(trained_lenet300, small_dataset):
    """The trained LeNet-300-100 pruned at the paper's ratios (session cached)."""
    train, _ = small_dataset
    net = trained_lenet300.clone()
    config = PruningConfig(
        ratios=PAPER_PRUNING_RATIOS["LeNet-300-100"],
        retrain=True,
        retrain_config=SGDConfig(epochs=3, learning_rate=0.02, weight_decay=1e-4, seed=23),
    )
    return prune_network(net, config, train_images=train.images, train_labels=train.labels)


@pytest.fixture()
def lenet300_copy(trained_lenet300):
    """A mutable copy of the trained network for tests that modify weights."""
    return trained_lenet300.clone()


@pytest.fixture(scope="session")
def weight_array(rng) -> np.ndarray:
    """A trained-looking 1-D float32 weight array for codec tests."""
    core = rng.normal(0.0, 0.012, 50_000)
    shoulder = rng.normal(0.0, 0.045, 50_000)
    mix = rng.random(50_000) < 0.2
    return np.where(mix, shoulder, core).astype(np.float32)
