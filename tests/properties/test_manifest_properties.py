"""Hypothesis round-trip properties for the archive manifest codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.archive import (
    ArchiveManifest,
    LayerEntry,
    SegmentEntry,
    manifest_from_dict,
    manifest_to_dict,
)

_settings = settings(max_examples=60, deadline=None)

_names = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"), whitelist_characters="_-./"),
    min_size=1,
    max_size=24,
)


@st.composite
def segment_entries(draw):
    return SegmentEntry(
        offset=draw(st.integers(min_value=0, max_value=2**48)),
        length=draw(st.integers(min_value=0, max_value=2**32)),
        crc32=draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1))
        ),
    )


@st.composite
def layer_entries(draw, name):
    return LayerEntry(
        name=name,
        error_bound=draw(
            st.floats(
                min_value=1e-12, max_value=1.0, allow_nan=False, allow_infinity=False
            )
        ),
        shape=(
            draw(st.integers(min_value=1, max_value=1 << 20)),
            draw(st.integers(min_value=1, max_value=1 << 20)),
        ),
        nnz=draw(st.integers(min_value=0, max_value=1 << 30)),
        entry_count=draw(st.integers(min_value=0, max_value=1 << 30)),
        index_backend=draw(st.sampled_from(["zlib", "lzma", "bz2", "store"])),
        data_codec=draw(st.sampled_from(["sz", "zfp", "custom-codec"])),
        segments={
            "sz": draw(segment_entries()),
            "index": draw(segment_entries()),
        },
    )


@st.composite
def manifests(draw):
    names = draw(st.lists(_names, min_size=0, max_size=6, unique=True))
    layers = {name: draw(layer_entries(name)) for name in names}
    return ArchiveManifest(
        network=draw(st.text(max_size=32)),
        expected_accuracy_loss=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        layers=layers,
    )


@_settings
@given(manifest=manifests())
def test_manifest_round_trips_through_dict(manifest):
    restored = manifest_from_dict(manifest_to_dict(manifest))
    assert restored.network == manifest.network
    assert restored.expected_accuracy_loss == manifest.expected_accuracy_loss
    assert list(restored.layers) == list(manifest.layers)
    for name, entry in manifest.layers.items():
        got = restored.layers[name]
        assert got == entry


@_settings
@given(manifest=manifests())
def test_manifest_dict_is_json_stable(manifest):
    """Encoding is pure JSON data and a second encode round is identical."""
    import json

    payload = manifest_to_dict(manifest)
    via_json = json.loads(json.dumps(payload))
    assert manifest_from_dict(via_json) == manifest_from_dict(payload)
    assert manifest_to_dict(manifest_from_dict(payload)) == payload
