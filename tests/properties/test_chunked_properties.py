"""Property-based round-trip tests for the chunked SZ v2 container."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz.compressor import SZCompressor
from repro.sz.config import SZConfig

_settings = settings(max_examples=40, deadline=None)


def _bound_tolerance(data, eb):
    """Bound + half-ULP slack: the codecs guarantee the bound in double
    precision; the float32 cast of the output can add half a ULP of the
    value itself (same convention as tests/properties/test_codec_properties)."""
    import numpy as _np

    scale = float(_np.max(_np.abs(data))) if data.size else 0.0
    return eb * (1 + 1e-5) + _np.finfo(_np.float32).eps * scale


@st.composite
def float_arrays(draw):
    size = draw(st.integers(min_value=0, max_value=700))
    scale = draw(st.sampled_from([1e-3, 0.1, 10.0]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(size) * scale).astype(np.float32)


@_settings
@given(
    data=float_arrays(),
    chunk_size=st.integers(min_value=1, max_value=400),
    error_bound=st.sampled_from([1e-4, 1e-3, 1e-2]),
    predictor=st.sampled_from(["lorenzo", "adaptive", "none"]),
)
def test_chunked_round_trip_within_bound(data, chunk_size, error_bound, predictor):
    cfg = SZConfig(
        error_bound=error_bound,
        predictor=predictor,
        chunk_size=chunk_size,
        lossless="zlib",
    )
    res = SZCompressor(cfg).compress(data)
    out = SZCompressor().decompress(res.payload)
    assert out.size == data.size
    assert out.dtype == np.float32
    if data.size:
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= (
            _bound_tolerance(data, error_bound)
        )


@_settings
@given(data=float_arrays(), chunk_size=st.integers(min_value=1, max_value=400))
def test_chunked_reconstruction_equals_v1(data, chunk_size):
    """Chunking changes the container, never the reconstructed values."""
    v1 = SZCompressor(SZConfig(error_bound=1e-3)).compress(data)
    v2 = SZCompressor(SZConfig(error_bound=1e-3, chunk_size=chunk_size)).compress(data)
    np.testing.assert_array_equal(
        SZCompressor().decompress(v1.payload),
        SZCompressor().decompress(v2.payload),
    )
