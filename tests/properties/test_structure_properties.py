"""Property-based tests for the sparse format, Bloomier filter and optimizer."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines import BloomierFilter
from repro.core.assessment import AssessmentPoint
from repro.core.optimizer import OptimizerConfig, optimize_error_bounds
from repro.pruning import decode_sparse, encode_sparse

SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


sparse_matrices = st.tuples(
    st.integers(1, 20),  # rows
    st.integers(1, 600),  # cols
    st.floats(0.0, 1.0),  # density
    st.integers(0, 2**31 - 1),  # seed
).map(
    lambda t: (
        np.random.default_rng(t[3]).normal(0, 0.05, (t[0], t[1])).astype(np.float32)
        * (np.random.default_rng(t[3] + 1).random((t[0], t[1])) < t[2])
    )
)


class TestSparseFormatProperties:
    @SETTINGS
    @given(matrix=sparse_matrices)
    def test_roundtrip_is_exact(self, matrix):
        layer = encode_sparse(matrix)
        assert np.array_equal(decode_sparse(layer), matrix)

    @SETTINGS
    @given(matrix=sparse_matrices)
    def test_invariants(self, matrix):
        layer = encode_sparse(matrix)
        # Entry count >= true non-zeros; padding entries are zero-valued 255s.
        assert layer.entry_count >= layer.nnz
        padding = layer.entry_count - layer.nnz
        assert int((layer.data == 0).sum()) >= padding
        assert layer.packed_bytes == 5 * layer.entry_count
        if layer.entry_count:
            # Deltas are in [1, 255] and positions stay inside the matrix.
            assert layer.index.min() >= 1
            assert int(layer.index.astype(np.int64).sum()) <= matrix.size


class TestBloomierProperties:
    @SETTINGS
    @given(
        n=st.integers(1, 400),
        value_bits=st.integers(1, 6),
        extra_bits=st.integers(1, 6),
        seed=st.integers(0, 2**20),
    )
    def test_stored_keys_always_exact(self, n, value_bits, extra_bits, seed):
        rng = np.random.default_rng(seed)
        keys = rng.choice(10 * n + 10, size=n, replace=False)
        values = rng.integers(0, 1 << value_bits, size=n)
        bf = BloomierFilter(
            keys, values, value_bits=value_bits, slot_bits=value_bits + extra_bits, seed=seed
        )
        out, found = bf.query(keys)
        assert found.all()
        assert np.array_equal(out, values)


def _candidate_sets(draw):
    layers = draw(st.integers(1, 4))
    candidates = {}
    for i in range(layers):
        n_points = draw(st.integers(1, 5))
        points = []
        for j in range(n_points):
            degradation = draw(st.floats(-0.002, 0.02))
            size = draw(st.integers(10, 10_000))
            points.append(
                AssessmentPoint(
                    layer=f"l{i}",
                    error_bound=1e-3 * (j + 1),
                    accuracy=0.9 - degradation,
                    degradation=degradation,
                    compressed_bytes=size,
                )
            )
        candidates[f"l{i}"] = points
    return candidates


candidate_sets = st.composite(_candidate_sets)()


class TestOptimizerProperties:
    @SETTINGS
    @given(candidates=candidate_sets, budget=st.floats(0.001, 0.05))
    def test_plan_always_within_budget_and_valid(self, candidates, budget):
        from repro.utils.errors import OptimizationError

        try:
            plan = optimize_error_bounds(
                candidates, OptimizerConfig(expected_accuracy_loss=budget)
            )
        except OptimizationError:
            # Legitimate whenever even the cheapest candidate of every layer,
            # taken together, cannot fit inside the quantized budget.
            step = budget / 100
            min_total = sum(
                min(int(np.ceil(max(p.degradation, 0.0) / step - 1e-12)) for p in points)
                for points in candidates.values()
            )
            if min_total > 100:
                return
            pytest.fail("optimizer failed although a feasible combination exists")
            return
        # One bound per layer, all drawn from that layer's candidates.
        assert set(plan.error_bounds) == set(candidates)
        clipped_total = 0.0
        for layer, eb in plan.error_bounds.items():
            matching = [p for p in candidates[layer] if p.error_bound == eb]
            assert matching
            clipped_total += max(matching[0].degradation, 0.0)
        # The quantized-cost budget admits at most `resolution` steps; allow
        # one step of rounding slack per layer.
        slack = budget / 100 * len(candidates)
        assert clipped_total <= budget + slack + 1e-12
