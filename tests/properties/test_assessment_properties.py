"""Property tests for the Algorithm 1 schedules and canonical bound keys."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assessment import _fine_bounds, bound_key

starts = st.one_of(
    # Decade starts (what Algorithm 1 actually feeds in: coarse bound / 10)...
    st.integers(min_value=-9, max_value=-1).map(lambda d: 10.0**d),
    # ...and arbitrary positive anchors, to pin the general contract.
    st.floats(min_value=1e-9, max_value=1e-1, allow_nan=False, allow_infinity=False),
)


class TestFineBoundsProperties:
    @given(start=starts, max_tests=st.integers(min_value=1, max_value=60))
    @settings(max_examples=200)
    def test_strictly_increasing(self, start, max_tests):
        bounds = _fine_bounds(start, max_tests)
        assert len(bounds) == max_tests
        assert all(b > a for a, b in zip(bounds, bounds[1:]))

    @given(start=starts, max_tests=st.integers(min_value=1, max_value=60))
    @settings(max_examples=200)
    def test_duplicate_free_under_canonical_key(self, start, max_tests):
        bounds = _fine_bounds(start, max_tests)
        keys = [bound_key(b) for b in bounds]
        assert len(set(keys)) == len(keys)

    @given(start=starts, max_tests=st.integers(min_value=1, max_value=60))
    @settings(max_examples=200)
    def test_decade_consistent_and_drift_free(self, start, max_tests):
        """Every bound is exactly step * (start * 10^decade) — the
        multiplicative form, not an accumulated sum — with step cycling 1..9
        and the decade advancing once per cycle."""
        bounds = _fine_bounds(start, max_tests)
        step, decade = 1, 0
        for bound in bounds:
            assert bound == step * (start * 10.0**decade)
            step += 1
            if step == 10:
                step, decade = 1, decade + 1

    @given(start=starts, max_tests=st.integers(min_value=1, max_value=60))
    @settings(max_examples=100)
    def test_platform_independent_reconstruction(self, start, max_tests):
        """Recomputing the schedule gives the same floats (no accumulated
        state: each bound is a pure function of its position)."""
        assert _fine_bounds(start, max_tests) == _fine_bounds(start, max_tests)


class TestBoundKeyProperties:
    @given(
        step=st.integers(min_value=1, max_value=9),
        decade=st.integers(min_value=-9, max_value=2),
    )
    def test_grid_values_get_grid_keys(self, step, decade):
        assert bound_key(step * 10.0**decade) == f"{step}e{decade}"

    @given(
        step=st.integers(min_value=1, max_value=9),
        decade=st.integers(min_value=-9, max_value=-1),
    )
    def test_accumulated_sum_matches_grid_key(self, step, decade):
        """The historical additive schedule drifted; its sums must still
        canonicalise onto the same key as the exact grid value."""
        base = 10.0**decade
        acc = 0.0
        for _ in range(step):
            acc += base
        assert bound_key(acc) == bound_key(step * base)

    @given(st.floats(min_value=1e-12, max_value=1e3, allow_nan=False))
    def test_key_is_round_trip_stable(self, eb):
        """A key is a pure function of the float value."""
        assert bound_key(eb) == bound_key(float(repr(eb)))

    @given(
        step=st.integers(min_value=1, max_value=9),
        decade=st.integers(min_value=-9, max_value=-1),
    )
    def test_near_equal_values_collapse(self, step, decade):
        eb = step * 10.0**decade
        assert bound_key(eb * (1.0 + 1e-13)) == bound_key(eb)

    def test_degenerate_values_still_keyed(self):
        assert bound_key(0.0) == repr(0.0)
        assert bound_key(-1e-3) == repr(-1e-3)
        assert bound_key(math.inf) == repr(math.inf)

    def test_extreme_magnitudes_do_not_crash(self):
        # Subnormals underflow the 10**d probe, huge values overflow it;
        # both must fall back to the repr key instead of raising.
        assert bound_key(5e-324) == repr(5e-324)
        assert bound_key(1e308) == "1e308"
        assert bound_key(1.7e308) == repr(1.7e308)
