"""Property-based tests (hypothesis) for the compression substrates."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sz import SZCompressor, SZConfig, compress, decompress
from repro.sz.huffman import HuffmanCodec
from repro.sz.predictor import lorenzo_decode, lorenzo_encode
from repro.sz.quantizer import LinearQuantizer
from repro.zfp import ZFPCompressor, ZFPConfig

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def bound_tolerance(data: np.ndarray, eb: float) -> float:
    """Error-bound tolerance for float32 outputs.

    The codecs guarantee the bound in double precision; the final cast of the
    reconstruction to float32 can add up to half a ULP of the value itself,
    which matters only for hypothesis-crafted exact-half-point inputs.
    """
    scale = float(np.max(np.abs(data))) if data.size else 0.0
    return eb * (1 + 1e-5) + np.finfo(np.float32).eps * scale


float_arrays = hnp.arrays(
    dtype=np.float32,
    shape=st.integers(0, 400),
    elements=st.floats(
        min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=32
    ),
)

error_bounds = st.sampled_from([1e-1, 1e-2, 1e-3, 1e-4])


class TestHuffmanProperties:
    @SETTINGS
    @given(
        data=hnp.arrays(
            dtype=np.int64, shape=st.integers(0, 500), elements=st.integers(-(2**20), 2**20)
        )
    )
    def test_roundtrip_any_int_array(self, data):
        codec = HuffmanCodec()
        assert np.array_equal(codec.decode(codec.encode(data)), data)


class TestLorenzoProperties:
    @SETTINGS
    @given(
        codes=hnp.arrays(
            dtype=np.int64, shape=st.integers(0, 500), elements=st.integers(-(2**40), 2**40)
        )
    )
    def test_encode_decode_inverse(self, codes):
        assert np.array_equal(lorenzo_decode(lorenzo_encode(codes)), codes)


class TestQuantizerProperties:
    @SETTINGS
    @given(data=float_arrays, eb=error_bounds)
    def test_error_bound_always_respected(self, data, eb):
        q = LinearQuantizer(eb, capacity=65536)
        r = q.quantize(data.astype(np.float64))
        recon = q.dequantize(r.codes, r.outlier_mask, r.outliers)
        if data.size:
            assert np.max(np.abs(recon.astype(np.float64) - data)) <= bound_tolerance(data, eb)


class TestSZProperties:
    @SETTINGS
    @given(data=float_arrays, eb=error_bounds)
    def test_roundtrip_error_bound(self, data, eb):
        result = compress(data, eb)
        recon = decompress(result.payload)
        assert recon.shape == data.shape
        if data.size:
            assert np.max(np.abs(recon.astype(np.float64) - data)) <= bound_tolerance(data, eb)

    @SETTINGS
    @given(data=float_arrays)
    def test_payload_is_self_describing(self, data):
        result = compress(data, 1e-3)
        # Decompress through a compressor with a *different* configuration:
        # everything needed must live in the payload.
        other = SZCompressor(SZConfig(error_bound=0.5, capacity=256, predictor="none"))
        recon = other.decompress(result.payload)
        assert recon.shape == data.shape

    @SETTINGS
    @given(
        data=hnp.arrays(
            dtype=np.float32,
            shape=st.integers(1, 300),
            elements=st.floats(
                min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False, width=32
            ),
        )
    )
    def test_wide_range_data_with_small_capacity(self, data):
        """Outlier handling must keep the bound even when most codes overflow."""
        comp = SZCompressor(SZConfig(error_bound=1e-3, capacity=64))
        recon = comp.decompress(comp.compress(data).payload)
        assert np.max(np.abs(recon.astype(np.float64) - data)) <= bound_tolerance(data, 1e-3)


class TestZFPProperties:
    @SETTINGS
    @given(data=float_arrays, tol=error_bounds)
    def test_fixed_accuracy_roundtrip(self, data, tol):
        comp = ZFPCompressor(ZFPConfig(tolerance=tol))
        recon = comp.decompress(comp.compress(data).payload)
        assert recon.shape == data.shape
        if data.size:
            assert np.max(np.abs(recon.astype(np.float64) - data)) <= bound_tolerance(data, tol)

    @SETTINGS
    @given(data=float_arrays)
    def test_transform_mode_roundtrip(self, data):
        comp = ZFPCompressor(ZFPConfig(tolerance=1e-2, use_transform=True, block_size=16))
        recon = comp.decompress(comp.compress(data).payload)
        if data.size:
            assert np.max(np.abs(recon.astype(np.float64) - data)) <= bound_tolerance(data, 1e-2)
