"""Property-based tests for the compressed-domain (sparse) matmul kernel.

The sparse inference engine is only correct if, for *any* pruned matrix —
any shape, any density, any gap-255 padding pattern — the chain
``encode_sparse -> sparse_to_scipy -> CSC matmul`` agrees with the dense
matmul on the reconstructed matrix.  Hypothesis drives shapes and densities
(including ultra-sparse wide matrices whose gaps force 255-padding entries),
and additionally pins batched-vs-single-sample agreement and the
data-override path used by the SZ decode.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.nn.sparse import SparseWeight
from repro.pruning import decode_sparse, encode_sparse, sparse_to_scipy

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _matrix(rows: int, cols: int, density: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.05, (rows, cols)).astype(np.float32)
    return (w * (np.random.default_rng(seed + 1).random((rows, cols)) < density)).astype(
        np.float32
    )


pruned_matrices = st.tuples(
    st.integers(1, 24),  # rows
    st.integers(1, 900),  # cols: wide enough for >255 gaps at low density
    st.floats(0.0, 0.6),  # density: includes all-zero and padding-heavy cases
    st.integers(0, 2**31 - 1),
).map(lambda t: _matrix(*t))


class TestEncodeToCsrRoundTrip:
    @SETTINGS
    @given(matrix=pruned_matrices)
    def test_csr_equals_dense_reconstruction(self, matrix):
        layer = encode_sparse(matrix)
        csr = sparse_to_scipy(layer)
        assert np.array_equal(csr.toarray(), matrix)
        assert csr.nnz == layer.nnz  # padding entries dropped

    @SETTINGS
    @given(matrix=pruned_matrices)
    def test_csr_matmul_equals_dense_matmul(self, matrix):
        layer = encode_sparse(matrix)
        weight = SparseWeight.from_sparse_layer(layer)
        rng = np.random.default_rng(matrix.shape[1])
        x = rng.standard_normal((5, matrix.shape[1])).astype(np.float32)
        dense_out = x @ matrix.T
        sparse_out = weight.matmul(x)
        assert sparse_out.shape == dense_out.shape
        assert np.allclose(sparse_out, dense_out, atol=1e-5, rtol=1e-5)

    @SETTINGS
    @given(matrix=pruned_matrices, seed=st.integers(0, 2**20))
    def test_data_override_mirrors_decode_sparse(self, matrix, seed):
        """Replacement values (the SZ-decode path) flow through the CSR
        exactly as they flow into the dense reconstruction, padding slots
        included."""
        layer = encode_sparse(matrix)
        noisy = layer.data + np.random.default_rng(seed).uniform(
            -1e-3, 1e-3, layer.data.shape
        ).astype(np.float32)
        assert np.array_equal(
            sparse_to_scipy(layer, data=noisy).toarray(),
            decode_sparse(layer, data=noisy),
        )


class TestBatchedVsSingle:
    @SETTINGS
    @given(matrix=pruned_matrices, batch=st.integers(1, 9))
    def test_batched_forward_agrees_with_per_sample(self, matrix, batch):
        layer = encode_sparse(matrix)
        weight = SparseWeight.from_sparse_layer(layer)
        rng = np.random.default_rng(batch)
        x = rng.standard_normal((batch, matrix.shape[1])).astype(np.float32)
        batched = weight.matmul(x)
        singles = np.vstack([weight.matmul(x[i : i + 1]) for i in range(batch)])
        assert np.allclose(batched, singles, atol=1e-6)


class TestSparseWeightInvariants:
    @SETTINGS
    @given(matrix=pruned_matrices)
    def test_nbytes_counts_the_three_csc_arrays(self, matrix):
        weight = SparseWeight.from_sparse_layer(encode_sparse(matrix))
        m = weight.matrix
        assert weight.nbytes == m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
        assert not m.data.flags.writeable

    @SETTINGS
    @given(matrix=pruned_matrices)
    def test_to_dense_round_trips(self, matrix):
        weight = SparseWeight.from_sparse_layer(encode_sparse(matrix))
        assert np.array_equal(weight.to_dense(), matrix)
