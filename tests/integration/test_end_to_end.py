"""Integration tests: the full DeepSZ story on a real (small) trained network."""

import numpy as np
import pytest

from repro.baselines import (
    DeepCompressionConfig,
    DeepCompressionEncoder,
    WeightlessConfig,
    WeightlessEncoder,
)
from repro.core import DeepSZ, DeepSZConfig
from repro.core.decoder import DeepSZDecoder
from repro.core.encoder import CompressedModel
from repro.nn import models
from repro.nn.serialize import network_to_bytes


@pytest.fixture(scope="module")
def deepsz_result(pruned_lenet300, small_dataset):
    _, test = small_dataset
    deepsz = DeepSZ(DeepSZConfig(expected_accuracy_loss=0.01, topk=(1, 5)))
    return deepsz.compress(pruned_lenet300, test.images, test.labels)


class TestCompressedModelServesInference:
    def test_decode_into_fresh_network_and_predict(self, deepsz_result, small_dataset):
        """A user ships the container, rebuilds the net elsewhere, and runs inference."""
        _, test = small_dataset
        blob = deepsz_result.model.to_bytes()

        # "Edge device": fresh architecture, weights only from the container.
        edge_net = models.lenet_300_100(seed=999)
        model = CompressedModel.from_bytes(blob)
        DeepSZDecoder().apply(model, edge_net)
        # Conv-free LeNet-300-100 has every parameter in fc-layers, so the
        # decoded network must essentially match the compressed accuracy.
        acc = edge_net.accuracy(test.images, test.labels)
        assert acc >= deepsz_result.compressed_accuracy[1] - 0.05

    def test_container_smaller_than_dense_and_csr(self, deepsz_result, pruned_lenet300):
        blob = deepsz_result.model.to_bytes()
        assert len(blob) < pruned_lenet300.packed_fc_bytes
        assert len(blob) < pruned_lenet300.dense_fc_bytes
        # The serialized container is close to the sum of per-layer streams.
        assert len(blob) <= deepsz_result.compressed_fc_bytes * 1.2 + 4096

    def test_compression_ratio_band(self, deepsz_result):
        """LeNet-300-100 lands in the tens; the paper reports 55.8x at paper scale."""
        assert 15 <= deepsz_result.compression_ratio <= 90

    def test_accuracy_within_expected_loss(self, deepsz_result):
        assert deepsz_result.top1_loss <= 0.02


class TestThreeWayComparison:
    """DeepSZ vs Deep Compression vs Weightless on the same pruned network."""

    def test_deepsz_beats_deep_compression_on_ratio(self, deepsz_result, pruned_lenet300):
        dc = DeepCompressionEncoder(DeepCompressionConfig(bits=5))
        dc_results = dc.encode_network(pruned_lenet300.sparse_layers)
        dc_bytes = sum(r.compressed_bytes for r in dc_results.values())
        assert deepsz_result.compressed_fc_bytes < dc_bytes

    def test_weightless_compresses_only_one_layer(self, pruned_lenet300):
        wl = WeightlessEncoder(WeightlessConfig(seed=1))
        target = wl.pick_target_layer(pruned_lenet300.sparse_layers)
        assert target == "ip1"  # the largest fc-layer of LeNet-300-100
        result = wl.encode_layer(target, pruned_lenet300.sparse_layers[target])
        assert result.ratio > 1.0

    def test_decoding_weightless_is_slower_than_deepsz(self, deepsz_result, pruned_lenet300):
        """Figure 7b ordering: Bloomier decode >> SZ decode on the same layer."""
        import time

        wl = WeightlessEncoder(WeightlessConfig(seed=2))
        target = wl.pick_target_layer(pruned_lenet300.sparse_layers)
        payload = wl.encode_layer(target, pruned_lenet300.sparse_layers[target]).payload

        start = time.perf_counter()
        wl.decode_layer(payload)
        weightless_time = time.perf_counter() - start

        deepsz_time = deepsz_result.decoding_timing.total
        assert weightless_time > deepsz_time * 0.5  # robust ordering check


class TestNoRetrainingNeeded:
    def test_deepsz_accuracy_without_any_retraining(self, deepsz_result, pruned_lenet300, small_dataset):
        """The headline claim: decode-and-run accuracy stays near the baseline

        without any fine-tuning, unlike quantization at matched bit width
        (Table 5)."""
        _, test = small_dataset
        # Deep Compression at the bit width DeepSZ's *data arrays* effectively
        # use (the index arrays cost both methods the same), as in Table 5.
        largest = max(
            deepsz_result.model.layers.values(), key=lambda layer: layer.nnz
        )
        data_bits = 8.0 * len(largest.sz_payload) / largest.nnz
        bits = int(np.clip(round(data_bits), 2, 6))
        dc = DeepCompressionEncoder(DeepCompressionConfig(bits=bits))
        dc_results = dc.encode_network(pruned_lenet300.sparse_layers)
        weights, _ = dc.decode_network(dc_results)
        quantized_net = pruned_lenet300.network.clone()
        for name, dense in weights.items():
            quantized_net.set_weights(name, dense)
        dc_acc = quantized_net.accuracy(test.images, test.labels)
        baseline = deepsz_result.baseline_accuracy[1]
        deepsz_loss = baseline - deepsz_result.compressed_accuracy[1]
        dc_loss = baseline - dc_acc
        # DeepSZ's loss never exceeds matched-rate codebook quantization by
        # more than measurement noise (a few samples of the small test set);
        # usually it is clearly smaller.
        assert deepsz_loss <= dc_loss + 0.015
