"""Benchmark-gate tooling: core-scaled expectation relaxation.

``compare_baselines.py`` is a script, not part of the ``repro`` package,
but its core-scaling arithmetic gates every CI run: a bug here either
flakes small runners or waves real collapses through.  These tests import
the script directly from ``benchmarks/`` and pin the contract.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

compare_baselines = pytest.importorskip("compare_baselines")


def _baseline(**overrides):
    base = {
        "host_cores": 8,
        "metrics": {"gateway_scaling_4v1": 3.2, "gateway_rps_4": 8000.0},
        "gate": ["gateway_scaling_4v1", "gateway_rps_4"],
        "directions": {
            "gateway_scaling_4v1": "higher",
            "gateway_rps_4": "higher",
        },
        "core_scaled": {"gateway_scaling_4v1": 4, "gateway_rps_4": 4},
    }
    base.update(overrides)
    return base


class TestCoreScaledGate:
    def test_small_runner_expectation_is_relaxed(self):
        # min(1, 4) / min(8, 4) = 0.25: an 8-core baseline asks a 1-core
        # runner for only a quarter of the recorded number.
        fresh = {
            "host_cores": 1,
            "metrics": {"gateway_scaling_4v1": 0.9, "gateway_rps_4": 2100.0},
        }
        rows, failures = compare_baselines.compare_suite(_baseline(), fresh, 30.0)
        assert failures == []
        verdicts = {row[0]: row[4] for row in rows}
        assert verdicts["gateway_scaling_4v1"] == "ok (core-adj x0.25)"
        assert verdicts["gateway_rps_4"] == "ok (core-adj x0.25)"

    def test_bigger_runner_is_never_held_to_extrapolation(self):
        # Relax-only: a 16-core fresh run compares against the raw 8-core
        # baseline, not a 2x-scaled fantasy of it.
        fresh = {
            "host_cores": 16,
            "metrics": {"gateway_scaling_4v1": 3.0, "gateway_rps_4": 7900.0},
        }
        rows, failures = compare_baselines.compare_suite(_baseline(), fresh, 30.0)
        assert failures == []
        assert all("core-adj" not in row[4] for row in rows)

    def test_collapse_on_small_runner_still_fails(self):
        fresh = {
            "host_cores": 1,
            "metrics": {"gateway_scaling_4v1": 0.2, "gateway_rps_4": 500.0},
        }
        _, failures = compare_baselines.compare_suite(_baseline(), fresh, 30.0)
        assert len(failures) == 2
        assert any("core-scaled" in message for message in failures)

    def test_no_host_cores_means_no_adjustment(self):
        # Old artifacts without the stamp keep the pre-existing behaviour.
        fresh = {"metrics": {"gateway_scaling_4v1": 0.9, "gateway_rps_4": 2100.0}}
        rows, failures = compare_baselines.compare_suite(
            _baseline(host_cores=None), fresh, 30.0
        )
        assert len(failures) == 2
        assert all("core-adj" not in row[4] for row in rows)

    def test_uncapped_metrics_are_untouched(self):
        baseline = _baseline(core_scaled={})
        fresh = {
            "host_cores": 1,
            "metrics": {"gateway_scaling_4v1": 3.1, "gateway_rps_4": 7800.0},
        }
        rows, failures = compare_baselines.compare_suite(baseline, fresh, 30.0)
        assert failures == []
        assert all("core-adj" not in row[4] for row in rows)


run_all = pytest.importorskip("run_all")


class TestSuiteSelection:
    """``run_all.py --suites`` must fail loudly, never run zero suites."""

    def test_unknown_suite_errors_with_available_list(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_all.main(["--suites", "serving,nope"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "nope" in err and "serving" in err

    @pytest.mark.parametrize("value", ["", ",", " , "])
    def test_empty_selection_errors_instead_of_running_nothing(self, value, capsys):
        # Regression: these used to parse to an empty list and "pass"
        # while producing no artifacts for the gate to check.
        with pytest.raises(SystemExit) as excinfo:
            run_all.main(["--suites", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "selected no suites" in err
        assert "scenarios" in err  # the valid list is printed

    def test_scenarios_suite_is_registered(self):
        script, raw, extract = run_all.SUITES["scenarios"]
        assert script == "bench_scenarios.py"
        raw_payload = {
            "metrics": {"cells_completed": 8.0},
            "gate": ["cells_completed"],
            "directions": {"cells_completed": "higher"},
            "grid": {}, "workload": {}, "traces": {}, "cells": [],
        }
        extracted = extract(raw_payload)
        assert extracted["gate"] == ["cells_completed"]
        assert extracted["metrics"]["cells_completed"] == 8.0
