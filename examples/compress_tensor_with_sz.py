#!/usr/bin/env python
"""Using the SZ / ZFP substrates directly on arbitrary float arrays.

The error-bounded compressors built for DeepSZ are general 1-D floating-point
codecs; this example exercises them standalone, the way the paper's Figure 2
does: compress the same weight array with SZ and the ZFP-style codec under
absolute, relative and PSNR error controls, and compare ratios and actual
errors.

Run with::

    python examples/compress_tensor_with_sz.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_bytes, max_abs_error, psnr, render_table
from repro.nn.models import synthesize_fc_weights
from repro.sz import ErrorMode, SZCompressor, SZConfig
from repro.zfp import ZFPCompressor, ZFPConfig


def main() -> None:
    # A trained-looking AlexNet fc6 weight matrix at 20% of paper scale.
    weights = synthesize_fc_weights("AlexNet", "fc6", seed=7, scale=0.2).ravel()
    print(f"input: {weights.size:,} float32 weights ({format_bytes(weights.nbytes)}), "
          f"range [{weights.min():.3f}, {weights.max():.3f}]\n")

    rows = []

    for eb in (1e-2, 1e-3, 1e-4):
        sz = SZCompressor(SZConfig(error_bound=eb))
        result = sz.compress(weights)
        recon = sz.decompress(result.payload)
        rows.append(
            ["SZ", f"abs {eb:.0e}", f"{result.ratio:.2f}x",
             f"{max_abs_error(weights, recon):.2e}", f"{psnr(weights, recon):.1f} dB"]
        )

        zfp = ZFPCompressor(ZFPConfig(tolerance=eb))
        zresult = zfp.compress(weights)
        zrecon = zfp.decompress(zresult.payload)
        rows.append(
            ["ZFP-style", f"abs {eb:.0e}", f"{zresult.ratio:.2f}x",
             f"{max_abs_error(weights, zrecon):.2e}", f"{psnr(weights, zrecon):.1f} dB"]
        )

    # Relative and PSNR error controls (SZ only — ZFP's mode is absolute/rate).
    rel = SZCompressor(SZConfig(error_bound=0.005, mode=ErrorMode.REL))
    result = rel.compress(weights)
    recon = rel.decompress(result.payload)
    rows.append(
        ["SZ", "rel 0.5% of range", f"{result.ratio:.2f}x",
         f"{max_abs_error(weights, recon):.2e}", f"{psnr(weights, recon):.1f} dB"]
    )

    target_psnr = 70.0
    ps = SZCompressor(SZConfig(error_bound=target_psnr, mode=ErrorMode.PSNR))
    result = ps.compress(weights)
    recon = ps.decompress(result.payload)
    rows.append(
        ["SZ", f"PSNR >= {target_psnr:.0f} dB", f"{result.ratio:.2f}x",
         f"{max_abs_error(weights, recon):.2e}", f"{psnr(weights, recon):.1f} dB"]
    )

    print(render_table(
        ["codec", "error control", "ratio", "max abs error", "PSNR"],
        rows,
        title="Error-bounded compression of an fc6-like weight array",
    ))
    print("\nSZ stays ahead of the ZFP-style codec at every bound on this 1-D, "
          "noise-like data — the Figure 2 result that motivates DeepSZ's choice of SZ.")


if __name__ == "__main__":
    main()
