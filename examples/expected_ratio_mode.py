#!/usr/bin/env python
"""Expected-ratio mode: hit a target compression ratio, lose as little accuracy as possible.

DeepSZ's second operating mode (Section 3.4): instead of fixing the acceptable
accuracy loss, the user fixes the compression ratio — e.g. "the update channel
to the sensor fleet gives me 400 KB per model" — and DeepSZ picks the
per-layer error bounds that reach the ratio with the smallest predicted
accuracy loss.  This example sweeps several targets on LeNet-5 and prints the
resulting accuracy/ratio trade-off curve.

Run with::

    python examples/expected_ratio_mode.py
"""

from __future__ import annotations

from repro.analysis import format_bytes, render_table
from repro.core import DeepSZ, DeepSZConfig
from repro.nn import zoo


def main() -> None:
    print("loading (or training) the pruned LeNet-5 from the model zoo ...")
    pruned, _, test = zoo.pruned_model("lenet-5")
    baseline = pruned.network.evaluate(test.images, test.labels, topk=(1,))[1]
    dense_fc_bytes = pruned.dense_fc_bytes
    print(f"pruned baseline accuracy: {baseline:.2%}; dense fc storage "
          f"{format_bytes(dense_fc_bytes)}\n")

    rows = []
    for target_ratio in (20.0, 35.0, 50.0, 70.0):
        deepsz = DeepSZ(
            DeepSZConfig(
                mode="expected-ratio",
                target_ratio=target_ratio,
                expected_accuracy_loss=0.05,  # assessment sweep range
                topk=(1,),
            )
        )
        result = deepsz.compress(pruned, test.images, test.labels)
        rows.append(
            [
                f"{target_ratio:.0f}x",
                f"{result.compression_ratio:.1f}x",
                format_bytes(result.compressed_fc_bytes),
                ", ".join(f"{l}={eb:.0e}" for l, eb in sorted(result.plan.error_bounds.items())),
                f"{result.compressed_accuracy[1]:.2%}",
                f"{result.top1_loss * 100:+.2f}%",
            ]
        )

    print(
        render_table(
            ["target", "achieved", "fc size", "error bounds", "top-1", "loss"],
            rows,
            title="Expected-ratio mode on LeNet-5 (mini, synthetic MNIST-like data)",
        )
    )
    print("\nHigher targets force larger error bounds on the big layers and cost "
          "progressively more accuracy — the flexibility the paper contrasts "
          "against Deep Compression's fixed code-book widths.")


if __name__ == "__main__":
    main()
