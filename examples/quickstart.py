#!/usr/bin/env python
"""Quickstart: compress LeNet-300-100 with DeepSZ in a few lines.

This is the smallest end-to-end tour of the public API:

1. build a synthetic MNIST-like dataset and train LeNet-300-100;
2. prune the fc-layers (magnitude threshold + masked retraining);
3. run DeepSZ (error-bound assessment -> optimization -> encoding);
4. decode the compressed model into a fresh network and check its accuracy.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_bytes
from repro.core import DeepSZ, DeepSZConfig
from repro.core.decoder import DeepSZDecoder
from repro.core.encoder import CompressedModel
from repro.data import mnist_like, train_test_split
from repro.nn import SGDConfig, SGDTrainer, models


def main() -> None:
    # ------------------------------------------------------------------ data
    dataset = mnist_like(samples_per_class=300, seed=1)
    train, test = train_test_split(dataset, test_fraction=0.3, seed=2)
    print(f"dataset: {len(train)} training / {len(test)} test images, "
          f"{dataset.num_classes} classes")

    # ----------------------------------------------------------------- train
    network = models.lenet_300_100(seed=3)
    trainer = SGDTrainer(SGDConfig(epochs=8, learning_rate=0.03, weight_decay=1e-3, seed=4))
    trainer.train(network, train.images, train.labels)
    dense_accuracy = network.accuracy(test.images, test.labels)
    print(f"trained LeNet-300-100: top-1 accuracy {dense_accuracy:.2%}, "
          f"fc-layer storage {format_bytes(network.fc_parameter_bytes())}")

    # ------------------------------------------------------- DeepSZ pipeline
    deepsz = DeepSZ(DeepSZConfig(expected_accuracy_loss=0.01, topk=(1,)))
    result = deepsz.run(
        network,
        pruning_ratios={"ip1": 0.08, "ip2": 0.09, "ip3": 0.26},
        train_images=train.images,
        train_labels=train.labels,
        test_images=test.images,
        test_labels=test.labels,
    )

    print("\nchosen error bounds per fc-layer:")
    for layer, report in result.layer_reports.items():
        print(f"  {layer}: error bound {report.error_bound:.0e}, "
              f"{format_bytes(report.original_bytes)} -> {format_bytes(report.compressed_bytes)} "
              f"({report.deepsz_ratio:.1f}x)")
    print(f"\noverall: pruning alone {result.csr_compression_ratio:.1f}x, "
          f"DeepSZ {result.compression_ratio:.1f}x")
    print(f"accuracy: baseline {result.baseline_accuracy[1]:.2%} -> "
          f"compressed {result.compressed_accuracy[1]:.2%} "
          f"(loss {result.top1_loss:.2%})")

    # --------------------------------------------------- ship, decode, serve
    blob = result.model.to_bytes()
    print(f"\nserialized compressed model: {format_bytes(len(blob))}")

    edge_network = models.lenet_300_100(seed=999)  # fresh, untrained weights
    DeepSZDecoder().apply(CompressedModel.from_bytes(blob), edge_network)
    edge_accuracy = edge_network.accuracy(test.images, test.labels)
    print(f"decoded on the 'edge device': top-1 accuracy {edge_accuracy:.2%} "
          f"(decode time {result.decoding_timing.total * 1e3:.1f} ms)")


if __name__ == "__main__":
    main()
