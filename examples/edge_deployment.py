#!/usr/bin/env python
"""Edge-deployment scenario: ship an ImageNet-class model over a slow link.

The paper's motivating use case (Section 1): models are trained in the cloud
and distributed to bandwidth-limited edge devices (2G links, ~1 Mbit/s), so a
hundreds-of-megabytes VGG-16 is impractical to push.  This example plays that
scenario out on the AlexNet-mini / synthetic-ImageNet stand-in:

* the "cloud" trains, prunes, and DeepSZ-encodes the model;
* the compressed container is "transmitted" (we report the transfer time at
  2G and 4G rates for both the dense and the compressed model);
* the "edge device" decodes the container and serves inference, and we verify
  the accuracy it observes.

Run with::

    python examples/edge_deployment.py
"""

from __future__ import annotations

from repro.analysis import format_bytes
from repro.core import DeepSZ, DeepSZConfig
from repro.core.decoder import DeepSZDecoder
from repro.core.encoder import CompressedModel
from repro.nn import models, zoo


def transfer_seconds(num_bytes: int, bits_per_second: float) -> float:
    return 8.0 * num_bytes / bits_per_second


def main() -> None:
    # ----------------------------------------------------------- cloud side
    print("== cloud: train + prune + DeepSZ-encode (cached after first run) ==")
    pruned, train, test = zoo.pruned_model("alexnet-mini")
    deepsz = DeepSZ(
        DeepSZConfig(expected_accuracy_loss=0.01, topk=(1, 5), assessment_samples=300)
    )
    result = deepsz.compress(pruned, test.images, test.labels)
    blob = result.model.to_bytes()

    dense_bytes = result.original_fc_bytes
    print(f"fc-layer storage: dense {format_bytes(dense_bytes)} -> "
          f"DeepSZ {format_bytes(len(blob))} ({result.compression_ratio:.1f}x)")
    print(f"error bounds: { {k: f'{v:.0e}' for k, v in result.plan.error_bounds.items()} }")

    # ------------------------------------------------------------- the link
    print("\n== transfer over bandwidth-limited links ==")
    for link, rate in [("2G (1 Mbit/s)", 1e6), ("4G (20 Mbit/s)", 20e6)]:
        dense_t = transfer_seconds(dense_bytes, rate)
        comp_t = transfer_seconds(len(blob), rate)
        print(f"  {link:<16} dense {dense_t:8.1f} s   compressed {comp_t:6.1f} s   "
              f"({dense_t / comp_t:.0f}x faster)")

    # ------------------------------------------------------------ edge side
    print("\n== edge device: decode and serve ==")
    edge_net = models.alexnet_mini(num_classes=test.num_classes, seed=123)
    # Conv layers are small and ship uncompressed (they are ~4% of storage);
    # copy them over, then decode the fc-layers from the DeepSZ container.
    for layer in pruned.network.layers:
        if layer.params and layer.name not in result.model.layers:
            edge_net[layer.name].params = {k: v.copy() for k, v in layer.params.items()}
    decoded = DeepSZDecoder().apply(CompressedModel.from_bytes(blob), edge_net)

    evaluation = edge_net.evaluate(test.images, test.labels, topk=(1, 5))
    baseline = result.baseline_accuracy
    print(f"decode time: {decoded.timing.total * 1e3:.0f} ms "
          f"({ {k: f'{v * 1e3:.0f} ms' for k, v in decoded.timing.phases.items()} })")
    print(f"accuracy on the edge: top-1 {evaluation[1]:.2%} (cloud baseline {baseline[1]:.2%}), "
          f"top-5 {evaluation[5]:.2%} (baseline {baseline.get(5, 0):.2%})")


if __name__ == "__main__":
    main()
