#!/usr/bin/env python
"""Edge-deployment scenario: ship an ImageNet-class model over a slow link.

The paper's motivating use case (Section 1): models are trained in the cloud
and distributed to bandwidth-limited edge devices (2G links, ~1 Mbit/s), so a
hundreds-of-megabytes VGG-16 is impractical to push.  This example plays that
scenario out on the AlexNet-mini / synthetic-ImageNet stand-in:

* the "cloud" trains, prunes, DeepSZ-encodes the model, and writes the
  random-access ``.dsz`` archive (what actually travels: per-layer segments
  plus the footer-indexed manifest, so the reported transfer time includes
  the manifest overhead);
* the compressed archive is "transmitted" (we report transfer time at 2G
  and 4G rates for both the dense model and the archive);
* the "edge device" opens the archive through a lazy
  :class:`repro.serve.ModelRuntime`: the first fc layer is usable after one
  segment read + decode (time-to-first-layer), inference is possible as
  soon as the fc layers it needs are decoded (time-to-first-inference), and
  warm requests hit the decoded-layer cache — contrast with the v1
  experience of decoding the whole monolithic blob up front;
* finally the device switches to **sparse compressed-domain serving**
  (``ModelRuntime(..., sparse=True)``): decoding stops at the two-array
  form, the fc layers run CSC matmuls directly on the pruned weights, and
  the resident cache footprint drops ~6x — more models per byte of edge
  RAM, and faster batches at the ~10% paper density;
* a **region gateway** then fronts a small fleet: the archive goes into a
  content-addressed :class:`repro.store.ModelStore`, and a
  :class:`repro.serve.Gateway` hosts dense and sparse variants of the
  model behind replica pools — requests shard by policy (least-loaded for
  the dense pool, consistent-hash so a device's stream sticks to one warm
  replica for the sparse pool), and a deliberately tiny admission queue
  shows overload degrading into fast-fail ``GatewayOverloaded`` rejections
  instead of a latency collapse.

Run with::

    python examples/edge_deployment.py
"""

from __future__ import annotations

import tempfile
import time

from repro.analysis import format_bytes
from repro.core import DeepSZ, DeepSZConfig
from repro.core.decoder import DeepSZDecoder
from repro.nn import models, zoo
from repro.serve import Gateway, ModelRuntime, Server
from repro.store import ModelArchive, ModelStore
from repro.utils.errors import GatewayOverloaded


def transfer_seconds(num_bytes: int, bits_per_second: float) -> float:
    return 8.0 * num_bytes / bits_per_second


def main() -> None:
    # ----------------------------------------------------------- cloud side
    print("== cloud: train + prune + DeepSZ-encode (cached after first run) ==")
    pruned, train, test = zoo.pruned_model("alexnet-mini")
    deepsz = DeepSZ(
        DeepSZConfig(expected_accuracy_loss=0.01, topk=(1, 5), assessment_samples=300)
    )
    result = deepsz.compress(pruned, test.images, test.labels)
    archive_blob = result.model.to_archive_bytes()

    dense_bytes = result.original_fc_bytes
    print(f"fc-layer storage: dense {format_bytes(dense_bytes)} -> "
          f".dsz archive {format_bytes(len(archive_blob))} "
          f"({dense_bytes / len(archive_blob):.1f}x, manifest overhead included)")
    print(f"error bounds: { {k: f'{v:.0e}' for k, v in result.plan.error_bounds.items()} }")

    # ------------------------------------------------------------- the link
    print("\n== transfer over bandwidth-limited links ==")
    for link, rate in [("2G (1 Mbit/s)", 1e6), ("4G (20 Mbit/s)", 20e6)]:
        dense_t = transfer_seconds(dense_bytes, rate)
        comp_t = transfer_seconds(len(archive_blob), rate)
        print(f"  {link:<16} dense {dense_t:8.1f} s   archive {comp_t:6.1f} s   "
              f"({dense_t / comp_t:.0f}x faster)")

    # ------------------------------------------------------------ edge side
    print("\n== edge device: lazy decode through the serving runtime ==")
    edge_net = models.alexnet_mini(num_classes=test.num_classes, seed=123)
    # Conv layers are small and ship uncompressed (they are ~4% of storage);
    # copy them over, then serve the fc-layers from the archive.
    for layer in pruned.network.layers:
        if layer.params and layer.name not in result.model.layers:
            edge_net[layer.name].params = {k: v.copy() for k, v in layer.params.items()}

    # Baseline: the v1 experience — decode everything before anything runs.
    start = time.perf_counter()
    full = DeepSZDecoder().decode(ModelArchive.from_bytes(archive_blob))
    full_decode_s = time.perf_counter() - start

    # Lazy: decode layers on demand; the first layer is usable without
    # reading (or checksumming) any sibling segment.
    runtime = ModelRuntime(archive_blob)
    fc_names = runtime.layer_names
    start = time.perf_counter()
    runtime.layer(fc_names[0])
    first_layer_s = time.perf_counter() - start
    runtime.load_into(edge_net)
    first_inference = edge_net.forward(test.images[:1])
    ttfi_s = time.perf_counter() - start
    assert first_inference.shape[0] == 1

    print(f"full decode before serving : {full_decode_s * 1e3:7.1f} ms "
          f"({ {k: f'{v * 1e3:.0f} ms' for k, v in full.timing.phases.items()} })")
    print(f"time to first layer (lazy) : {first_layer_s * 1e3:7.1f} ms "
          f"({fc_names[0]!r} only)")
    print(f"time to first inference    : {ttfi_s * 1e3:7.1f} ms")
    stats = runtime.stats()
    print(f"runtime: {stats.decodes} layer decodes, "
          f"cache hit rate {stats.cache.hit_rate:.0%} "
          f"({format_bytes(stats.cache.current_bytes)} cached)")

    # -------------------------------------------------- serve some traffic
    print("\n== edge device: batched serving ==")
    with Server(edge_net, runtime, batch_size=64, max_batch_delay=0.002) as server:
        futures = [server.submit(image) for image in test.images[:256]]
        for future in futures:
            future.result()
        server_stats = server.stats()
    print(f"served {server_stats.requests} requests in "
          f"{server_stats.elapsed_seconds:.2f} s "
          f"({server_stats.throughput_rps:.0f} req/s, "
          f"mean batch {server_stats.mean_batch_size:.1f}, "
          f"latency p50/p99 {server_stats.latencies_ms.get('p50', 0):.1f}/"
          f"{server_stats.latencies_ms.get('p99', 0):.1f} ms)")

    # ------------------------------------- sparse compressed-domain serving
    print("\n== edge device: sparse compressed-domain serving ==")
    sparse_runtime = ModelRuntime(archive_blob, sparse=True)
    sparse_net = edge_net.clone()
    start = time.perf_counter()
    sparse_runtime.load_into(sparse_net)
    sparse_load_s = time.perf_counter() - start
    dense_resident = runtime.stats().cache.current_bytes
    sparse_resident = sparse_runtime.stats().cache.current_bytes
    print(f"resident fc weights        : dense {format_bytes(dense_resident)} -> "
          f"sparse {format_bytes(sparse_resident)} "
          f"({dense_resident / sparse_resident:.1f}x less edge RAM)")
    print(f"sparse decode + install    : {sparse_load_s * 1e3:7.1f} ms "
          f"(stops at the two-array form, no densify)")
    probs_dense = edge_net.forward(test.images[:64])
    probs_sparse = sparse_net.forward(test.images[:64])
    print(f"dense vs sparse outputs    : max |diff| "
          f"{float(abs(probs_dense - probs_sparse).max()):.1e}")
    with Server(sparse_net, sparse_runtime, batch_size=64, max_batch_delay=0.002) as server:
        for future in server.submit_many(list(test.images[:256])):
            future.result()
        sparse_stats = server.stats()
    print(f"served {sparse_stats.requests} requests in "
          f"{sparse_stats.elapsed_seconds:.2f} s "
          f"({sparse_stats.throughput_rps:.0f} req/s vs dense "
          f"{server_stats.throughput_rps:.0f} req/s, "
          f"mean batch {sparse_stats.mean_batch_size:.1f})")

    evaluation = edge_net.evaluate(test.images, test.labels, topk=(1, 5))
    sparse_eval = sparse_net.evaluate(test.images, test.labels, topk=(1, 5))
    baseline = result.baseline_accuracy
    print(f"\naccuracy on the edge: top-1 {evaluation[1]:.2%} (cloud baseline {baseline[1]:.2%}), "
          f"top-5 {evaluation[5]:.2%} (baseline {baseline.get(5, 0):.2%})")
    print(f"sparse-serving accuracy: top-1 {sparse_eval[1]:.2%}, top-5 {sparse_eval[5]:.2%} "
          f"(identical execution to within float32 rounding)")

    # ----------------------------------- region gateway: a multi-model fleet
    print("\n== region gateway: dense + sparse pools behind one front door ==")
    with tempfile.TemporaryDirectory(prefix="edge-store-") as store_dir:
        store = ModelStore(store_dir)
        digest = store.put_bytes(archive_blob, network="alexnet-mini")
        print(f"archive stored as sha256:{digest[:16]}…")

        gateway = Gateway(store=store)
        # Both pools resolve the same content digest from the store; each
        # replica gets its own runtime (independent decoded-layer cache)
        # and its own clone of the edge network.
        gateway.add_model(
            "alexnet-dense", digest=digest[:12], replicas=2,
            network_factory=edge_net.clone, policy="least-loaded",
            max_queue_depth=512, batch_size=64,
        )
        gateway.add_model(
            "alexnet-sparse", digest=digest[:12], replicas=2, sparse=True,
            network_factory=edge_net.clone, policy="consistent-hash",
            max_queue_depth=512, batch_size=64,
        )
        with gateway:
            futures = []
            for i, image in enumerate(test.images[:256]):
                model = "alexnet-dense" if i % 2 == 0 else "alexnet-sparse"
                # The shard key is the requesting device: consistent-hash
                # keeps each device on one replica's warm cache.
                futures.append(gateway.submit(model, image, key=f"device-{i % 32}"))
            for future in futures:
                future.result()
            fleet = gateway.stats()
        for name, model_stats in fleet.models.items():
            spread = "/".join(str(r.dispatched) for r in model_stats.replicas)
            print(f"  {name:<14} {model_stats.throughput_rps:6.0f} req/s, "
                  f"p99 {model_stats.latencies_ms.get('p99', 0.0):5.1f} ms, "
                  f"replica spread {spread}, "
                  f"resident {format_bytes(model_stats.cache_bytes)}")
        print(f"fleet: {fleet.completed} served, {fleet.failures} failures, "
              f"resident weights {format_bytes(fleet.cache_bytes)} across "
              f"{sum(len(m.replicas) for m in fleet.models.values())} replicas")

        # Overload: a tiny admission queue sheds a burst instead of queueing
        # it — rejected requests fail in microseconds with a 429-style
        # error, admitted ones keep their latency.
        gateway.add_model(
            "alexnet-burst", digest=digest[:12], replicas=1,
            network_factory=edge_net.clone, max_queue_depth=8,
            max_concurrency=1, batch_size=8,
        )
        rejected = 0
        with gateway:
            burst = [None] * 96
            for i, image in enumerate(test.images[:96]):
                try:
                    burst[i] = gateway.submit("alexnet-burst", image)
                except GatewayOverloaded:
                    rejected += 1
            for future in burst:
                if future is not None:
                    future.result()
            burst_stats = gateway.stats().models["alexnet-burst"]
        print(f"overload burst: 96 offered -> {burst_stats.submitted} admitted, "
              f"{rejected} fast-fail rejected "
              f"({burst_stats.rejection_rate:.0%}), admitted p99 "
              f"{burst_stats.latencies_ms.get('p99', 0.0):.1f} ms")
        gateway.close()


if __name__ == "__main__":
    main()
