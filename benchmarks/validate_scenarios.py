#!/usr/bin/env python
"""Validate a ``BENCH_scenarios.json`` artifact a scenario-bench run wrote.

Checks the artifact envelope (schema version, suite, gate/directions
consistency) and then the matrix content a healthy run must contain:

* every grid combination produced exactly one cell, and every cell
  carries the full outcome/latency key set;
* outcome accounting balances per cell
  (``offered == completed + rejected + expired + failures``) and the
  rates sit in ``[0, 1]``;
* cells of the same scenario replayed the *identical* trace (equal
  SHA-256 digests), and the digests match the artifact's ``traces``
  summary;
* every gated metric exists in ``metrics`` with a direction;
* ``--min-cells`` (optional) guards against a silently shrunken grid.

Exit code 0 on success; a failed check raises with a description.

Usage::

    python benchmarks/validate_scenarios.py BENCH_scenarios.json \
        --min-cells 8
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

EXPECTED_SCHEMA_VERSION = 3
EXPECTED_SUITE = "scenarios"

#: Keys every matrix cell must carry (grid coordinates + measurements).
CELL_KEYS = frozenset(
    {
        "scenario",
        "policy",
        "backend",
        "frontdoor",
        "replicas",
        "queue_depth",
        "trace_sha256",
        "cache_hit_rate",
        "mode",
        "offered",
        "completed",
        "rejected",
        "expired",
        "failures",
        "deadline_misses",
        "elapsed_s",
        "max_submit_lag_s",
        "rps",
        "goodput_rps",
        "rejection_rate",
        "deadline_miss_rate",
        "latency_ms",
    }
)

_RATES = ("rejection_rate", "deadline_miss_rate")


def _fail(message: str) -> None:
    raise SystemExit(f"validate_scenarios: FAIL: {message}")


def _check_envelope(artifact: dict) -> None:
    if artifact.get("schema_version") != EXPECTED_SCHEMA_VERSION:
        _fail(
            f"schema_version {artifact.get('schema_version')!r}, "
            f"expected {EXPECTED_SCHEMA_VERSION}"
        )
    if artifact.get("suite") != EXPECTED_SUITE:
        _fail(f"suite {artifact.get('suite')!r}, expected {EXPECTED_SUITE!r}")
    for key in ("metrics", "gate", "directions", "grid", "workload", "traces", "cells"):
        if key not in artifact:
            _fail(f"artifact missing top-level key {key!r}")
    metrics = artifact["metrics"]
    directions = artifact["directions"]
    for name in artifact["gate"]:
        if name not in metrics:
            _fail(f"gated metric {name!r} absent from metrics")
        if directions.get(name) not in ("higher", "lower"):
            _fail(f"gated metric {name!r} has no valid direction")


def _check_cells(artifact: dict, min_cells: int) -> None:
    cells = artifact["cells"]
    if len(cells) < min_cells:
        _fail(f"{len(cells)} cells, expected at least {min_cells}")
    grid = artifact["grid"]
    expected = 1
    for axis in ("scenarios", "policies", "backends", "frontdoors", "replicas", "queue_depths"):
        expected *= len(grid[axis])
    if len(cells) != expected:
        _fail(f"{len(cells)} cells for a {expected}-combination grid")

    seen = set()
    digests: dict[str, str] = {}
    for i, cell in enumerate(cells):
        missing = CELL_KEYS - set(cell)
        if missing:
            _fail(f"cell {i} missing keys {sorted(missing)}")
        coord = (
            cell["scenario"],
            cell["policy"],
            cell["backend"],
            cell["frontdoor"],
            cell["replicas"],
            cell["queue_depth"],
        )
        if coord in seen:
            _fail(f"duplicate cell for grid combination {coord}")
        seen.add(coord)

        accounted = (
            cell["completed"] + cell["rejected"] + cell["expired"] + cell["failures"]
        )
        if cell["offered"] != accounted:
            _fail(
                f"cell {coord}: offered={cell['offered']} but outcomes sum "
                f"to {accounted}"
            )
        for rate in _RATES:
            if not 0.0 <= cell[rate] <= 1.0:
                _fail(f"cell {coord}: {rate}={cell[rate]} outside [0, 1]")

        prior = digests.setdefault(cell["scenario"], cell["trace_sha256"])
        if cell["trace_sha256"] != prior:
            _fail(
                f"scenario {cell['scenario']!r} cells replayed different "
                f"traces ({prior[:12]} vs {cell['trace_sha256'][:12]})"
            )

    for scenario, summary in artifact["traces"].items():
        if scenario in digests and summary["sha256"] != digests[scenario]:
            _fail(
                f"traces summary digest for {scenario!r} does not match "
                f"its cells"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", type=Path, help="BENCH_scenarios.json path")
    parser.add_argument(
        "--min-cells",
        type=int,
        default=1,
        help="minimum number of matrix cells the artifact must contain",
    )
    args = parser.parse_args(argv)

    artifact = json.loads(args.artifact.read_text(encoding="utf-8"))
    _check_envelope(artifact)
    _check_cells(artifact, args.min_cells)
    print(
        f"validate_scenarios: OK: {len(artifact['cells'])} cells, "
        f"{len(artifact['gate'])} gated metrics, "
        f"{len(artifact['traces'])} scenario traces"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
