"""Figure 7 — encoding and decoding performance of the three approaches.

* Figure 7a (encoding): DeepSZ's encoding cost is the assessment forward
  passes plus compression; Deep Compression and Weightless additionally pay
  retraining epochs to recover the accuracy their quantization destroys.  The
  paper normalises per network; the shape to reproduce is
  ``DeepSZ < Deep Compression < Weightless``.
* Figure 7b (decoding): the per-phase breakdown (lossless + SZ + CSR
  reconstruction for DeepSZ; codebook lookup + CSR for Deep Compression;
  Bloomier probing for Weightless).  The shape: DeepSZ and Deep Compression
  decode in the same ballpark, Weightless is far slower because every matrix
  position is probed through four hash functions.

The parallel-assessment scaling experiment (the paper's four V100s) is
covered by ``bench_fig7_parallel_assessment_scaling``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import write_result
from repro.analysis import render_table
from repro.baselines import (
    DeepCompressionConfig,
    DeepCompressionEncoder,
    WeightlessConfig,
    WeightlessEncoder,
)
from repro.core.assessment import AssessmentConfig
from repro.nn import zoo
from repro.nn.train import SGDConfig, SGDTrainer
from repro.parallel import AssessmentTask, ParallelAssessment, run_tasks_serial

#: Retraining epochs charged to the baselines.  The paper characterises the
#: retraining-based methods as costing O(5·M)–O(10·M) (5–10 epochs) for Deep
#: Compression and more for Weightless (its published VGG-16 encoding time
#: corresponds to tens of epochs); 6 and 12 epochs are the midpoints we charge
#: here.  DeepSZ is charged its *measured* encoding time (assessment +
#: optimization + compression), with no retraining.
RETRAIN_EPOCHS = {"deep-compression": 6, "weightless": 12}
MODEL = "alexnet-mini"


def bench_fig7a_encoding_time(benchmark, zoo_pruned, deepsz_results):
    pruned, train, test = zoo_pruned(MODEL)
    deepsz = deepsz_results(MODEL)
    deepsz_seconds = deepsz.encoding_seconds

    # Measure the cost of one masked retraining epoch once, then charge each
    # baseline its epoch count plus its measured quantization/encoding cost.
    start = time.perf_counter()
    SGDTrainer(SGDConfig(epochs=1, learning_rate=0.01, seed=1)).train(
        pruned.network.clone(), train.images, train.labels, masks=pruned.masks
    )
    epoch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    DeepCompressionEncoder(DeepCompressionConfig(bits=5)).encode_network(pruned.sparse_layers)
    dc_encode_seconds = time.perf_counter() - start
    dc_seconds = dc_encode_seconds + RETRAIN_EPOCHS["deep-compression"] * epoch_seconds

    wl_encoder = WeightlessEncoder(WeightlessConfig(seed=2))
    target = wl_encoder.pick_target_layer(pruned.sparse_layers)
    start = time.perf_counter()
    wl_encoder.encode_layer(target, pruned.sparse_layers[target])
    wl_encode_seconds = time.perf_counter() - start
    wl_seconds = wl_encode_seconds + RETRAIN_EPOCHS["weightless"] * epoch_seconds

    rows = [
        ["DeepSZ (measured, no retraining)", f"{deepsz_seconds:.1f} s", "1.00"],
        [
            f"Deep Compression (+{RETRAIN_EPOCHS['deep-compression']} retrain epochs)",
            f"{dc_seconds:.1f} s",
            f"{dc_seconds / deepsz_seconds:.2f}",
        ],
        [
            f"Weightless (+{RETRAIN_EPOCHS['weightless']} retrain epochs)",
            f"{wl_seconds:.1f} s",
            f"{wl_seconds / deepsz_seconds:.2f}",
        ],
    ]
    text = render_table(
        ["method", "encoding time", "normalized to DeepSZ"],
        rows,
        title=f"Figure 7a — encoding time on {zoo.PAPER_NAME[MODEL]} (mini); "
        f"one retraining epoch measured at {epoch_seconds:.1f} s",
    )
    write_result("fig7a_encoding_time", text)

    # The paper's ordering: DeepSZ encodes faster than both retraining-based
    # baselines (1.8x-4.0x in the paper), and Weightless is the slowest.
    assert dc_seconds > deepsz_seconds * 0.8
    assert wl_seconds > deepsz_seconds
    assert wl_seconds > dc_seconds

    # Timed kernel for pytest-benchmark: DeepSZ's Step 4 alone (compression of
    # all layers at the chosen bounds), the part that is pure encoding work.
    from repro.core.encoder import DeepSZEncoder

    encoder = DeepSZEncoder()
    benchmark(
        lambda: encoder.encode(MODEL, pruned.sparse_layers, deepsz.plan.error_bounds)
    )


def bench_fig7b_decoding_breakdown(benchmark):
    """Decode-time comparison at (scaled) paper layer dimensions.

    The decode path needs no accuracy measurement, so it runs on synthetic
    trained-like AlexNet fc-layers at REPRO_SCALE dimensions — large enough
    that the Figure 7b effect (Weightless probing every matrix position with
    four hash functions) dominates its decode time, exactly as in the paper.
    """
    from common import scale_factor
    from repro.core.encoder import DeepSZEncoder
    from repro.core.decoder import DeepSZDecoder
    from repro.nn.models import synthesize_fc_weights
    from repro.nn.specs import PAPER_PRUNING_RATIOS
    from repro.pruning import encode_sparse, prune_weights

    scale = max(scale_factor(), 0.15)
    bounds = {"fc6": 7e-3, "fc7": 7e-3, "fc8": 5e-3}
    sparse_layers = {}
    for layer, eb in bounds.items():
        weights = synthesize_fc_weights(
            "AlexNet", layer, seed=hash((layer, "fig7b")) % 2**31, scale=scale
        )
        pruned_w, _ = prune_weights(weights, PAPER_PRUNING_RATIOS["AlexNet"][layer])
        sparse_layers[layer] = encode_sparse(pruned_w)

    deepsz_model = DeepSZEncoder().encode("AlexNet", sparse_layers, bounds)

    # DeepSZ decode (timed kernel) and its per-phase breakdown.
    decoder = DeepSZDecoder()
    decoded = benchmark(lambda: decoder.decode(deepsz_model))
    deepsz_phases = decoded.timing.as_dict()

    # Deep Compression decode.
    dc = DeepCompressionEncoder(DeepCompressionConfig(bits=5))
    dc_payloads = dc.encode_network(sparse_layers)
    _, dc_timing = dc.decode_network(dc_payloads)

    # Weightless decode (largest layer only).
    wl = WeightlessEncoder(WeightlessConfig(seed=3))
    target = wl.pick_target_layer(sparse_layers)
    wl_payload = wl.encode_layer(target, sparse_layers[target]).payload
    from repro.utils.timing import TimingBreakdown

    wl_timing = TimingBreakdown()
    wl.decode_layer(wl_payload, wl_timing)

    def fmt(timing: dict) -> str:
        return ", ".join(f"{k} {v * 1e3:.1f} ms" for k, v in timing.items())

    rows = [
        ["DeepSZ", f"{sum(deepsz_phases.values()) * 1e3:.1f} ms", fmt(deepsz_phases)],
        ["Deep Compression", f"{dc_timing.total * 1e3:.1f} ms", fmt(dc_timing.as_dict())],
        ["Weightless", f"{wl_timing.total * 1e3:.1f} ms", fmt(wl_timing.as_dict())],
    ]
    text = render_table(
        ["method", "total decode time", "breakdown"],
        rows,
        title=f"Figure 7b — decoding time breakdown, AlexNet fc-layers at scale {scale}",
    )
    write_result("fig7b_decoding_breakdown", text)

    # Shape: Weightless decoding is the slowest by a wide margin (it probes
    # every matrix position), and DeepSZ's decode is not slower than
    # Weightless; the paper reports 4.5x-6.2x vs the second-best method.
    deepsz_total = sum(deepsz_phases.values())
    assert wl_timing.total > deepsz_total
    assert wl_timing.total > dc_timing.total * 0.8
    assert set(deepsz_phases) == {"lossless", "sz", "csr"}


def bench_fig7_huffman_decode_throughput(benchmark):
    """Decode throughput of the vectorised Huffman kernel.

    The Figure 7b "sz" phase is dominated by Huffman decoding; the batched
    NumPy table-probe kernel replaced a per-symbol Python loop, so this
    benchmark tracks symbols/second on a residual-like stream (the
    distribution the SZ pipeline actually feeds the codec).
    """
    from repro.sz.huffman import HuffmanCodec

    rng = np.random.default_rng(7)
    symbols = np.rint(rng.standard_normal(2_000_000) * 3).astype(np.int64)
    codec = HuffmanCodec()
    blob = codec.encode(symbols)

    start = time.perf_counter()
    out = codec.decode(blob)
    seconds = time.perf_counter() - start
    assert np.array_equal(out, symbols)
    throughput = symbols.size / max(seconds, 1e-9)

    rows = [
        ["symbols", f"{symbols.size:,}"],
        ["encoded bytes", f"{len(blob):,}"],
        ["decode wall-clock", f"{seconds:.3f} s"],
        ["throughput", f"{throughput / 1e6:.2f} Msymbols/s"],
    ]
    text = render_table(
        ["metric", "value"],
        rows,
        title="Huffman decode throughput (vectorised table-probe kernel)",
    )
    write_result("fig7_huffman_decode_throughput", text)

    benchmark(lambda: codec.decode(blob))


def bench_fig7_parallel_assessment_scaling(benchmark, zoo_pruned):
    """The multi-GPU claim: assessment tests are embarrassingly parallel."""
    pruned, _, test = zoo_pruned("lenet-300-100")
    images, labels = test.images[:400], test.labels[:400]
    config = AssessmentConfig(expected_accuracy_loss=0.05)
    tasks = [
        AssessmentTask(layer=layer, error_bound=eb)
        for layer in pruned.sparse_layers
        for eb in (1e-3, 3e-3, 1e-2, 3e-2)
    ]

    start = time.perf_counter()
    serial = run_tasks_serial(pruned.network, pruned.sparse_layers, images, labels, tasks, config)
    serial_seconds = time.perf_counter() - start

    runner = ParallelAssessment(workers=2)
    start = time.perf_counter()
    parallel = runner.run(pruned.network, pruned.sparse_layers, images, labels, tasks, config)
    parallel_seconds = time.perf_counter() - start

    rows = [
        ["serial (1 worker)", f"{serial_seconds:.2f} s", "1.00"],
        ["process pool (2 workers)", f"{parallel_seconds:.2f} s", f"{serial_seconds / max(parallel_seconds, 1e-9):.2f}"],
    ]
    text = render_table(
        ["configuration", "wall-clock", "speedup"],
        rows,
        title="Figure 7a (companion) — parallel error-bound assessment "
        f"({len(tasks)} candidate tests on LeNet-300-100)",
    )
    write_result("fig7_parallel_scaling", text)

    # Results must be identical regardless of the execution mode.
    for (l1, e1, a1, s1), (l2, e2, a2, s2) in zip(serial, parallel):
        assert (l1, e1) == (l2, e2)
        assert abs(a1 - a2) < 1e-12
        assert s1 == s2

    benchmark(lambda: run_tasks_serial(
        pruned.network, pruned.sparse_layers, images[:100], labels[:100], tasks[:2], config
    ))
