"""Tables 2a–2d — per-layer compression statistics for the four networks.

Two complementary reproductions:

* ``bench_table2_pipeline_*`` runs the real DeepSZ pipeline (assessment +
  optimization + encoding) on the trained mini networks and reports the same
  columns as the paper: original size, pruning ratio, CSR (two-array) size,
  and DeepSZ-compressed size, per layer and overall.
* ``bench_table2_paper_scale_sizes`` repeats the *size arithmetic* at the
  paper's real layer dimensions (scaled by REPRO_SCALE) using the paper's
  published per-layer error bounds, so the 46x / 116x overall ratios can be
  checked without a GPU-scale accuracy run.
"""

from __future__ import annotations

import pytest

from common import BENCH_MODELS, scale_factor, write_result
from repro.analysis import compression_stats_table, render_table
from repro.core.encoder import DeepSZEncoder
from repro.nn import zoo
from repro.nn.models import synthesize_fc_weights
from repro.nn.specs import PAPER_PRUNING_RATIOS
from repro.pruning import encode_sparse, prune_weights

#: Final per-layer error bounds the paper reports in Section 5.2.2.
PAPER_ERROR_BOUNDS = {
    "LeNet-300-100": {"ip1": 2e-2, "ip2": 3e-2, "ip3": 4e-2},
    "LeNet-5": {"ip1": 3e-2, "ip2": 8e-2},
    "AlexNet": {"fc6": 7e-3, "fc7": 7e-3, "fc8": 5e-3},
    "VGG-16": {"fc6": 1e-2, "fc7": 9e-3, "fc8": 5e-3},
}

#: Overall fc-layer compression ratios reported in Tables 2a–2d.
PAPER_OVERALL_RATIOS = {
    "LeNet-300-100": 55.8,
    "LeNet-5": 57.3,
    "AlexNet": 45.5,
    "VGG-16": 115.6,
}


@pytest.mark.parametrize("model", BENCH_MODELS)
def bench_table2_pipeline(benchmark, deepsz_results, model):
    """Per-layer stats from the real pipeline on the trained mini network."""
    result = benchmark.pedantic(lambda: deepsz_results(model), rounds=1, iterations=1)

    per_layer = {
        name: {
            "original_bytes": r.original_bytes,
            "pruning_ratio": r.pruning_ratio,
            "csr_bytes": r.csr_bytes,
            "compressed_bytes": r.compressed_bytes,
            "error_bound": r.error_bound,
        }
        for name, r in result.layer_reports.items()
    }
    text = compression_stats_table(zoo.PAPER_NAME[model] + " (mini)", per_layer)
    text += (
        f"\noverall: CSR {result.csr_compression_ratio:.1f}x, "
        f"DeepSZ {result.compression_ratio:.1f}x, "
        f"top-1 loss {result.top1_loss * 100:.2f}%"
    )
    write_result(f"table2_pipeline_{model}", text)

    # Shape checks: DeepSZ beats the CSR representation on every layer and
    # overall, and the overall ratio is several times the pruning-only ratio.
    for r in result.layer_reports.values():
        assert r.compressed_bytes < r.csr_bytes < r.original_bytes
    assert result.compression_ratio > result.csr_compression_ratio * 1.5


def bench_table2_paper_scale_sizes(benchmark):
    """Size arithmetic at (scaled) paper dimensions with the paper's error bounds.

    The two LeNets are only ~1 MB of fc weights, so they always run at full
    paper dimensions; the REPRO_SCALE shrink factor is applied to the
    ImageNet-class networks only (their fc-layers are hundreds of MB).
    """
    scale = scale_factor()
    encoder = DeepSZEncoder()
    summary_rows = []

    def build_all():
        results = {}
        for network, bounds in PAPER_ERROR_BOUNDS.items():
            network_scale = 1.0 if network.startswith("LeNet") else scale
            sparse_layers = {}
            for layer, eb in bounds.items():
                weights = synthesize_fc_weights(
                    network, layer, seed=hash((network, layer, "t2")) % 2**31, scale=network_scale
                )
                keep = PAPER_PRUNING_RATIOS[network][layer]
                pruned, _ = prune_weights(weights, keep)
                sparse_layers[layer] = encode_sparse(pruned)
            results[network] = (sparse_layers, encoder.encode(network, sparse_layers, bounds))
        return results

    results = benchmark.pedantic(build_all, rounds=1, iterations=1)

    for network, (sparse_layers, model) in results.items():
        dense = sum(s.dense_bytes for s in sparse_layers.values())
        csr = sum(s.packed_bytes for s in sparse_layers.values())
        ratio = dense / model.compressed_bytes
        summary_rows.append(
            [
                network,
                f"{dense / 1e6:.2f} MB",
                f"{dense / csr:.1f}x",
                f"{ratio:.1f}x",
                f"{PAPER_OVERALL_RATIOS[network]:.1f}x",
            ]
        )
        # Shape check: within a factor ~2 of the paper's overall ratio (the
        # synthetic weight distribution is not the trained one, so exact
        # agreement is not expected), and always better than pruning alone.
        assert ratio > dense / csr
        assert ratio > PAPER_OVERALL_RATIOS[network] * 0.4

    text = render_table(
        ["network", "fc dense size (scaled)", "CSR ratio", "DeepSZ ratio", "paper ratio"],
        summary_rows,
        title=f"Table 2 (paper-scale arithmetic, scale factor {scale})",
    )
    write_result("table2_paper_scale", text)
