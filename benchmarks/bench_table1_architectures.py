"""Table 1 — architectures of the evaluated networks and their storage breakdown.

Reproduces: fc-layer shapes, total parameter storage, the fc share of storage
(89.4%–100%), and the conv-vs-fc forward-time asymmetry ("conv layers take
~95% of the compute but ~5% of the storage").
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import write_result
from repro.analysis import architecture_table, render_table
from repro.nn import models
from repro.nn.layers import Conv2D, Dense
from repro.nn.specs import all_specs


def bench_table1_storage_breakdown(benchmark):
    """Render Table 1 from the paper-scale specs and check the fc dominance."""
    specs = benchmark(all_specs)
    text = architecture_table(specs)
    write_result("table1_architectures", text)

    by_name = {s.name: s for s in specs}
    # The paper's fc storage shares: 100%, ~95%, 96.1%, 89.4%.
    assert by_name["LeNet-300-100"].fc_fraction == 1.0
    assert by_name["LeNet-5"].fc_fraction > 0.9
    assert abs(by_name["AlexNet"].fc_fraction - 0.961) < 0.01
    assert abs(by_name["VGG-16"].fc_fraction - 0.894) < 0.01
    # Totals: 1.1 MB / 1.7 MB / 243.9 MB / 553.4 MB.
    assert abs(by_name["AlexNet"].total_bytes / 1e6 - 243.9) < 5
    assert abs(by_name["VGG-16"].total_bytes / 1e6 - 553.4) < 10


def bench_table1_forward_time_split(benchmark):
    """Conv layers dominate forward time while fc layers dominate storage."""
    net = models.alexnet_mini(seed=0)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 3, 32, 32)).astype(np.float32)

    def forward():
        return net.forward(x)

    benchmark(forward)

    # Per-layer timing of one forward pass.
    conv_time = fc_time = 0.0
    out = x
    for layer in net.layers:
        start = time.perf_counter()
        out = layer.forward(out)
        elapsed = time.perf_counter() - start
        if isinstance(layer, Conv2D):
            conv_time += elapsed
        elif isinstance(layer, Dense):
            fc_time += elapsed

    conv_bytes = sum(l.parameter_bytes() for l in net.layers if isinstance(l, Conv2D))
    fc_bytes = sum(l.parameter_bytes() for l in net.layers if isinstance(l, Dense))

    rows = [
        ["conv layers", f"{conv_time * 1e3:.1f} ms", f"{conv_bytes / 1e6:.2f} MB"],
        ["fc layers", f"{fc_time * 1e3:.1f} ms", f"{fc_bytes / 1e6:.2f} MB"],
    ]
    text = render_table(
        ["layer group", "fwd time (batch of 32)", "parameter storage"],
        rows,
        title="Table 1 (companion) — compute vs storage split, AlexNet-mini",
    )
    write_result("table1_forward_split", text)

    # The paper's asymmetry: conv dominates time, fc dominates storage.
    assert conv_time > fc_time
    assert fc_bytes > conv_bytes
