#!/usr/bin/env python
"""Validate observability artifacts a gateway-bench run produced.

Checks a Prometheus text dump (``--metrics``) with the strict line-format
parser and/or a trace JSONL (``--trace``) against the span schema, then
asserts the *content* a healthy serving run must have produced:

* every required gateway series is present, with at least one completed
  request counted;
* every trace is a single-rooted ``gateway.request`` tree whose parent
  pointers all resolve, covering admission -> shard -> queue -> batch ->
  forward -> decode;
* ``--expect-cache``: the run exercised the weight cache (thread-backend
  replicas publish per-model cache hit/miss counters);
* ``--expect-process-spans``: replica spans were recorded by worker
  *processes* — their pid differs from the gateway-side root's pid.

Exit code 0 on success; a failed check raises with a description.

Usage::

    PYTHONPATH=src python benchmarks/validate_obs.py \
        --metrics /tmp/obs.prom --trace /tmp/obs.jsonl --expect-cache
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.obs.metrics import parse_prometheus
from repro.obs.trace import load_trace, validate_span

#: Series every gateway run publishes regardless of backend.
REQUIRED_SERIES = (
    "repro_gateway_requests_total",
    "repro_gateway_queue_depth",
    "repro_gateway_latency_seconds_bucket",
    "repro_gateway_latency_seconds_count",
    "repro_gateway_latency_seconds_sum",
    "repro_replica_inflight",
    "repro_replica_dispatched_total",
    "repro_decode_stage_total",
    "repro_decode_stage_seconds_total",
)

GATEWAY_SPANS = ("gateway.request", "gateway.admission", "gateway.shard")
REPLICA_SPANS = ("replica.queue", "replica.batch", "replica.forward", "replica.decode")


def check_metrics(path: Path, *, expect_cache: bool, expect_process: bool) -> int:
    series = parse_prometheus(path.read_text())
    missing = [name for name in REQUIRED_SERIES if name not in series]
    if missing:
        raise SystemExit(f"{path}: missing required series: {missing}")
    completed = sum(
        value
        for labels, value in series["repro_gateway_requests_total"]["samples"]
        if labels.get("outcome") == "completed"
    )
    if completed <= 0:
        raise SystemExit(f"{path}: no completed requests counted")
    if expect_cache:
        for name in ("repro_cache_events_total", "repro_cache_resident_bytes"):
            if name not in series:
                raise SystemExit(f"{path}: missing cache series {name}")
        events = sum(
            value for _labels, value in series["repro_cache_events_total"]["samples"]
        )
        if events <= 0:
            raise SystemExit(f"{path}: cache series present but no events counted")
    if expect_process:
        for name in ("repro_worker_stage_total", "repro_worker_stage_seconds_total"):
            if name not in series:
                raise SystemExit(f"{path}: missing worker-stage series {name}")
        stages = {
            labels.get("stage")
            for labels, _value in series["repro_worker_stage_total"]["samples"]
        }
        if "forward" not in stages:
            raise SystemExit(f"{path}: worker-stage series lack 'forward': {stages}")
    print(f"{path}: {len(series)} series ok ({int(completed)} completed requests)")
    return len(series)


def check_trace(path: Path, *, expect_process: bool) -> int:
    records = load_trace(path)
    if not records:
        raise SystemExit(f"{path}: trace file contains no spans")
    traces: dict = {}
    for record in records:
        validate_span(record)
        traces.setdefault(record["trace_id"], []).append(record)
    stitched = 0
    for trace_id, spans in traces.items():
        roots = [s for s in spans if s["parent_id"] is None]
        if len(roots) != 1 or roots[0]["name"] != "gateway.request":
            raise SystemExit(
                f"{path}: trace {trace_id} must have exactly one gateway.request "
                f"root, got {[r['name'] for r in roots]}"
            )
        ids = {s["span_id"] for s in spans}
        dangling = [s["name"] for s in spans if s["parent_id"] not in ids | {None}]
        if dangling:
            raise SystemExit(f"{path}: trace {trace_id} has dangling parents: {dangling}")
        names = {s["name"] for s in spans}
        missing = [n for n in GATEWAY_SPANS + REPLICA_SPANS if n not in names]
        if missing:
            raise SystemExit(f"{path}: trace {trace_id} missing spans: {missing}")
        if expect_process:
            root_pid = roots[0]["pid"]
            worker_pids = {
                s["pid"] for s in spans if s["name"] in REPLICA_SPANS
            }
            if not worker_pids or root_pid in worker_pids:
                raise SystemExit(
                    f"{path}: trace {trace_id} replica spans should come from "
                    f"worker processes (root pid {root_pid}, replica pids "
                    f"{sorted(worker_pids)})"
                )
            stitched += 1
    suffix = f", {stitched} stitched across processes" if expect_process else ""
    print(f"{path}: {len(records)} spans in {len(traces)} full trees ok{suffix}")
    return len(traces)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--metrics", type=Path, help="Prometheus text dump to validate")
    parser.add_argument("--trace", type=Path, help="span JSONL to validate")
    parser.add_argument(
        "--expect-cache", action="store_true",
        help="require per-model cache hit/miss series (thread-backend runs)",
    )
    parser.add_argument(
        "--expect-process-spans", action="store_true",
        help="require replica spans from worker processes (process-backend runs)",
    )
    args = parser.parse_args(argv)
    if not args.metrics and not args.trace:
        parser.error("nothing to validate: pass --metrics and/or --trace")
    if args.metrics:
        check_metrics(
            args.metrics,
            expect_cache=args.expect_cache,
            expect_process=args.expect_process_spans,
        )
    if args.trace:
        check_trace(args.trace, expect_process=args.expect_process_spans)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
