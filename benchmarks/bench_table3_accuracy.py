"""Table 3 — inference accuracy of the DeepSZ-compressed networks.

For every network: top-1 / top-5 accuracy of the (pruned) baseline and of the
DeepSZ-compressed model, the compressed fc-layer size, and the compression
ratio.  The paper's claim: up to ~0.3% top-1 loss (within the user budget)
while compressing the fc-layers by 46x–116x.
"""

from __future__ import annotations

import pytest

from common import BENCH_MODELS, write_result
from repro.analysis import render_table
from repro.nn import zoo


def bench_table3_accuracy_of_compressed_networks(benchmark, deepsz_results):
    results = benchmark.pedantic(
        lambda: {model: deepsz_results(model) for model in BENCH_MODELS},
        rounds=1,
        iterations=1,
    )

    rows = []
    for model, result in results.items():
        rows.append(
            [
                zoo.PAPER_NAME[model] + " baseline",
                f"{result.baseline_accuracy[1] * 100:.2f}%",
                f"{result.baseline_accuracy.get(5, 0) * 100:.2f}%",
                f"{result.original_fc_bytes / 1e6:.3f} MB",
                "-",
            ]
        )
        rows.append(
            [
                zoo.PAPER_NAME[model] + " DeepSZ",
                f"{result.compressed_accuracy[1] * 100:.2f}%",
                f"{result.compressed_accuracy.get(5, 0) * 100:.2f}%",
                f"{result.compressed_fc_bytes / 1e6:.3f} MB",
                f"{result.compression_ratio:.1f}x",
            ]
        )

    text = render_table(
        ["network", "top-1", "top-5", "fc-layers size", "ratio"],
        rows,
        title="Table 3 — accuracy of DeepSZ-compressed networks (mini models, synthetic data)",
    )
    write_result("table3_accuracy", text)

    for model, result in results.items():
        budget = result.model.expected_accuracy_loss
        # Accuracy loss stays within the optimizer's budget plus measurement
        # noise (the assessment runs on a 300-sample subset, so the full-set
        # measurement can wobble by a few samples).
        slack = 0.01
        assert result.top1_loss <= budget + slack, model
        # Top-5 accuracy moves by no more than it did for top-1 (the paper
        # even sees top-5 improve slightly for AlexNet).
        assert result.top5_loss <= budget + slack
        # Compression is far beyond what pruning alone achieved.
        assert result.compression_ratio >= 20
