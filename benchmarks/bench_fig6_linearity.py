"""Figure 6 — approximate linearity of the accuracy loss (Equation 1).

Random combinations of per-layer error bounds are applied jointly; the summed
per-layer degradations (the x-axis of Figure 6) are compared with the measured
joint degradation (the y-axis).  Below the ~2% regime the two track each
other, which is what lets Algorithm 2 treat the per-layer losses as additive.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import write_result
from repro.analysis import render_table
from repro.core.accuracy_model import linearity_probe


def bench_fig6_linearity_of_accuracy_loss(benchmark, zoo_pruned):
    pruned, _, test = zoo_pruned("lenet-300-100")

    def probe():
        return linearity_probe(
            pruned.network,
            pruned.sparse_layers,
            test.images,
            test.labels,
            error_bound_grid=(5e-3, 1e-2, 2e-2, 3e-2, 5e-2),
            samples=10,
            seed=17,
        )

    result = benchmark.pedantic(probe, rounds=1, iterations=1)

    rows = [
        [f"{e * 100:.2f}%", f"{a * 100:.2f}%", f"{abs(e - a) * 100:.2f}%"]
        for e, a in zip(result.expected_losses, result.actual_losses)
    ]
    text = render_table(
        ["expected loss (sum of layers)", "actual loss (joint)", "|deviation|"],
        rows,
        title=(
            "Figure 6 — expected vs actual accuracy loss "
            f"(correlation {result.correlation:.3f}, max deviation "
            f"{result.max_deviation * 100:.2f}%)"
        ),
    )
    write_result("fig6_linearity", text)

    # The additive model holds to within a few test-set quanta in this regime.
    assert result.max_deviation <= 0.04
    assert result.mean_absolute_deviation <= 0.02
    # And when there is real variation, predictions track measurements.
    if np.std(result.expected_losses) > 1e-4:
        assert result.correlation > 0.5
