"""Scenario×policy benchmark matrix over the serving gateways.

Replays deterministic workload traces from :mod:`repro.sim` (see
``docs/scenarios.md`` for the catalog) against every cell of a
policy grid, open loop: arrivals are submitted at their *scheduled*
times and latency is measured from the schedule, so a stalled gateway
accumulates blame instead of silently pausing the load generator
(coordinated omission — see ``docs/benchmarking.md``).

Every cell of a scenario replays the **identical** rendered trace
(asserted via the trace digest), so cell-to-cell deltas measure the
policy/backend/front-door choice, not sampling noise.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks trace duration and rate but
keeps the grid axes identical, so the metric keys the regression gate
reads are the same in both modes.

Results land in ``benchmarks/results/bench_scenarios.{txt,json}``; the
JSON carries the pre-flattened ``metrics``/``gate``/``directions`` that
``run_all.py`` lifts into the ``BENCH_scenarios.json`` artifact.
"""

from __future__ import annotations

import os

# Pin BLAS threading before numpy import: replica parallelism is the
# experiment; oversubscribed BLAS pools are noise.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import json  # noqa: E402

from common import RESULTS_DIR, write_result  # noqa: E402
from repro.analysis import render_table  # noqa: E402
from repro.sim.matrix import MatrixConfig, flatten_metrics, run_matrix  # noqa: E402


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _config(smoke: bool) -> MatrixConfig:
    # The grid axes are mode-independent (stable metric keys for the
    # regression gate); smoke only shortens the traces.
    return MatrixConfig(
        scenarios=("steady", "burst"),
        policies=("round-robin", "least-loaded"),
        backends=("thread",),
        frontdoors=("sync", "async"),
        replicas=(2,),
        queue_depths=(64,),
        models=3,
        tenants=8,
        duration_s=0.8 if smoke else 3.0,
        rate_rps=120.0 if smoke else 200.0,
        deadline_ms=80.0,
        seed=0,
    )


def bench_scenarios() -> None:
    smoke = _smoke()
    config = _config(smoke)
    result = run_matrix(
        config, progress=lambda label: print(f"  cell {label}", flush=True)
    )
    cells = result["cells"]

    # Sanity: every cell made progress, and every cell of a scenario
    # replayed the identical trace (the whole point of the harness).
    for cell in cells:
        assert cell["completed"] > 0, f"cell produced no completions: {cell}"
        assert cell["failures"] == 0, f"cell saw hard failures: {cell}"
    digests = {}
    for cell in cells:
        digests.setdefault(cell["scenario"], set()).add(cell["trace_sha256"])
    for scenario, seen in digests.items():
        assert len(seen) == 1, f"{scenario} cells replayed different traces: {seen}"

    metrics, gate, directions = flatten_metrics(result)
    results = {
        "mode": "smoke" if smoke else "full",
        "grid": result["grid"],
        "workload": result["workload"],
        "traces": result["traces"],
        "cells": cells,
        "metrics": metrics,
        "gate": gate,
        "directions": directions,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "bench_scenarios.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )

    rows = []
    for cell in cells:
        cache = cell["cache_hit_rate"]["overall"]
        rows.append(
            [
                cell["scenario"],
                cell["policy"],
                cell["frontdoor"],
                f"{cell['rps']:,.0f} req/s",
                f"{cell['goodput_rps']:,.0f} req/s",
                f"{cell['latency_ms']['p50']:.1f} ms",
                f"{cell['latency_ms']['p99']:.1f} ms",
                f"{cell['rejection_rate']:.1%}",
                f"{cell['deadline_miss_rate']:.1%}",
                "n/a" if cache is None else f"{cache:.0%}",
            ]
        )
    text = render_table(
        ["scenario", "policy", "door", "rps", "goodput",
         "p50", "p99", "rej", "miss", "cache"],
        rows,
        title=(
            f"scenario x policy matrix ({results['mode']}): "
            f"{config.duration_s:.1f}s @ {config.rate_rps:.0f} rps nominal, "
            f"{config.models} models, r{config.replicas[0]}, "
            f"q{config.queue_depths[0]}, deadline {config.deadline_ms:.0f} ms"
        ),
    )
    print(text)
    write_result("bench_scenarios", text)


if __name__ == "__main__":
    bench_scenarios()
