"""Assessment-engine benchmark: parallel + activation reuse vs serial Step 2.

Step 2 (error-bound assessment) is the hottest remaining path of the
pipeline: every candidate ``(layer, error bound)`` pays a compress/decompress
and a test-set forward pass.  This benchmark times Algorithm 1 on a synthetic
trained LeNet-300-100 workload two ways:

* **serial baseline** — the historical path: one candidate at a time through
  :func:`evaluate_candidate`, full forward pass and a fresh index-array
  lossless fit per candidate;
* **parallel + reuse** — the :class:`AssessmentEngine`: candidates fanned
  out over all cores, each resuming from the perturbed layer's checkpointed
  activations, index sizes hoisted to once per layer.

The two runs must produce *identical* assessment points and identical
Algorithm 2 optimizer plans (asserted below — the engine trims speculative
results so its output is bit-for-bit the serial Algorithm 1 answer), and the
engine must be at least ``REPRO_ASSESS_MIN_SPEEDUP`` times faster (default
2.0; CI relaxes it to 1.2 because the hosted runners have two cores and the
activation-reuse share shrinks when BLAS has no parallel headroom).

Results land in ``benchmarks/results/bench_assessment.{txt,json}``.
"""

from __future__ import annotations

import json
import os
import time

from common import RESULTS_DIR, write_result
from repro.analysis import format_bytes, render_table
from repro.core.assessment import AssessmentConfig, assess_network, evaluate_candidate
from repro.core.optimizer import OptimizerConfig, optimize_error_bounds
from repro.data import mnist_like, train_test_split
from repro.nn import SGDConfig, SGDTrainer, models
from repro.nn.specs import PAPER_PRUNING_RATIOS
from repro.parallel.pool import resolve_workers
from repro.pruning import PruningConfig, prune_network

RESULTS_DIR_NAME = "bench_assessment"
_EXPECTED_LOSS = 0.02


def _workload():
    """A trained + pruned LeNet-300-100 on a forward-heavy synthetic test set."""
    ds = mnist_like(samples_per_class=400, seed=7)
    train, test = train_test_split(ds, test_fraction=0.3, seed=8)
    net = models.lenet_300_100(seed=21)
    SGDTrainer(
        SGDConfig(epochs=4, learning_rate=0.03, weight_decay=1e-3, seed=22)
    ).train(net, train.images, train.labels)
    pruned = prune_network(
        net,
        PruningConfig(
            ratios=PAPER_PRUNING_RATIOS["LeNet-300-100"],
            retrain=True,
            retrain_config=SGDConfig(
                epochs=2, learning_rate=0.02, weight_decay=1e-4, seed=23
            ),
        ),
        train_images=train.images,
        train_labels=train.labels,
    )
    return pruned, test


def _points(result):
    return {
        name: [
            (p.error_bound, p.accuracy, p.degradation, p.compressed_bytes)
            for p in assessment.points
        ]
        for name, assessment in result.layers.items()
    }


def _plan(result):
    return optimize_error_bounds(
        result.candidates(), OptimizerConfig(expected_accuracy_loss=_EXPECTED_LOSS)
    )


def bench_assessment() -> None:
    pruned, test = _workload()
    config = AssessmentConfig(expected_accuracy_loss=_EXPECTED_LOSS, max_fine_tests=12)
    network, sparse = pruned.network, pruned.sparse_layers
    workers = resolve_workers(None)

    def run_serial():
        return assess_network(
            network, sparse, test.images, test.labels,
            config=config, evaluator=evaluate_candidate,
        )

    def run_parallel():
        return assess_network(
            network, sparse, test.images, test.labels,
            config=config, workers=None,
        )

    # Best-of-3 to damp scheduler noise (shared CI runners especially);
    # results are deterministic either way.
    serial_s, parallel_s = float("inf"), float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        serial = run_serial()
        serial_s = min(serial_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        parallel = run_parallel()
        parallel_s = min(parallel_s, time.perf_counter() - t0)

    speedup = serial_s / parallel_s
    min_speedup = float(os.environ.get("REPRO_ASSESS_MIN_SPEEDUP", "2.0"))

    # Correctness bar: the engine's output must be indistinguishable from the
    # serial Algorithm 1 — same points, same test counts, same plan.
    assert _points(serial) == _points(parallel), "assessment points diverged"
    assert serial.tests_performed == parallel.tests_performed
    assert serial.baseline_accuracy == parallel.baseline_accuracy
    plan_serial, plan_parallel = _plan(serial), _plan(parallel)
    assert plan_serial.error_bounds == plan_parallel.error_bounds, "plans diverged"
    assert plan_serial.total_compressed_bytes == plan_parallel.total_compressed_bytes

    results = {
        "samples": int(len(test.images)),
        "workers": workers,
        "tests_performed": serial.tests_performed,
        "parallel_evaluations": parallel.evaluations,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "plan_error_bounds": dict(plan_parallel.error_bounds),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "bench_assessment.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )

    rows = [
        ["serial baseline", f"{serial_s * 1e3:9.1f} ms"],
        ["parallel + reuse", f"{parallel_s * 1e3:9.1f} ms"],
        ["speedup", f"{speedup:9.2f} x"],
        ["assessment points", f"{serial.tests_performed:9d}"],
        ["engine evaluations", f"{parallel.evaluations:9d}"],
        ["pool workers", f"{workers:9d}"],
    ]
    text = render_table(
        ["metric", "value"],
        rows,
        title=(
            f"error-bound assessment: {len(sparse)} layers, "
            f"{len(test.images)} samples, plan "
            f"{format_bytes(plan_parallel.total_compressed_bytes)}"
        ),
    )
    print(text)
    write_result(RESULTS_DIR_NAME, text)

    assert speedup >= min_speedup, (
        f"parallel+reuse assessment speedup {speedup:.2f}x is below the "
        f"{min_speedup:.1f}x bar ({results})"
    )


if __name__ == "__main__":
    bench_assessment()
