"""Figures 3 & 5 — inference accuracy vs per-layer error bound.

For every network and every fc-layer, compress only that layer's data array at
error bounds spanning 1e-4 … 1e-1, reconstruct it, and measure the test
accuracy of the otherwise untouched network.  The paper's shape: accuracy is
flat through small bounds (the feasible range) and collapses as the bound
approaches 1e-1.
"""

from __future__ import annotations

import pytest

from common import BENCH_MODELS, write_result
from repro.analysis import ascii_series
from repro.core.assessment import AssessmentConfig, evaluate_candidate
from repro.nn import zoo

ERROR_BOUNDS = [1e-4, 1e-3, 5e-3, 1e-2, 3e-2, 1e-1]


@pytest.mark.parametrize("model", BENCH_MODELS)
def bench_fig5_accuracy_vs_error_bound(benchmark, zoo_pruned, model):
    pruned, _, test = zoo_pruned(model)
    network = pruned.network
    config = AssessmentConfig(expected_accuracy_loss=0.05)
    baseline = network.accuracy(test.images, test.labels)

    series = {}
    for layer, sparse in pruned.sparse_layers.items():
        series[layer] = {}
        for eb in ERROR_BOUNDS:
            accuracy, _ = evaluate_candidate(
                network, layer, sparse, eb, test.images, test.labels, config=config
            )
            series[layer][eb] = accuracy

    text = ascii_series(
        f"Figure 3/5 — inference accuracy vs error bound, {zoo.PAPER_NAME[model]} "
        f"(mini); baseline accuracy {baseline:.4f}",
        series,
    )
    write_result(f"fig5_accuracy_vs_eb_{model}", text)

    largest = max(pruned.sparse_layers, key=lambda n: pruned.sparse_layers[n].dense_bytes)
    for layer, curve in series.items():
        # Tiny bounds preserve accuracy (within a couple of test-set quanta).
        assert abs(curve[1e-4] - baseline) <= 0.01
    # On the dominant layer, accuracy never improves meaningfully as the bound
    # grows, and at least one layer is visibly distorted at 1e-1 — which is
    # why the paper restricts error bounds to < 0.1.
    assert series[largest][1e-1] <= series[largest][1e-4] + 0.01
    worst_drop = max(baseline - curve[1e-1] for curve in series.values())
    assert worst_drop >= 0.005

    # Timed kernel: one candidate evaluation on the largest layer.
    largest = max(pruned.sparse_layers, key=lambda n: pruned.sparse_layers[n].dense_bytes)
    benchmark(
        lambda: evaluate_candidate(
            network,
            largest,
            pruned.sparse_layers[largest],
            1e-2,
            test.images[:200],
            test.labels[:200],
            config=config,
        )
    )
