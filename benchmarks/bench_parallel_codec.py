"""Chunked parallel codec engine — serial v1 vs chunked v2 at various workers.

The DeepSZ hot path is embarrassingly parallel (each layer / chunk is an
independent SZ stream), and the chunked v2 container makes that parallelism
available inside a single array.  This benchmark measures encode+decode
wall-clock of a >= 4M-element float32 array:

* **serial v1** — the monolithic container, one core (the historical path);
* **chunked v2, workers=1** — same chunking, serial execution (isolates the
  container overhead);
* **chunked v2, workers=N** — the process-pool fan-out, N from
  ``REPRO_WORKERS`` or all CPUs.

On a machine with >= 4 cores the chunked parallel path must beat the serial
v1 path by >= 2x while reconstructing within the error bound; v1 payloads
keep decoding bit-exactly.  On smaller machines the speedup assertion is
skipped (there is nothing to fan out to) but correctness is still enforced.
"""

from __future__ import annotations

import os
import time

import numpy as np

from common import write_result
from repro.analysis import render_table
from repro.codecs import get_codec
from repro.parallel.pool import resolve_workers
from repro.sz.compressor import SZCompressor
from repro.sz.config import SZConfig

ELEMENTS = int(os.environ.get("REPRO_PARALLEL_BENCH_ELEMENTS", 4_194_304))
ERROR_BOUND = 1e-3
CHUNK_SIZE = 1 << 19  # 512k elements/chunk: 8 chunks over the 4M default


def _payload_array() -> np.ndarray:
    rng = np.random.default_rng(2024)
    data = (rng.standard_normal(ELEMENTS) * 0.05).astype(np.float32)
    data[:: 1009] *= 40.0  # sprinkle outliers through the unpredictable path
    return data


def _timed_round_trip(data, *, chunk_size, workers):
    cfg = SZConfig(error_bound=ERROR_BOUND, chunk_size=chunk_size)
    compressor = SZCompressor(cfg)
    start = time.perf_counter()
    result = compressor.compress(data, workers=workers)
    encode_s = time.perf_counter() - start
    start = time.perf_counter()
    out = compressor.decompress(result.payload, workers=workers)
    decode_s = time.perf_counter() - start
    # The bound holds in double precision; the float32 output cast can add
    # half a ULP of the value itself (see repro/sz/quantizer.py).
    tolerance = ERROR_BOUND * (1 + 1e-5) + np.finfo(np.float32).eps * float(
        np.abs(data).max()
    )
    assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= (
        tolerance
    ), "round trip violated the error bound"
    return result, out, encode_s, decode_s


def bench_parallel_codec_speedup(benchmark):
    data = _payload_array()
    workers = max(resolve_workers(None), 2)
    cpu = os.cpu_count() or 1

    v1_res, v1_out, v1_enc, v1_dec = _timed_round_trip(
        data, chunk_size=None, workers=1
    )
    c1_res, c1_out, c1_enc, c1_dec = _timed_round_trip(
        data, chunk_size=CHUNK_SIZE, workers=1
    )
    cn_res, cn_out, cn_enc, cn_dec = _timed_round_trip(
        data, chunk_size=CHUNK_SIZE, workers=workers
    )

    # Identical reconstructions across containers and worker counts, and the
    # v1 payload produced by the serial path still decodes bit-exactly
    # through the registry codec.
    np.testing.assert_array_equal(c1_out, cn_out)
    np.testing.assert_array_equal(
        v1_out, get_codec("sz").decompress(v1_res.payload, workers=workers)
    )
    assert c1_res.payload == cn_res.payload, "worker count changed payload bytes"

    v1_total = v1_enc + v1_dec
    cn_total = cn_enc + cn_dec
    speedup = v1_total / cn_total if cn_total else float("inf")
    rows = [
        ["serial v1 (monolithic)", f"{v1_enc:.2f} s", f"{v1_dec:.2f} s",
         f"{v1_total:.2f} s", "1.00", f"{v1_res.ratio:.2f}x"],
        ["chunked v2, workers=1", f"{c1_enc:.2f} s", f"{c1_dec:.2f} s",
         f"{c1_enc + c1_dec:.2f} s",
         f"{v1_total / max(c1_enc + c1_dec, 1e-9):.2f}", f"{c1_res.ratio:.2f}x"],
        [f"chunked v2, workers={workers}", f"{cn_enc:.2f} s", f"{cn_dec:.2f} s",
         f"{cn_total:.2f} s", f"{speedup:.2f}", f"{cn_res.ratio:.2f}x"],
    ]
    text = render_table(
        ["configuration", "encode", "decode", "total", "speedup", "ratio"],
        rows,
        title=(
            f"Chunked parallel codec — {ELEMENTS / 1e6:.1f}M float32, "
            f"chunk={CHUNK_SIZE} elements, {cpu} CPU(s), eb={ERROR_BOUND}"
        ),
    )
    write_result("parallel_codec_speedup", text)

    # The acceptance bar: >= 2x on a 4+ core machine.  A single-core box has
    # nothing to fan out to, so only the correctness half applies there.
    if cpu >= 4 and workers >= 4:
        assert speedup >= 2.0, (
            f"chunked parallel path is only {speedup:.2f}x faster than serial v1"
        )

    benchmark(
        lambda: SZCompressor(
            SZConfig(error_bound=ERROR_BOUND, chunk_size=CHUNK_SIZE)
        ).compress(data[: ELEMENTS // 8], workers=workers)
    )
