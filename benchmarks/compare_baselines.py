#!/usr/bin/env python
"""Perf-regression gate: diff fresh ``BENCH_*.json`` against the baselines.

For every artifact committed under ``benchmarks/baselines/`` this script
loads the freshly generated counterpart (``benchmarks/BENCH_<suite>.json``
by default, written by ``run_all.py``) and compares every metric in the
baseline's ``gate`` list.  A gated ``"higher"``-is-better metric that
regresses by more than the threshold — or a ``"lower"``-is-better one that
grows by more than it — fails the gate; everything else is reported for
context but never fails the job.

The threshold defaults to 30% and is overridable via
``REPRO_BENCH_REGRESSION_PCT`` or ``--threshold`` for noisy runners: CI
hosted machines differ from the baseline machine and from each other, so
the CI job runs with a generous threshold that still catches collapse-class
regressions, while a local run against baselines recorded on the same
machine uses the tight default.

Parallelism-dependent metrics (the baseline's ``core_scaled`` map, e.g.
the gateway 4-replica scaling ratio) additionally honour the ``host_cores``
stamp both artifacts carry: when the fresh run had fewer usable cores than
the recording machine, the expectation is scaled down by
``min(fresh_cores, cap) / min(baseline_cores, cap)``.  The adjustment only
ever *relaxes* (factor capped at 1.0) — a fresh run on a bigger machine is
still compared against the recorded baseline, never held to an
extrapolated one.

Exit status: 0 when every gated metric is within the threshold, 1 otherwise
(or when a fresh artifact is missing entirely).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Tuple

BENCH_DIR = Path(__file__).resolve().parent
BASELINE_DIR = BENCH_DIR / "baselines"

DEFAULT_THRESHOLD_PCT = 30.0


def compare_suite(
    baseline: dict, fresh: dict, threshold_pct: float
) -> Tuple[List[list], List[str]]:
    """Compare one suite's artifacts.

    Returns ``(rows, failures)``: a report row per baseline metric
    (``[metric, baseline, fresh, delta%, verdict]``) and a list of failure
    descriptions for gated metrics beyond the threshold.
    """
    gate = set(baseline.get("gate", []))
    directions = baseline.get("directions", {})
    fresh_metrics = fresh.get("metrics", {})
    core_scaled = baseline.get("core_scaled", {})
    base_cores = baseline.get("host_cores")
    fresh_cores = fresh.get("host_cores")
    rows: List[list] = []
    failures: List[str] = []
    for name, base_value in sorted(baseline.get("metrics", {}).items()):
        if name not in fresh_metrics:
            if name in gate:
                failures.append(f"gated metric {name!r} missing from fresh artifact")
                rows.append([name, base_value, None, None, "MISSING"])
            continue
        fresh_value = fresh_metrics[name]
        expected = base_value
        core_adjusted = False
        if name in core_scaled and base_cores and fresh_cores:
            # Relax-only core scaling: a parallelism metric recorded on a
            # big reference machine cannot materialise on a small runner.
            cap = core_scaled[name]
            factor = min(1.0, min(fresh_cores, cap) / min(base_cores, cap))
            if factor < 1.0:
                expected = base_value * factor
                core_adjusted = True
        if expected:
            # Positive delta = improvement in the metric's own direction.
            change = (fresh_value - expected) / abs(expected) * 100.0
            if directions.get(name, "higher") == "lower":
                change = -change
            delta = change
        else:
            delta = 0.0
        gated = name in gate
        regressed = gated and delta < -threshold_pct
        verdict = "FAIL" if regressed else ("ok" if gated else "info")
        if core_adjusted:
            verdict += f" (core-adj x{factor:.2f})"
        rows.append([name, base_value, fresh_value, delta, verdict])
        if regressed:
            adjusted_note = (
                f" [expectation core-scaled to {expected:.4g} for "
                f"{fresh_cores} core(s)]" if core_adjusted else ""
            )
            failures.append(
                f"{name}: {base_value:.4g} -> {fresh_value:.4g} "
                f"({delta:+.1f}% vs the -{threshold_pct:.0f}% limit)"
                f"{adjusted_note}"
            )
    return rows, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", default=str(BASELINE_DIR),
                        help="directory of committed baseline artifacts")
    parser.add_argument("--fresh", default=str(BENCH_DIR),
                        help="directory of freshly generated artifacts")
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("REPRO_BENCH_REGRESSION_PCT",
                                     DEFAULT_THRESHOLD_PCT)),
        help="max tolerated regression on gated metrics, in percent",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baselines)
    fresh_dir = Path(args.fresh)
    baseline_paths = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baseline_paths:
        print(f"error: no BENCH_*.json baselines under {baseline_dir}", file=sys.stderr)
        return 1

    all_failures: List[str] = []
    for baseline_path in baseline_paths:
        fresh_path = fresh_dir / baseline_path.name
        baseline = json.loads(baseline_path.read_text())
        suite = baseline.get("suite", baseline_path.stem)
        if not fresh_path.exists():
            all_failures.append(f"{suite}: fresh artifact {fresh_path} missing")
            print(f"== {suite}: MISSING fresh artifact {fresh_path} ==")
            continue
        fresh = json.loads(fresh_path.read_text())
        rows, failures = compare_suite(baseline, fresh, args.threshold)
        print(f"== {suite} (threshold {args.threshold:.0f}%) ==")
        width = max((len(r[0]) for r in rows), default=10)
        for name, base, new, delta, verdict in rows:
            new_text = f"{new:12.4g}" if new is not None else "     missing"
            delta_text = f"{delta:+8.1f}%" if delta is not None else "        -"
            print(f"  {name:<{width}} {base:12.4g} -> {new_text} {delta_text}  {verdict}")
        all_failures.extend(f"{suite}: {f}" for f in failures)

    if all_failures:
        print("\nperf-regression gate FAILED:", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            "\nIf the regression is expected (or the runner is noisy), refresh "
            "baselines with `python benchmarks/run_all.py --update-baselines` "
            "on the reference machine, or raise REPRO_BENCH_REGRESSION_PCT.",
            file=sys.stderr,
        )
        return 1
    print(f"\nperf-regression gate passed for {len(baseline_paths)} suite(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
