#!/usr/bin/env python
"""Unified benchmark runner: one command, stable ``BENCH_*.json`` artifacts.

Runs the serving / assessment / sparse-inference benchmarks (each as a
subprocess of its existing script, so this runner cannot drift from what
the scripts measure), reads the raw ``results/*.json`` each script wrote,
and distills a *stable-schema* artifact per suite::

    {"schema_version": 2, "suite": "serving", "mode": "smoke",
     "host_cores": <usable cores on the recording machine>,
     "metrics": {...flat name -> number...},
     "gate": [...metric names the perf-regression gate enforces...],
     "directions": {"<gated metric>": "higher" | "lower"},
     "core_scaled": {"<metric>": <core cap>, ...}}   # serving only

Metric keys are append-only across PRs: tooling (the CI artifact diff, the
``compare_baselines.py`` gate) may rely on any key that has ever shipped.
``host_cores`` + ``core_scaled`` let ``compare_baselines.py`` relax
parallelism-dependent expectations when the fresh run has fewer usable
cores than the machine that recorded the baseline (a 4-replica scaling
ratio cannot materialise on a 1-core CI runner).

Artifacts land next to this file as ``BENCH_<suite>.json``.  CI runs this
in smoke mode on every push and uploads the artifacts, then runs
``compare_baselines.py`` against the committed ``benchmarks/baselines/``.
Refresh those baselines with ``--update-baselines`` on the reference
machine whenever a PR legitimately moves a gated number (and commit the
result).

Usage::

    PYTHONPATH=src python benchmarks/run_all.py               # smoke mode
    PYTHONPATH=src python benchmarks/run_all.py --full
    PYTHONPATH=src python benchmarks/run_all.py --suites serving,sparse_inference
    PYTHONPATH=src python benchmarks/run_all.py --update-baselines
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path
from typing import Callable, Dict

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINE_DIR = BENCH_DIR / "baselines"

# v2: decode-stage timings, cache hit rate, and the observability
# overhead measurement joined the serving metrics (all info-only).
# v3: the scenarios suite joined (trace-driven scenario×policy matrix;
# artifacts may now carry grid/workload/traces/cells alongside metrics).
# Keep in sync with repro.sim.matrix.ARTIFACT_SCHEMA_VERSION, which emits
# the same envelope for `python -m repro scenario-bench`.
SCHEMA_VERSION = 3


def _extract_serving(raw: dict) -> dict:
    sweep = raw["gateway_sweep"]
    throughput = raw["throughput_accesses_per_s"]
    metrics = {
        "warm_vs_cold_speedup": raw["warm_vs_cold_speedup"],
        "warm_layer_access_us": raw["warm_layer_access_s"] * 1e6,
        "cold_full_decode_ms": raw["cold_full_decode_s"] * 1e3,
        "layer_access_rps_4": throughput.get("4", max(throughput.values())),
        "gateway_scaling_4v1": sweep["scaling_4v1"],
        "gateway_saturation_rejection_rate": sweep["saturation"]["rejection_rate"],
    }
    for count, rate in sweep["throughput_rps"].items():
        metrics[f"gateway_rps_{count}"] = rate
    # Observability stamps (info-only: never gated — stage timings track
    # codec work that legitimately moves, the overhead delta is noise-sized
    # by design, and the hit rate depends on the access pattern).
    for stage, seconds in raw.get("decode_stages", {}).items():
        metrics[f"decode_stage_{stage}_ms"] = seconds * 1e3
    cache = raw.get("cache", {})
    if "hit_rate" in cache:
        metrics["cache_hit_rate"] = cache["hit_rate"]
    obs = raw.get("obs_overhead", {})
    if "overhead_pct" in obs:
        metrics["obs_overhead_pct"] = obs["overhead_pct"]
    gate = [
        "warm_vs_cold_speedup",
        "layer_access_rps_4",
        "gateway_rps_4",
        "gateway_scaling_4v1",
    ]
    directions = {name: "higher" for name in gate}
    # The asyncio front door A/B (64 closed-loop clients, process backend):
    # the absolute throughput is gated; the async-vs-thread ratio is info
    # (its own assert lives in bench_serving.py, env-relaxed by the runner).
    async_fd = raw.get("async_front_door")
    if async_fd:
        metrics["async_gateway_rps"] = async_fd["async_rps"]
        metrics["async_vs_thread_dispatcher_ratio"] = async_fd["ratio"]
        gate.append("async_gateway_rps")
        directions["async_gateway_rps"] = "higher"
    # The primary sweep runs on the process backend by default; the script
    # then re-runs the thread backend under identical load so the legacy
    # path keeps its own gated numbers instead of hiding behind the faster
    # backend.
    thread = sweep.get("thread_comparison")
    if thread:
        for count, rate in thread["throughput_rps"].items():
            metrics[f"gateway_rps_thread_{count}"] = rate
        metrics["gateway_scaling_thread_4v1"] = thread["scaling_4v1"]
        gate.append("gateway_rps_thread_4")
        directions["gateway_rps_thread_4"] = "higher"
    return {
        "gateway_backend": sweep.get("backend", "thread"),
        "metrics": metrics,
        # Absolute-throughput gates catch collapse-class regressions; the
        # ratios are machine-independent between equal-core runners, and
        # core_scaled relaxes them when the fresh host is smaller.
        "gate": gate,
        "directions": directions,
        # metric -> core cap: the metric needs min(cap, cores) usable cores
        # to express itself; compare_baselines.py scales the expectation by
        # min(fresh_cores, cap) / min(baseline_cores, cap), relax-only.
        "core_scaled": {"gateway_scaling_4v1": 4, "gateway_rps_4": 4},
    }


def _extract_assessment(raw: dict) -> dict:
    return {
        "metrics": {
            "assessment_speedup": raw["speedup"],
            "serial_ms": raw["serial_s"] * 1e3,
            "parallel_ms": raw["parallel_s"] * 1e3,
            "tests_performed": raw["tests_performed"],
        },
        "gate": ["assessment_speedup"],
        "directions": {"assessment_speedup": "higher"},
    }


def _extract_sparse(raw: dict) -> dict:
    return {
        "metrics": {
            "byte_reduction": raw["byte_reduction"],
            "forward_speedup": raw["forward_speedup"],
            "dense_forward_ms": raw["dense_forward_s"] * 1e3,
            "sparse_forward_ms": raw["sparse_forward_s"] * 1e3,
        },
        "gate": ["byte_reduction", "forward_speedup"],
        "directions": {"byte_reduction": "higher", "forward_speedup": "higher"},
    }


def _extract_scenarios(raw: dict) -> dict:
    # bench_scenarios.py pre-flattens via repro.sim.matrix.flatten_metrics
    # (this runner stays importable without PYTHONPATH=src); the cells and
    # trace digests ride along so a BENCH artifact is self-describing.
    return {
        "metrics": raw["metrics"],
        "gate": raw["gate"],
        "directions": raw["directions"],
        "grid": raw["grid"],
        "workload": raw["workload"],
        "traces": raw["traces"],
        "cells": raw["cells"],
    }


#: suite -> (benchmark script, raw results file, metric extractor)
SUITES: Dict[str, tuple[str, str, Callable[[dict], dict]]] = {
    "serving": ("bench_serving.py", "bench_serving.json", _extract_serving),
    "assessment": ("bench_assessment.py", "bench_assessment.json", _extract_assessment),
    "sparse_inference": (
        "bench_sparse_inference.py",
        "bench_sparse_inference.json",
        _extract_sparse,
    ),
    "scenarios": ("bench_scenarios.py", "bench_scenarios.json", _extract_scenarios),
}


def _suite_env(smoke: bool) -> dict:
    env = os.environ.copy()
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if smoke:
        env.setdefault("REPRO_BENCH_SMOKE", "1")
    # The runner's job is producing artifacts, not enforcing speed bars:
    # regression detection belongs to compare_baselines.py, which sees the
    # actual numbers.  Correctness asserts inside the scripts (parity,
    # identical plans, bounded-queue rejection) still run at full strength.
    # An explicit environment always wins over these defaults.
    env.setdefault("REPRO_ASSESS_MIN_SPEEDUP", "1.0")
    env.setdefault("REPRO_SPARSE_MIN_SPEEDUP", "1.0")
    env.setdefault("REPRO_GATEWAY_MIN_SCALING", "0")
    env.setdefault("REPRO_OBS_MAX_OVERHEAD_PCT", "100")
    env.setdefault("REPRO_ASYNC_MIN_RATIO", "0")
    return env


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):  # honours cgroup/affinity limits
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # macOS/Windows


_BLAS_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS")


def run_suite(name: str, *, smoke: bool, out_dir: Path) -> Path:
    script, raw_name, extract = SUITES[name]
    print(f"== {name}: {script} ({'smoke' if smoke else 'full'} mode) ==", flush=True)
    env = _suite_env(smoke)
    subprocess.run(
        [sys.executable, script],
        cwd=BENCH_DIR,
        env=env,
        check=True,
    )
    raw = json.loads((RESULTS_DIR / raw_name).read_text())
    artifact = {
        "schema_version": SCHEMA_VERSION,
        "suite": name,
        "mode": "smoke" if smoke else "full",
        # Recording-host parallelism: compare_baselines.py reads this from
        # both artifacts to core-scale the expectations in core_scaled.
        "host_cores": _usable_cores(),
        **extract(raw),
    }
    if name == "serving":
        # bench_serving.py setdefaults these to 1; an explicit env override
        # (inherited here) un-pins BLAS and taints per-replica comparisons.
        artifact["blas_pinned"] = all(env.get(var, "1") == "1" for var in _BLAS_VARS)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="run at full scale instead of smoke mode")
    parser.add_argument("--suites", default=",".join(SUITES),
                        help=f"comma-separated subset of: {', '.join(SUITES)}")
    parser.add_argument("--out", default=str(BENCH_DIR),
                        help="directory for the BENCH_*.json artifacts")
    parser.add_argument("--update-baselines", action="store_true",
                        help="copy the fresh artifacts into benchmarks/baselines/")
    args = parser.parse_args(argv)

    names = [s.strip() for s in args.suites.split(",") if s.strip()]
    unknown = [s for s in names if s not in SUITES]
    if unknown:
        parser.error(f"unknown suite(s) {unknown}; available: {sorted(SUITES)}")
    if not names:
        # e.g. --suites "" or --suites ","; silently running zero suites
        # would let CI "pass" while producing no artifacts to gate on.
        parser.error(f"--suites selected no suites; available: {sorted(SUITES)}")

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    artifacts = [run_suite(name, smoke=not args.full, out_dir=out_dir) for name in names]

    if args.update_baselines:
        BASELINE_DIR.mkdir(parents=True, exist_ok=True)
        for path in artifacts:
            target = BASELINE_DIR / path.name
            shutil.copyfile(path, target)
            print(f"baseline refreshed: {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
