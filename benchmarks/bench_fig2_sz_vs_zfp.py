"""Figure 2 — SZ vs ZFP compression ratios on pruned fc-layer data arrays.

The paper compresses the 1-D data arrays of AlexNet's and VGG-16's fc6/fc7/fc8
with absolute error bounds 1e-2, 1e-3 and 1e-4 and shows SZ consistently ahead
of ZFP.  Here the fc-layers are synthesised at (scaled) paper dimensions with
a trained-like weight distribution, pruned at the paper's ratios, and pushed
through both codecs.
"""

from __future__ import annotations

import pytest

from common import scale_factor, write_result
from repro.analysis import ascii_series
from repro.nn.models import synthesize_fc_weights
from repro.nn.specs import PAPER_PRUNING_RATIOS
from repro.pruning import encode_sparse, prune_weights
from repro.sz import SZCompressor, SZConfig
from repro.zfp import ZFPCompressor, ZFPConfig

NETWORKS = ["AlexNet", "VGG-16"]
LAYERS = ["fc6", "fc7", "fc8"]
ERROR_BOUNDS = [1e-2, 1e-3, 1e-4]


def _pruned_data_array(network: str, layer: str):
    scale = scale_factor()
    weights = synthesize_fc_weights(network, layer, seed=hash((network, layer)) % 2**31, scale=scale)
    keep = PAPER_PRUNING_RATIOS[network][layer]
    pruned, _ = prune_weights(weights, keep)
    return encode_sparse(pruned).data


@pytest.mark.parametrize("network", NETWORKS)
def bench_fig2_sz_vs_zfp(benchmark, network):
    """Compression ratio of SZ and ZFP per fc-layer and error bound."""
    arrays = {layer: _pruned_data_array(network, layer) for layer in LAYERS}

    series = {}
    for layer in LAYERS:
        data = arrays[layer]
        for eb in ERROR_BOUNDS:
            sz_ratio = SZCompressor(SZConfig(error_bound=eb)).compress(data).ratio
            zfp_ratio = ZFPCompressor(ZFPConfig(tolerance=eb)).compress(data).ratio
            series.setdefault(f"SZ-{layer}", {})[eb] = sz_ratio
            series.setdefault(f"ZFP-{layer}", {})[eb] = zfp_ratio
            # The Figure 2 ordering: SZ always ahead of ZFP.
            assert sz_ratio > zfp_ratio, (network, layer, eb)

    text = ascii_series(
        f"Figure 2 — SZ vs ZFP compression ratio on pruned {network} fc-layers "
        f"(columns: absolute error bound)",
        series,
        value_format="{:.2f}",
    )
    write_result(f"fig2_sz_vs_zfp_{network.lower()}", text)

    # Timed kernel: SZ compression of the largest layer at the middle bound.
    compressor = SZCompressor(SZConfig(error_bound=1e-3))
    benchmark(lambda: compressor.compress(arrays["fc6"]))

    # Ratios grow monotonically with the error bound, as in the figure.
    for layer in LAYERS:
        ratios = [series[f"SZ-{layer}"][eb] for eb in ERROR_BOUNDS]
        assert ratios[0] > ratios[1] > ratios[2]


def bench_fig2_decompression_throughput(benchmark):
    """Companion: SZ decompression of a paper-like fc6 data array."""
    data = _pruned_data_array("AlexNet", "fc6")
    compressor = SZCompressor(SZConfig(error_bound=1e-3))
    payload = compressor.compress(data).payload
    benchmark(lambda: compressor.decompress(payload))
