"""Sparse compressed-domain inference benchmark: dense vs sparse serving.

The paper's artifact is a pruned network (~10% fc density in the two-array
format of Section 3.2), yet the dense serving path densifies every layer
before use.  This benchmark quantifies what executing straight from the
sparse representation buys on a pruned zoo model, end to end through the
real serving stack (archive -> ModelRuntime -> Network):

* **resident weight bytes** — what the decoded-layer LRU cache is charged
  after decoding every fc layer: dense float32 matrices vs the CSC
  data + indices + indptr footprint.  Asserted >= 5x smaller (so a fixed
  cache byte budget holds ~5x more models);
* **batched forward latency** — one forward pass at the serving batch size
  through dense BLAS matmuls vs compressed-domain CSC matmuls.  Asserted
  >= ``REPRO_SPARSE_MIN_SPEEDUP`` (default 1.5; CI relaxes it because
  hosted-runner BLAS/core behaviour varies) faster in sparse mode;
* **parity** — both paths must agree to 1e-6 with identical top-1
  predictions, otherwise the speedup is meaningless.

Results land in ``benchmarks/results/bench_sparse_inference.{txt,json}``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from common import RESULTS_DIR, write_result
from repro.analysis import format_bytes, render_table
from repro.core.encoder import DeepSZEncoder
from repro.nn import zoo
from repro.serve import ModelRuntime
from repro.store import archive_bytes

_MODEL = "lenet-300-100"
_ERROR_BOUND = 1e-3
_BATCH = 64
_REPEATS = 30


def _workload():
    """A pruned zoo model encoded into a ``.dsz`` archive, plus test data."""
    pruned, _, test = zoo.pruned_model(_MODEL)
    model = DeepSZEncoder().encode(
        pruned.network.name,
        pruned.sparse_layers,
        {name: _ERROR_BOUND for name in pruned.sparse_layers},
    )
    return pruned, test, archive_bytes(model)


def _time_forward(network, x: np.ndarray) -> float:
    """Best-of-N seconds for one batched forward pass (damps scheduler noise)."""
    network.forward(x)  # warm-up: first touch pays allocator/cache misses
    best = float("inf")
    for _ in range(_REPEATS):
        t0 = time.perf_counter()
        network.forward(x)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_sparse_inference() -> None:
    pruned, test, blob = _workload()
    x = test.images[:_BATCH].reshape(_BATCH, -1).astype(np.float32)

    # Two runtimes over the same archive: dense decode vs compressed-domain.
    with ModelRuntime(blob) as rt_dense, ModelRuntime(blob, sparse=True) as rt_sparse:
        net_dense = pruned.network.clone()
        net_sparse = pruned.network.clone()
        rt_dense.load_into(net_dense)
        rt_sparse.load_into(net_sparse)

        dense_resident = rt_dense.stats().cache.current_bytes
        sparse_resident = rt_sparse.stats().cache.current_bytes
        byte_reduction = dense_resident / sparse_resident

        # Parity first: the speedup is only meaningful if the outputs agree.
        probs_dense = net_dense.forward(x)
        probs_sparse = net_sparse.forward(x)
        max_diff = float(np.abs(probs_dense - probs_sparse).max())
        top1_dense = np.argmax(probs_dense, axis=1)
        top1_sparse = np.argmax(probs_sparse, axis=1)
        assert max_diff <= 1e-6, f"dense/sparse outputs diverge by {max_diff}"
        assert np.array_equal(top1_dense, top1_sparse), "top-1 predictions diverge"

        dense_s = _time_forward(net_dense, x)
        sparse_s = _time_forward(net_sparse, x)

    speedup = dense_s / sparse_s
    min_speedup = float(os.environ.get("REPRO_SPARSE_MIN_SPEEDUP", "1.5"))

    results = {
        "model": _MODEL,
        "batch": _BATCH,
        "fc_layers": len(pruned.sparse_layers),
        "dense_resident_bytes": int(dense_resident),
        "sparse_resident_bytes": int(sparse_resident),
        "byte_reduction": byte_reduction,
        "dense_forward_s": dense_s,
        "sparse_forward_s": sparse_s,
        "forward_speedup": speedup,
        "min_speedup": min_speedup,
        "max_abs_diff": max_diff,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "bench_sparse_inference.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )

    rows = [
        ["dense resident weights", format_bytes(dense_resident)],
        ["sparse resident weights", format_bytes(sparse_resident)],
        ["resident byte reduction", f"{byte_reduction:9.2f} x"],
        ["dense batched forward", f"{dense_s * 1e3:9.3f} ms"],
        ["sparse batched forward", f"{sparse_s * 1e3:9.3f} ms"],
        ["forward speedup", f"{speedup:9.2f} x"],
        ["dense/sparse max |diff|", f"{max_diff:.2e}"],
    ]
    text = render_table(
        ["metric", "value"],
        rows,
        title=(
            f"sparse compressed-domain inference: {_MODEL}, "
            f"batch {_BATCH}, {len(pruned.sparse_layers)} fc layers"
        ),
    )
    print(text)
    write_result("bench_sparse_inference", text)

    # The acceptance bars: the sparse path must really shrink the resident
    # weights (>= 5x at the paper's ~10% density) and speed up the batched
    # forward pass (>= 1.5x locally).
    assert byte_reduction >= 5.0, (
        f"sparse resident-weight reduction {byte_reduction:.2f}x is below the "
        f"5x bar ({results})"
    )
    assert speedup >= min_speedup, (
        f"sparse batched-forward speedup {speedup:.2f}x is below the "
        f"{min_speedup:.1f}x bar ({results})"
    )


if __name__ == "__main__":
    bench_sparse_inference()
