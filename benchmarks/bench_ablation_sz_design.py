"""Ablations of the SZ design choices called out in DESIGN.md.

* Lorenzo prediction vs direct quantization of values (no prediction).
* Quantizer capacity (the unpredictable-data threshold).
* Lossless back end applied after Huffman coding.

These are not figures from the paper, but they justify the defaults the
reproduction uses; the headline SZ pipeline (Lorenzo + Huffman + zlib) should
never lose to the ablated variants by more than noise.
"""

from __future__ import annotations

import pytest

from common import scale_factor, write_result
from repro.analysis import render_table
from repro.nn.models import synthesize_fc_weights
from repro.nn.specs import PAPER_PRUNING_RATIOS
from repro.pruning import encode_sparse, prune_weights
from repro.sz import SZCompressor, SZConfig


def _data_array():
    weights = synthesize_fc_weights("AlexNet", "fc6", seed=77, scale=scale_factor())
    pruned, _ = prune_weights(weights, PAPER_PRUNING_RATIOS["AlexNet"]["fc6"])
    return encode_sparse(pruned).data


def bench_ablation_predictor(benchmark):
    """Adaptive (default) vs plain Lorenzo vs direct quantization.

    On noise-like weight arrays the plain Lorenzo predictor *hurts*: first
    differences of uncorrelated codes have roughly twice the variance, so the
    residual entropy grows by ~0.5 bit per value.  This is exactly why SZ 2.x
    introduced the per-block regression predictor — on such blocks the
    regression fit collapses to "predict (almost) zero", recovering the
    direct-quantization rate.  The adaptive default must therefore match or
    beat both fixed choices.
    """
    data = _data_array()
    rows = []
    ratios = {}
    for eb in (1e-2, 1e-3):
        for predictor in ("adaptive", "lorenzo", "none"):
            result = SZCompressor(SZConfig(error_bound=eb, predictor=predictor)).compress(data)
            ratios[(predictor, eb)] = result.ratio
            rows.append([predictor, f"{eb:.0e}", f"{result.ratio:.2f}x", f"{result.bits_per_value:.2f}"])
    text = render_table(
        ["predictor", "error bound", "ratio", "bits/value"],
        rows,
        title="Ablation — prediction scheme (AlexNet fc6 data array)",
    )
    write_result("ablation_predictor", text)

    for eb in (1e-2, 1e-3):
        best_fixed = max(ratios[("lorenzo", eb)], ratios[("none", eb)])
        assert ratios[("adaptive", eb)] >= best_fixed * 0.93

    benchmark(lambda: SZCompressor(SZConfig(error_bound=1e-3)).compress(data))


def bench_ablation_capacity(benchmark):
    """Quantizer capacity: too-small capacities push values to the outlier path."""
    data = _data_array()
    rows = []
    outliers = {}
    for capacity in (256, 4096, 65536):
        result = SZCompressor(SZConfig(error_bound=1e-3, capacity=capacity)).compress(data)
        outliers[capacity] = result.outlier_count
        rows.append([str(capacity), f"{result.ratio:.2f}x", str(result.outlier_count)])
    text = render_table(
        ["capacity", "ratio", "unpredictable values"],
        rows,
        title="Ablation — quantizer capacity at error bound 1e-3",
    )
    write_result("ablation_capacity", text)

    # Larger capacity never produces more outliers.
    assert outliers[65536] <= outliers[4096] <= outliers[256]
    benchmark(lambda: SZCompressor(SZConfig(error_bound=1e-3, capacity=4096)).compress(data))


def bench_ablation_lossless_backend(benchmark):
    """Lossless stage after Huffman coding: store vs zlib vs lzma vs bz2."""
    data = _data_array()
    rows = []
    sizes = {}
    for backend in ("store", "zlib", "lzma", "bz2"):
        result = SZCompressor(SZConfig(error_bound=1e-2, lossless=backend)).compress(data)
        sizes[backend] = result.compressed_bytes
        rows.append([backend, f"{result.ratio:.2f}x"])
    text = render_table(
        ["lossless backend", "ratio"],
        rows,
        title="Ablation — lossless back end applied to the SZ payload (error bound 1e-2)",
    )
    write_result("ablation_lossless", text)

    # A real codec on top of Huffman should not lose to plain storage.
    assert min(sizes["zlib"], sizes["lzma"], sizes["bz2"]) <= sizes["store"]
    benchmark(lambda: SZCompressor(SZConfig(error_bound=1e-2, lossless="best")).compress(data))


def bench_ablation_assessment_granularity(benchmark, zoo_pruned):
    """Coarse-only vs Algorithm 1's fine schedule: the fine scan buys ratio."""
    from repro.core.assessment import AssessmentConfig, assess_network
    from repro.core.optimizer import OptimizerConfig, optimize_error_bounds

    pruned, _, test = zoo_pruned("lenet-300-100")
    images, labels = test.images[:300], test.labels[:300]
    budget = 0.0067

    def run(max_fine_tests):
        config = AssessmentConfig(expected_accuracy_loss=budget, max_fine_tests=max_fine_tests)
        assessment = assess_network(
            pruned.network, pruned.sparse_layers, images, labels, config=config
        )
        plan = optimize_error_bounds(
            assessment.candidates(), OptimizerConfig(expected_accuracy_loss=budget)
        )
        return assessment.tests_performed, plan.total_compressed_bytes

    coarse_tests, coarse_bytes = run(max_fine_tests=1)
    fine_tests, fine_bytes = benchmark.pedantic(lambda: run(max_fine_tests=18), rounds=1, iterations=1)

    text = render_table(
        ["schedule", "accuracy tests", "compressed fc bytes"],
        [
            ["coarse only (1 fine test/layer)", str(coarse_tests), str(coarse_bytes)],
            ["Algorithm 1 fine schedule", str(fine_tests), str(fine_bytes)],
        ],
        title="Ablation — assessment granularity vs achieved size (LeNet-300-100)",
    )
    write_result("ablation_assessment", text)

    # The fine schedule costs more tests and never yields a larger model.
    assert fine_tests >= coarse_tests
    assert fine_bytes <= coarse_bytes
