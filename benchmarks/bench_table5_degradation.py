"""Table 5 — accuracy degradation at comparable compression ratios.

The paper quantises Deep Compression down to the bit width DeepSZ effectively
uses (2.0–3.3 bits per pruned weight) and shows the codebook approach losing
1.5%–2.8% accuracy on the ImageNet networks while DeepSZ stays within ~0.25%.
Here the same experiment runs on the mini networks: Deep Compression's
codebook width is matched to DeepSZ's measured bits-per-weight, both models
are decoded without any retraining, and the degradations are compared.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import BENCH_MODELS, write_result
from repro.analysis import render_table
from repro.baselines import (
    DeepCompressionConfig,
    DeepCompressionEncoder,
    WeightlessConfig,
    WeightlessEncoder,
)
from repro.nn import zoo


def bench_table5_degradation_at_matched_ratio(benchmark, zoo_pruned, deepsz_results):
    rows = []
    summary = {}

    def run_all():
        for model in BENCH_MODELS:
            pruned, _, test = zoo_pruned(model)
            deepsz = deepsz_results(model)
            baseline = deepsz.baseline_accuracy[1]

            # Match Deep Compression's codebook width to the rate DeepSZ's
            # *data arrays* achieve (both methods pay the same index-array
            # cost), as the paper does when it quotes 2.0-3.3 bits per weight.
            largest = max(deepsz.model.layers.values(), key=lambda l: l.nnz)
            data_bits = 8.0 * len(largest.sz_payload) / max(1, largest.nnz)
            matched_bits = int(np.clip(round(data_bits), 2, 6))
            dc = DeepCompressionEncoder(DeepCompressionConfig(bits=matched_bits))
            weights, _ = dc.decode_network(dc.encode_network(pruned.sparse_layers))
            dc_net = pruned.network.clone()
            for name, dense in weights.items():
                dc_net.set_weights(name, dense)
            dc_loss = baseline - dc_net.accuracy(test.images, test.labels)

            # Weightless on the largest layer only (its published scope).
            wl = WeightlessEncoder(WeightlessConfig(value_bits=3, slot_bits=8, seed=11))
            target = wl.pick_target_layer(pruned.sparse_layers)
            wl_name, wl_dense = wl.decode_layer(
                wl.encode_layer(target, pruned.sparse_layers[target]).payload
            )
            wl_net = pruned.network.clone()
            wl_net.set_weights(wl_name, wl_dense)
            wl_loss = baseline - wl_net.accuracy(test.images, test.labels)

            summary[model] = (matched_bits, dc_loss, wl_loss, deepsz.top1_loss)
        return summary

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for model, (bits, dc_loss, wl_loss, deepsz_loss) in summary.items():
        rows.append(
            [
                zoo.PAPER_NAME[model] + " (mini)",
                f"{bits} bits",
                f"{dc_loss * 100:+.2f}%",
                f"{wl_loss * 100:+.2f}%",
                f"{deepsz_loss * 100:+.2f}%",
            ]
        )
    text = render_table(
        ["network", "matched code width", "codebook quantization", "Bloomier filter", "SZ (DeepSZ)"],
        rows,
        title="Table 5 — accuracy degradation of the three encoders without retraining",
    )
    write_result("table5_degradation", text)

    # Shape: DeepSZ's loss is never worse than the matched-rate codebook or
    # the Bloomier filter by more than measurement noise, and on at least one
    # network it is strictly (clearly) better than one of them.
    noise = 0.01
    clearly_better = 0
    for model, (bits, dc_loss, wl_loss, deepsz_loss) in summary.items():
        assert deepsz_loss <= dc_loss + noise, model
        assert deepsz_loss <= wl_loss + noise, model
        if deepsz_loss + 0.005 < max(dc_loss, wl_loss):
            clearly_better += 1
    assert clearly_better >= 1
