"""Session fixtures shared by the benchmark harness.

The expensive artifacts (trained + pruned zoo models, full DeepSZ pipeline
results) are built lazily, at most once per session, and the trained weights
are additionally cached on disk by :mod:`repro.nn.zoo`, so repeated benchmark
runs skip the training cost entirely.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import BENCH_MODELS  # noqa: F401  (re-exported for bench modules)
from repro.core import DeepSZ, DeepSZConfig
from repro.nn import zoo
from repro.nn.specs import PAPER_EXPECTED_ACCURACY_LOSS


@pytest.fixture(scope="session")
def zoo_pruned():
    """Factory: pruned zoo model + train/test datasets, built at most once each."""
    cache = {}

    def get(name: str):
        if name not in cache:
            cache[name] = zoo.pruned_model(name)
        return cache[name]

    return get


@pytest.fixture(scope="session")
def deepsz_results(zoo_pruned):
    """Factory: full DeepSZ pipeline result per zoo model, built at most once each."""
    cache = {}

    def get(name: str):
        if name not in cache:
            pruned, _, test = zoo_pruned(name)
            paper_name = zoo.PAPER_NAME[name]
            expected_loss = PAPER_EXPECTED_ACCURACY_LOSS[paper_name]
            # The mini test sets quantise accuracy at ~0.15% per sample, so the
            # sub-percent budgets of the paper are widened proportionally.  The
            # assessment (Step 2) runs on a 300-sample subset — the paper uses
            # the full 50k ImageNet test set, but its test set is only ~4% of
            # the training set whereas ours is ~40%, so a subset keeps the
            # relative cost of assessment comparable.
            assessment_samples = min(300, len(test))
            budget = max(expected_loss, 2.0 / assessment_samples)
            config = DeepSZConfig(
                expected_accuracy_loss=budget,
                topk=(1, 5),
                assessment_samples=assessment_samples,
            )
            test_images, test_labels = test.images, test.labels
            cache[name] = DeepSZ(config).compress(pruned, test_images, test_labels)
        return cache[name]

    return get
