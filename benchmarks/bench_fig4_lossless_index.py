"""Figure 4 — lossless compression ratios on the index arrays.

The paper compares Gzip, Zstandard and Blosc on the uint8 position-delta index
arrays of AlexNet's and VGG-16's fc-layers and picks the best fit (Zstandard
always wins there).  The offline equivalents are zlib, lzma and bz2; the
best-fit selection machinery is identical.
"""

from __future__ import annotations

import pytest

from common import scale_factor, write_result
from repro.analysis import render_table
from repro.nn.models import synthesize_fc_weights
from repro.nn.specs import PAPER_PRUNING_RATIOS
from repro.pruning import encode_sparse, prune_weights
from repro.sz.lossless import best_fit_backend, get_backend

NETWORKS = ["AlexNet", "VGG-16"]
LAYERS = ["fc6", "fc7", "fc8"]
BACKENDS = ["zlib", "lzma", "bz2"]


def _index_array(network: str, layer: str) -> bytes:
    weights = synthesize_fc_weights(
        network, layer, seed=hash((network, layer, "fig4")) % 2**31, scale=scale_factor()
    )
    keep = PAPER_PRUNING_RATIOS[network][layer]
    pruned, _ = prune_weights(weights, keep)
    return encode_sparse(pruned).index.tobytes()


def bench_fig4_lossless_index_ratios(benchmark):
    rows = []
    winners = []
    arrays = {(n, l): _index_array(n, l) for n in NETWORKS for l in LAYERS}
    for (network, layer), payload in arrays.items():
        ratios = {name: len(payload) / max(1, len(get_backend(name).compress(payload))) for name in BACKENDS}
        best, _ = best_fit_backend(payload, BACKENDS)
        winners.append(best.name)
        rows.append(
            [f"{network} {layer}"] + [f"{ratios[name]:.2f}x" for name in BACKENDS] + [best.name]
        )
        # Every general-purpose codec compresses the low-entropy delta stream.
        assert min(ratios.values()) > 1.0

    text = render_table(
        ["layer", *BACKENDS, "best fit"],
        rows,
        title="Figure 4 — lossless compression ratio of index arrays "
        "(paper: gzip / Zstandard / Blosc; offline stand-ins: zlib / lzma / bz2)",
    )
    write_result("fig4_lossless_index", text)

    # One back end should win consistently, mirroring "Zstandard always wins".
    assert len(set(winners)) <= 2

    # Timed kernel: the best-fit selection over the largest index array.
    biggest = max(arrays.values(), key=len)
    benchmark(lambda: best_fit_backend(biggest, BACKENDS))
