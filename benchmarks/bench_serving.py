"""Serving-runtime benchmark: cold vs warm decoded-layer access + throughput.

The archive + runtime subsystem exists so an edge node never pays the
monolithic-blob tax.  This benchmark quantifies that on a synthetic
multi-layer model:

* **cold full decode** — decode every layer up front (the v1 experience);
* **cold first layer** — lazy time-to-first-layer through the runtime;
* **warm layer access** — per-access latency against the hot LRU cache,
  asserted to be >= 10x faster than the cold full decode (in practice it is
  thousands of times faster: a dictionary hit vs a full codec pass);
* **layer-access throughput** at 1/2/4/8 threads hammering the warm cache.

Results are rendered to ``benchmarks/results/bench_serving.txt`` and the raw
numbers to ``benchmarks/results/bench_serving.json``.  ``REPRO_SCALE=full``
grows the synthetic layers to paper-ish sizes.
"""

from __future__ import annotations

import json

import numpy as np

from common import RESULTS_DIR, scale_factor, write_result
from repro.analysis import format_bytes, render_table
from repro.core.encoder import DeepSZEncoder
from repro.pruning.magnitude import prune_weights
from repro.pruning.sparse_format import encode_sparse
from repro.serve.bench import serving_benchmark
from repro.store import archive_bytes

#: Paper-ish fc-layer shapes (AlexNet fc6/fc7/fc8), shrunk by REPRO_SCALE.
_LAYER_SHAPES = {"fc6": (9216, 4096), "fc7": (4096, 4096), "fc8": (4096, 1000)}
_DENSITY = 0.1
_ERROR_BOUND = 1e-3


def _synthetic_archive() -> bytes:
    scale = scale_factor()
    rng = np.random.default_rng(42)
    sparse = {}
    for name, (rows, cols) in _LAYER_SHAPES.items():
        shape = (max(8, int(rows * scale)), max(8, int(cols * scale)))
        weights = (rng.standard_normal(shape) * 0.04).astype(np.float32)
        pruned, _ = prune_weights(weights, _DENSITY)
        sparse[name] = encode_sparse(pruned)
    model = DeepSZEncoder().encode(
        "bench-serving", sparse, {name: _ERROR_BOUND for name in sparse}
    )
    return archive_bytes(model)


def bench_serving_cold_vs_warm() -> None:
    blob = _synthetic_archive()
    results = serving_benchmark(
        blob,
        concurrency=(1, 2, 4, 8),
        accesses_per_thread=500,
        warm_repeats=50,
    )

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "bench_serving.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )

    rows = [
        ["cold full decode", f"{results['cold_full_decode_s'] * 1e3:.2f} ms"],
        ["cold first layer", f"{results['cold_first_layer_s'] * 1e3:.2f} ms"],
        ["warm layer access", f"{results['warm_layer_access_s'] * 1e6:.2f} us"],
        ["warm vs cold speedup", f"{results['warm_vs_cold_speedup']:.0f}x"],
    ]
    for workers, rate in results["throughput_accesses_per_s"].items():
        rows.append([f"throughput @{workers} threads", f"{rate:,.0f} accesses/s"])
    text = render_table(
        ["metric", "value"],
        rows,
        title=(
            f"serving runtime: {results['layers']} layers, "
            f"archive {format_bytes(results['archive_bytes'])}, "
            f"decoded {format_bytes(results['decoded_bytes'])}"
        ),
    )
    print(text)
    write_result("bench_serving", text)

    # The acceptance bar: a warm cached access must beat re-decoding the
    # whole model by >= 10x (it is a lock + dict hit vs a full codec pass).
    assert results["warm_vs_cold_speedup"] >= 10.0, results
    # Lazy first-layer access must not cost more than the full decode.
    assert results["cold_first_layer_s"] <= results["cold_full_decode_s"] * 1.5, results


if __name__ == "__main__":
    bench_serving_cold_vs_warm()
