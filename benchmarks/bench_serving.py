"""Serving benchmark: runtime cold/warm access + gateway replica scaling.

The archive + runtime subsystem exists so an edge node never pays the
monolithic-blob tax.  This benchmark quantifies that on a synthetic
multi-layer model:

* **cold full decode** — decode every layer up front (the v1 experience);
* **cold first layer** — lazy time-to-first-layer through the runtime;
* **warm layer access** — per-access latency against the hot LRU cache,
  asserted to be >= 10x faster than the cold full decode (in practice it is
  thousands of times faster: a dictionary hit vs a full codec pass);
* **layer-access throughput** at 1/2/4/8 threads hammering the warm cache.

A second experiment drives the multi-model :class:`repro.serve.Gateway`
over a chained synthetic MLP and sweeps the replica pool 1 -> 2 -> 4 under
closed-loop client load.  The sweep runs on the ``REPRO_GATEWAY_BACKEND``
replica backend — default ``process``: worker processes serving zero-copy
from the shared-memory weight cache, the configuration whose throughput
can actually rise with the pool because replicas stop sharing one GIL.
When the primary sweep is process-backed, a second ``thread``-backend
sweep runs under identical load for the thread-vs-process comparison (and
so the thread numbers stay gated against their own baseline).  On a
machine with >= 4 cores the aggregate throughput must rise monotonically
and reach >= ``REPRO_GATEWAY_MIN_SCALING``x (default 2.0) at 4 replicas;
on smaller machines the bar auto-relaxes (replica workers cannot beat the
core count) down to a non-collapse check.  The sweep ends with an
open-loop saturation burst against a depth-8 admission queue, asserting
that overload produces *fast-fail rejections* (bounded queue) rather than
unbounded latency for the admitted requests.

A final A/B experiment measures the cost of the observability layer
itself: the same closed-loop gateway load runs with instrumentation
enabled (the default) and disabled (``repro.obs.metrics.set_enabled``),
arms interleaved, best-of-three per arm.  With no exporter attached the
enabled arm must stay within ``REPRO_OBS_MAX_OVERHEAD_PCT`` (default 2%)
of the disabled arm's throughput.

Results are rendered to ``benchmarks/results/bench_serving.txt`` and the raw
numbers to ``benchmarks/results/bench_serving.json``.  ``REPRO_SCALE=full``
grows the synthetic layers to paper-ish sizes; ``REPRO_BENCH_SMOKE=1``
shrinks the gateway load for CI smoke runs.
"""

from __future__ import annotations

import os

# The replica sweep measures *process-level* parallelism: one replica must
# not silently fan its matmuls across every core via BLAS threading, or the
# 1-replica baseline already saturates the machine.  Pin BLAS to one thread
# per op before numpy loads (no-op when the user already chose).
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import json

import numpy as np

from common import RESULTS_DIR, scale_factor, write_result
from repro.analysis import format_bytes, render_table
from repro.core.encoder import DeepSZEncoder
from repro.pruning.magnitude import prune_weights
from repro.pruning.sparse_format import encode_sparse
from repro.serve.bench import (
    async_gateway_benchmark,
    gateway_benchmark,
    serving_benchmark,
)
from repro.store import archive_bytes

#: Paper-ish fc-layer shapes (AlexNet fc6/fc7/fc8), shrunk by REPRO_SCALE.
_LAYER_SHAPES = {"fc6": (9216, 4096), "fc7": (4096, 4096), "fc8": (4096, 1000)}
_DENSITY = 0.1
_ERROR_BOUND = 1e-3


def _synthetic_archive() -> bytes:
    scale = scale_factor()
    rng = np.random.default_rng(42)
    sparse = {}
    for name, (rows, cols) in _LAYER_SHAPES.items():
        shape = (max(8, int(rows * scale)), max(8, int(cols * scale)))
        weights = (rng.standard_normal(shape) * 0.04).astype(np.float32)
        pruned, _ = prune_weights(weights, _DENSITY)
        sparse[name] = encode_sparse(pruned)
    model = DeepSZEncoder().encode(
        "bench-serving", sparse, {name: _ERROR_BOUND for name in sparse}
    )
    return archive_bytes(model)


#: Chained MLP shapes for the gateway sweep: each layer's in-features equal
#: the previous layer's out-features ((out, in) convention, ``h @ W.T``).
_GATEWAY_LAYERS = "g6=512x768:0.1,g7=256x512:0.1,g8=64x256:0.25"
_REPLICA_SWEEP = (1, 2, 4)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _gateway_archive(seed: int) -> bytes:
    from repro.cli import synthetic_sparse_layers

    sparse = synthetic_sparse_layers(_GATEWAY_LAYERS, seed=seed)
    model = DeepSZEncoder().encode(
        f"bench-gateway-{seed}", sparse, {name: _ERROR_BOUND for name in sparse}
    )
    return archive_bytes(model)


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):  # honours cgroup/affinity limits
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # macOS/Windows


def _gateway_backend() -> str:
    backend = os.environ.get("REPRO_GATEWAY_BACKEND", "process")
    if backend not in ("thread", "process"):
        raise SystemExit(
            f"REPRO_GATEWAY_BACKEND={backend!r} is not one of: thread, process"
        )
    return backend


def _replica_sweep(
    sources, sparse_flags, *, backend, clients, requests_per_client, burst,
    saturate_last=True,
) -> dict:
    sweep: dict = {}
    for count in _REPLICA_SWEEP:
        saturate = saturate_last and count == _REPLICA_SWEEP[-1]
        sweep[str(count)] = gateway_benchmark(
            sources,
            replicas=count,
            clients=clients,
            requests_per_client=requests_per_client,
            burst=burst,
            policy="round-robin",
            sparse=sparse_flags,
            batch_size=16,
            backend=backend,
            # The sweep varies replicas only: a generous in-service cap
            # keeps admission control out of the scaling measurement.
            max_concurrency=clients * burst,
            seed=0,
            saturation_queue_depth=8 if saturate else None,
        )
    return sweep


def bench_gateway_scaling() -> dict:
    """Sweep gateway replicas 1 -> 4; assert scaling + bounded overload."""
    cores = _usable_cores()
    backend = _gateway_backend()
    clients = 4 if _smoke() else 8
    requests_per_client = 32 if _smoke() else 96
    burst = 16
    # Two models, one dense and one compressed-domain sparse, to exercise
    # the multi-model path under the same load the assertions read.
    sources = {"dense": _gateway_archive(seed=1), "sparse": _gateway_archive(seed=2)}
    sparse_flags = {"dense": False, "sparse": True}

    sweep = _replica_sweep(
        sources, sparse_flags, backend=backend,
        clients=clients, requests_per_client=requests_per_client, burst=burst,
    )

    rates = [sweep[str(count)]["throughput_rps"] for count in _REPLICA_SWEEP]
    scaling = rates[-1] / rates[0] if rates[0] else 0.0
    saturation = sweep[str(_REPLICA_SWEEP[-1])]["saturation"]

    rows = [
        [
            str(count),
            f"{sweep[str(count)]['throughput_rps']:,.0f} req/s",
            f"{sweep[str(count)]['latency_ms'].get('p50', 0.0):.2f} ms",
            f"{sweep[str(count)]['latency_ms'].get('p99', 0.0):.2f} ms",
        ]
        for count in _REPLICA_SWEEP
    ]
    rows.append(["4 vs 1", f"{scaling:.2f}x", "", ""])
    text = render_table(
        ["replicas", "aggregate throughput", "p50", "p99"],
        rows,
        title=(
            f"gateway scaling [{backend} backend]: 2 models (dense + sparse), "
            f"{clients} clients, {cores} core(s)"
        ),
    )
    text += (
        f"\nsaturation @ queue depth {saturation['queue_depth_limit']}: "
        f"{saturation['offered']} offered -> {saturation['admitted']} admitted, "
        f"{saturation['rejected']} rejected ({saturation['rejection_rate']:.0%}), "
        f"admitted p99 {saturation['latency_ms'].get('p99', 0.0):.1f} ms"
    )
    print(text)

    # Scaling bar: replica threads cannot outrun the core count — a replica
    # pool only pays off on parallel hardware, and on a 1-core machine the
    # extra server threads are pure scheduling overhead.  The default
    # expectation therefore follows the physics (>= 2x at 4 replicas on
    # >= 4 cores, >= 1.15x on 2-3 cores, report-only on 1 core);
    # REPRO_GATEWAY_MIN_SCALING overrides both ways for noisy/shared CI
    # runners.
    if cores >= 4:
        default_min, monotonic_tol = 2.0, 0.9
    elif cores >= 2:
        default_min, monotonic_tol = 1.15, None
    else:
        default_min, monotonic_tol = 0.0, None
    min_scaling = float(os.environ.get("REPRO_GATEWAY_MIN_SCALING", default_min))
    monotonic_env = os.environ.get("REPRO_GATEWAY_MONOTONIC_TOL")
    if monotonic_env is not None:
        monotonic_tol = float(monotonic_env) or None
    if min_scaling <= 0.0:
        monotonic_tol = None  # report-only mode
    if monotonic_tol is not None:
        for prev, cur in zip(rates, rates[1:]):
            assert cur >= prev * monotonic_tol, (
                f"gateway throughput fell from {prev:.0f} to {cur:.0f} req/s "
                f"while adding replicas on {cores} core(s): {rates}"
            )
    if min_scaling > 0.0:
        assert scaling >= min_scaling, (
            f"gateway 4-replica scaling {scaling:.2f}x is below the "
            f"{min_scaling:.2f}x bar on {cores} core(s): {rates}"
        )
    else:
        print(
            f"note: {cores} core(s) cannot express replica parallelism; "
            "scaling asserts skipped (set REPRO_GATEWAY_MIN_SCALING to force)"
        )

    # Overload bar: the burst must be shed by the bounded queue (fast-fail
    # rejections) while every admitted request still resolves promptly.
    assert saturation["rejected"] > 0, f"saturation produced no rejections: {saturation}"
    assert saturation["admitted"] > 0, f"saturation admitted nothing: {saturation}"
    assert saturation["latency_ms"].get("p99", float("inf")) < 2000.0, (
        f"admitted-request p99 exploded under saturation: {saturation}"
    )

    result = {
        "backend": backend,
        "cores": cores,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "throughput_rps": {str(c): r for c, r in zip(_REPLICA_SWEEP, rates)},
        "scaling_4v1": scaling,
        "min_scaling": min_scaling,
        "saturation": saturation,
        "sweep": sweep,
    }

    # Thread-vs-process comparison: when the primary sweep is process-backed
    # the thread backend re-runs under identical load, report-only (no
    # scaling asserts — it shares one GIL by design) but still extracted to
    # gated baseline metrics so the thread path keeps its current numbers.
    if backend == "process":
        thread_sweep = _replica_sweep(
            sources, sparse_flags, backend="thread",
            clients=clients, requests_per_client=requests_per_client,
            burst=burst, saturate_last=False,
        )
        thread_rates = [
            thread_sweep[str(count)]["throughput_rps"] for count in _REPLICA_SWEEP
        ]
        thread_scaling = thread_rates[-1] / thread_rates[0] if thread_rates[0] else 0.0
        result["thread_comparison"] = {
            "throughput_rps": {
                str(c): r for c, r in zip(_REPLICA_SWEEP, thread_rates)
            },
            "scaling_4v1": thread_scaling,
        }
        top = _REPLICA_SWEEP[-1]
        ratio = rates[-1] / thread_rates[-1] if thread_rates[-1] else 0.0
        print(
            f"process vs thread @ {top} replicas: {rates[-1]:,.0f} vs "
            f"{thread_rates[-1]:,.0f} req/s ({ratio:.2f}x) on {cores} core(s)"
        )

    return result


def bench_async_front_door() -> dict:
    """A/B the asyncio front door against the thread-dispatcher gateway.

    Both arms drive the *same* process-backed replica over the same archive
    with 64 closed-loop clients — coroutines on one event loop versus 64
    client threads plus per-model dispatcher threads.  Arms are interleaved
    and best-of-three per arm (this host's run-to-run noise is far larger
    than the architectural delta).  The asyncio front door must at least
    match the thread dispatcher: ratio >= ``REPRO_ASYNC_MIN_RATIO``
    (default 0.9, a noise floor below parity; set it to 0 to report only).
    """
    source = {"model": _gateway_archive(seed=4)}
    clients = 64
    requests_per_client = 8 if _smoke() else 32

    async_rps, sync_rps = [], []
    for _ in range(3):
        out = async_gateway_benchmark(
            source,
            replicas=1,
            clients=clients,
            requests_per_client=requests_per_client,
            backend="process",
            max_concurrency=clients,
            seed=0,
        )
        assert out["failures"] == 0 and out["rejected"] == 0, out
        async_rps.append(out["throughput_rps"])
        out = gateway_benchmark(
            source,
            replicas=1,
            clients=clients,
            requests_per_client=requests_per_client,
            backend="process",
            max_concurrency=clients,
            seed=0,
            saturation_queue_depth=None,
        )
        assert out["failures"] == 0 and out["rejected"] == 0, out
        sync_rps.append(out["throughput_rps"])

    best_async, best_sync = max(async_rps), max(sync_rps)
    ratio = best_async / best_sync if best_sync else 0.0
    min_ratio = float(os.environ.get("REPRO_ASYNC_MIN_RATIO", "0.9"))
    print(
        f"async front door vs thread dispatcher @ {clients} clients: "
        f"{best_async:,.0f} vs {best_sync:,.0f} req/s ({ratio:.2f}x, "
        f"floor {min_ratio:.2f}x)"
    )
    if min_ratio > 0.0:
        assert ratio >= min_ratio, (
            f"asyncio front door fell to {ratio:.2f}x of the thread "
            f"dispatcher ({best_async:.0f} vs {best_sync:.0f} req/s at "
            f"{clients} clients; async runs {async_rps}, "
            f"thread runs {sync_rps})"
        )
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "async_rps": best_async,
        "thread_dispatcher_rps": best_sync,
        "ratio": ratio,
        "min_ratio": min_ratio,
    }


def bench_obs_overhead() -> dict:
    """A/B the gateway hot path with observability enabled vs disabled.

    The obs layer's contract is "free when nobody is looking": with no
    exporter attached and no scrape in flight, the instrumentation must
    cost <= ``REPRO_OBS_MAX_OVERHEAD_PCT`` (default 2%) of end-to-end
    throughput.  Arms are interleaved and the best of three runs per arm
    is compared, so a noisy-neighbour blip in one run cannot manufacture
    a phantom overhead.
    """
    from repro.obs import metrics as obs_metrics

    source = {"model": _gateway_archive(seed=3)}
    requests_per_client = 24 if _smoke() else 64

    def throughput() -> float:
        out = gateway_benchmark(
            source,
            replicas=2,
            clients=4,
            requests_per_client=requests_per_client,
            burst=2,
            backend="thread",
            seed=0,
            saturation_queue_depth=None,
        )
        return out["throughput_rps"]

    enabled_rps, disabled_rps = [], []
    for _ in range(3):
        assert obs_metrics.is_enabled(), "obs must start enabled (the default)"
        enabled_rps.append(throughput())
        obs_metrics.set_enabled(False)
        try:
            disabled_rps.append(throughput())
        finally:
            obs_metrics.set_enabled(True)

    best_on, best_off = max(enabled_rps), max(disabled_rps)
    overhead_pct = (best_off - best_on) / best_off * 100.0 if best_off else 0.0
    max_pct = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD_PCT", "2.0"))
    print(
        f"obs overhead: enabled {best_on:,.0f} vs disabled {best_off:,.0f} req/s "
        f"-> {overhead_pct:+.2f}% (limit {max_pct:.1f}%)"
    )
    assert overhead_pct <= max_pct, (
        f"observability overhead {overhead_pct:+.2f}% exceeds the "
        f"{max_pct:.1f}% limit: enabled best {best_on:.0f} req/s vs "
        f"disabled best {best_off:.0f} req/s "
        f"(enabled runs {enabled_rps}, disabled runs {disabled_rps})"
    )
    return {
        "enabled_rps": best_on,
        "disabled_rps": best_off,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": max_pct,
    }


def bench_serving_cold_vs_warm() -> None:
    blob = _synthetic_archive()
    results = serving_benchmark(
        blob,
        concurrency=(1, 2, 4, 8),
        accesses_per_thread=500,
        warm_repeats=50,
    )
    results["gateway_sweep"] = bench_gateway_scaling()
    results["async_front_door"] = bench_async_front_door()
    results["obs_overhead"] = bench_obs_overhead()

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "bench_serving.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )

    rows = [
        ["cold full decode", f"{results['cold_full_decode_s'] * 1e3:.2f} ms"],
        ["cold first layer", f"{results['cold_first_layer_s'] * 1e3:.2f} ms"],
        ["warm layer access", f"{results['warm_layer_access_s'] * 1e6:.2f} us"],
        ["warm vs cold speedup", f"{results['warm_vs_cold_speedup']:.0f}x"],
    ]
    for workers, rate in results["throughput_accesses_per_s"].items():
        rows.append([f"throughput @{workers} threads", f"{rate:,.0f} accesses/s"])
    text = render_table(
        ["metric", "value"],
        rows,
        title=(
            f"serving runtime: {results['layers']} layers, "
            f"archive {format_bytes(results['archive_bytes'])}, "
            f"decoded {format_bytes(results['decoded_bytes'])}"
        ),
    )
    print(text)
    write_result("bench_serving", text)

    # The acceptance bar: a warm cached access must beat re-decoding the
    # whole model by >= 10x (it is a lock + dict hit vs a full codec pass).
    assert results["warm_vs_cold_speedup"] >= 10.0, results
    # Lazy first-layer access must not cost more than the full decode.
    assert results["cold_first_layer_s"] <= results["cold_full_decode_s"] * 1.5, results


if __name__ == "__main__":
    bench_serving_cold_vs_warm()
