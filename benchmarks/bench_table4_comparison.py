"""Table 4 — per-layer compression ratios: Deep Compression vs Weightless vs DeepSZ.

All three encoders consume the same pruned sparse layers.  Deep Compression
uses its published 5-bit codebooks; Weightless encodes only the largest
fc-layer (as in the original paper).  The headline the table must reproduce:
DeepSZ's overall ratio beats Deep Compression's on every network (the paper
reports 1.21x–1.43x improvements).
"""

from __future__ import annotations

import pytest

from common import BENCH_MODELS, write_result
from repro.analysis import comparison_table
from repro.baselines import (
    DeepCompressionConfig,
    DeepCompressionEncoder,
    WeightlessConfig,
    WeightlessEncoder,
)
from repro.nn import zoo


@pytest.mark.parametrize("model", BENCH_MODELS)
def bench_table4_ratio_comparison(benchmark, zoo_pruned, deepsz_results, model):
    pruned, _, _ = zoo_pruned(model)
    deepsz = deepsz_results(model)

    dc_encoder = DeepCompressionEncoder(DeepCompressionConfig(bits=5))
    wl_encoder = WeightlessEncoder(WeightlessConfig(value_bits=4, slot_bits=9, seed=5))

    def encode_baselines():
        dc = dc_encoder.encode_network(pruned.sparse_layers)
        target = wl_encoder.pick_target_layer(pruned.sparse_layers)
        wl = {target: wl_encoder.encode_layer(target, pruned.sparse_layers[target])}
        return dc, wl

    dc_results, wl_results = benchmark.pedantic(encode_baselines, rounds=1, iterations=1)

    per_layer = {}
    dc_total = wl_known_total = 0
    for name, sparse in pruned.sparse_layers.items():
        dc_total += dc_results[name].compressed_bytes
        per_layer[name] = {
            "deep_compression": dc_results[name].ratio,
            "weightless": wl_results[name].ratio if name in wl_results else None,
            "deepsz": deepsz.layer_reports[name].deepsz_ratio,
        }
    per_layer["overall"] = {
        "deep_compression": deepsz.original_fc_bytes / dc_total,
        "weightless": None,
        "deepsz": deepsz.compression_ratio,
    }

    text = comparison_table(zoo.PAPER_NAME[model] + " (mini)", per_layer)
    write_result(f"table4_comparison_{model}", text)

    # Headline: DeepSZ beats Deep Compression overall (paper: 1.21x-1.43x).
    improvement = per_layer["overall"]["deepsz"] / per_layer["overall"]["deep_compression"]
    assert improvement > 1.0, f"{model}: DeepSZ {improvement:.2f}x vs Deep Compression"
    # And on the dominant (largest) layer specifically.
    largest = max(
        pruned.sparse_layers, key=lambda n: pruned.sparse_layers[n].dense_bytes
    )
    assert per_layer[largest]["deepsz"] > per_layer[largest]["deep_compression"]
