"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
helpers here handle the two cross-cutting concerns:

* **scale** — ``REPRO_SCALE=full`` in the environment runs the
  compression-only experiments at the paper's real layer dimensions
  (hundreds of MB of weights); the default ``small`` scale shrinks the
  synthetic paper-scale layers so the whole harness finishes in minutes on a
  laptop.  Accuracy-dependent experiments always run on the trained mini
  networks from :mod:`repro.nn.zoo`.
* **result files** — each benchmark writes its rendered table / series to
  ``benchmarks/results/<name>.txt`` so the outputs referenced by
  EXPERIMENTS.md can be regenerated and diffed.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The zoo models, in the paper's order (they stand in for LeNet-300-100,
#: LeNet-5, AlexNet and VGG-16 respectively).
BENCH_MODELS = ["lenet-300-100", "lenet-5", "alexnet-mini", "vgg-16-mini"]


def scale_factor() -> float:
    """Linear shrink factor applied to paper-scale layer dimensions."""
    mode = os.environ.get("REPRO_SCALE", "small").lower()
    if mode in ("full", "paper", "1", "1.0"):
        return 1.0
    if mode in ("small", "default", ""):
        return 0.15
    try:
        value = float(mode)
    except ValueError:
        return 0.15
    return min(max(value, 0.01), 1.0)


def write_result(name: str, text: str) -> Path:
    """Write a rendered experiment output under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path
