"""Structured logging for the serving stack.

The serve layer used to swallow cleanup anomalies (``except Exception:
pass`` around pipe sends and shm unlinks), which made worker crashes and
segment-cleanup bugs invisible.  Every such site now reports through a
``repro.*`` stdlib logger obtained here.

By default the ``repro`` logger tree carries only a ``NullHandler`` — a
library must not write to stderr uninvited — so the cost of a swallowed
anomaly is one disabled ``logger.debug()`` call.  Applications can attach
their own handlers, and setting ``REPRO_LOG=<level>`` (e.g. ``REPRO_LOG=
debug``) attaches a stderr handler for ad-hoc troubleshooting.
"""

from __future__ import annotations

import logging
import os
import threading

__all__ = ["get_logger"]

_ROOT_NAME = "repro"
_ENV_VAR = "REPRO_LOG"

_setup_lock = threading.Lock()
_configured = False


def _ensure_configured() -> None:
    global _configured
    with _setup_lock:
        if _configured:
            return
        _configured = True
        root = logging.getLogger(_ROOT_NAME)
        root.addHandler(logging.NullHandler())
        level = os.environ.get(_ENV_VAR, "").strip()
        if level:
            handler = logging.StreamHandler()
            handler.setFormatter(
                logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
            )
            root.addHandler(handler)
            root.setLevel(level.upper())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (``get_logger("serve.worker")``)."""
    _ensure_configured()
    if name.startswith(_ROOT_NAME + ".") or name == _ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
