"""Sampled request tracing with spans that survive process boundaries.

A trace is a tree of spans covering one gateway request: admission wait,
shard decision, replica queue, batch assembly, per-layer decode-on-demand,
forward pass.  Sampling happens once, at the gateway front door
(:meth:`Tracer.sample`); everything downstream only does tracing work for
requests that carry a span.

**Cross-process stitching.**  A worker process cannot share a ``Tracer``
with the gateway, so span *context* (``{"trace_id", "span_id"}``) rides the
request pipe and the worker ships finished span **dicts** back with the
response batch (:func:`span_dict`); the parent exports them through its own
tracer (:meth:`Tracer.export_dicts`).  Timestamps are wall-clock
``time.time()`` on both sides — the one clock processes share — so a
worker's spans nest correctly under the gateway-side root.

Exported spans are flat JSON objects with exactly :data:`SPAN_FIELDS`;
:class:`JsonlSpanExporter` writes one per line, which is what
``gateway-bench --trace-sample`` produces and CI's validator re-parses.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.obs import metrics as _metrics
from repro.obs.log import get_logger
from repro.utils.errors import ValidationError

__all__ = [
    "SPAN_FIELDS",
    "BufferExporter",
    "JsonlSpanExporter",
    "Span",
    "Tracer",
    "load_trace",
    "span_dict",
    "validate_span",
]

_log = get_logger("obs.trace")

#: Exactly the keys of every exported span dict — pinned by tests and CI.
SPAN_FIELDS = (
    "trace_id",
    "span_id",
    "parent_id",
    "name",
    "start_s",
    "end_s",
    "duration_s",
    "pid",
    "attrs",
)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


def span_dict(
    name: str,
    *,
    trace_id: str,
    parent_id: Optional[str],
    start_s: float,
    end_s: float,
    attrs: Optional[dict] = None,
    span_id: Optional[str] = None,
) -> dict:
    """A finished span as a plain dict — what worker processes ship back."""
    return {
        "trace_id": trace_id,
        "span_id": span_id or _new_id(),
        "parent_id": parent_id,
        "name": name,
        "start_s": float(start_s),
        "end_s": float(end_s),
        "duration_s": max(0.0, float(end_s) - float(start_s)),
        "pid": os.getpid(),
        "attrs": dict(attrs or {}),
    }


def validate_span(record: dict) -> None:
    """Raise :class:`ValueError` unless ``record`` is schema-exact."""
    if not isinstance(record, dict):
        raise ValueError(f"span must be a dict, got {type(record).__name__}")
    if set(record) != set(SPAN_FIELDS):
        missing = set(SPAN_FIELDS) - set(record)
        extra = set(record) - set(SPAN_FIELDS)
        raise ValueError(f"span fields mismatch: missing={sorted(missing)} extra={sorted(extra)}")
    if not isinstance(record["trace_id"], str) or not record["trace_id"]:
        raise ValueError("trace_id must be a non-empty string")
    if not isinstance(record["span_id"], str) or not record["span_id"]:
        raise ValueError("span_id must be a non-empty string")
    if record["parent_id"] is not None and not isinstance(record["parent_id"], str):
        raise ValueError("parent_id must be a string or null")
    if not isinstance(record["name"], str) or not record["name"]:
        raise ValueError("name must be a non-empty string")
    for key in ("start_s", "end_s", "duration_s"):
        if not isinstance(record[key], (int, float)):
            raise ValueError(f"{key} must be numeric")
    if record["duration_s"] < 0:
        raise ValueError("duration_s must be >= 0")
    if not isinstance(record["pid"], int):
        raise ValueError("pid must be an int")
    if not isinstance(record["attrs"], dict):
        raise ValueError("attrs must be a dict")


class Span:
    """One live span; finished spans export through the owning tracer.

    ``start_s``/``end_s`` are wall-clock seconds so spans from different
    processes order on a common axis.  ``finish()`` is idempotent.
    """

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name", "start_s", "end_s", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        start_s: Optional[float] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id or _new_id()
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_s = time.time() if start_s is None else float(start_s)
        self.end_s: Optional[float] = None
        self.attrs = dict(attrs or {})

    def child(
        self, name: str, *, start_s: Optional[float] = None, attrs: Optional[dict] = None
    ) -> "Span":
        return Span(
            self.tracer,
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            start_s=start_s,
            attrs=attrs,
        )

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def context(self) -> Dict[str, str]:
        """What crosses the worker pipe: ``{"trace_id", "span_id"}``."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def to_dict(self) -> dict:
        end = self.end_s if self.end_s is not None else time.time()
        return span_dict(
            self.name,
            trace_id=self.trace_id,
            parent_id=self.parent_id,
            start_s=self.start_s,
            end_s=end,
            attrs=self.attrs,
            span_id=self.span_id,
        )

    def finish(self, end_s: Optional[float] = None) -> None:
        if self.end_s is not None:
            return
        self.end_s = time.time() if end_s is None else float(end_s)
        self.tracer._export(self.to_dict())

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("status", "error")
        self.finish()


class Tracer:
    """Sampling decision + export fan-out; cheap when idle.

    With no exporter or a zero sample rate, :meth:`sample` is a couple of
    attribute reads — the serving hot path pays nothing for requests that
    are not traced.  The sampling RNG is seedable for deterministic tests.
    """

    def __init__(
        self, sample_rate: float = 0.0, exporter=None, *, seed: Optional[int] = None
    ) -> None:
        rate = float(sample_rate)
        if not 0.0 <= rate <= 1.0:
            raise ValidationError("sample_rate must be in [0, 1]")
        self._rate = rate
        self._exporter = exporter
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()

    @property
    def sample_rate(self) -> float:
        return self._rate

    @property
    def exporter(self):
        return self._exporter

    def sample(self) -> bool:
        """Decide once per request whether to build a span tree."""
        if self._exporter is None or self._rate <= 0.0 or not _metrics.is_enabled():
            return False
        if self._rate >= 1.0:
            return True
        with self._rng_lock:
            return self._rng.random() < self._rate

    def start_span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        start_s: Optional[float] = None,
        attrs: Optional[dict] = None,
    ) -> Span:
        return Span(
            self, name, trace_id=trace_id, parent_id=parent_id, start_s=start_s, attrs=attrs
        )

    def _export(self, record: dict) -> None:
        exporter = self._exporter
        if exporter is None:
            return
        try:
            exporter.export(record)
        except Exception:
            _log.warning("span export failed", exc_info=True)

    def export_dicts(self, records: Iterable[dict]) -> None:
        """Export pre-built span dicts (spans shipped back from workers)."""
        for record in records:
            self._export(record)

    def close(self) -> None:
        exporter = self._exporter
        if exporter is not None and hasattr(exporter, "close"):
            exporter.close()


class BufferExporter:
    """Collects spans in memory — the test and introspection exporter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.spans: List[dict] = []

    def export(self, record: dict) -> None:
        with self._lock:
            self.spans.append(record)

    def by_trace(self) -> Dict[str, List[dict]]:
        with self._lock:
            spans = list(self.spans)
        out: Dict[str, List[dict]] = {}
        for span in spans:
            out.setdefault(span["trace_id"], []).append(span)
        return out

    def close(self) -> None:  # symmetry with file exporters
        pass


class JsonlSpanExporter:
    """One JSON object per line, flushed per span so tails are readable."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        # A dedicated I/O lock (never nested under state locks): it guards
        # exactly this append-only handle, so holding it across the write
        # is the point, not a lock-held-blocking hazard.
        self._io_lock = threading.Lock()
        self._handle = None
        self.exported = 0

    @property
    def path(self) -> Path:
        return self._path

    def export(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._io_lock:
            if self._handle is None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self._path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            self.exported += 1

    def close(self) -> None:
        with self._io_lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def load_trace(path: Union[str, Path]) -> List[dict]:
    """Parse a span JSONL file, validating every record against the schema."""
    spans: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from None
            try:
                validate_span(record)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            spans.append(record)
    return spans
