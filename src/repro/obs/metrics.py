"""Dependency-free metrics: registry, histograms, and cross-process counters.

Three layers, matching how the serving stack is deployed:

* **In-process instruments** — :class:`Counter`, :class:`Gauge`, and
  :class:`Histogram` families with Prometheus-style names and labels,
  collected by a :class:`MetricsRegistry`.  The registry is *pull-based*:
  hot paths update plain counters under a lock (or nothing at all — the
  gateway collector reads the serving layer's existing stats at scrape
  time), and exposition walks the instruments only when someone asks.
* **Cross-process primitives** — :class:`SharedCounter` (an
  ``mp.Value('q')`` with its lock, safe for many writers) and
  :class:`MetricsBlock` (a fixed array of int64 slots in one
  ``multiprocessing.shared_memory`` segment, single writer per slot), so
  ``ProcessServer`` workers publish into the same per-host registry as
  thread replicas.  Blocks are named ``repro_obs_<pid>_<seq>`` and tracked
  in an ``atexit`` registry, so the ``/dev/shm`` leak scan that guards the
  weight cache covers metric blocks too.
* **Exposition** — :meth:`MetricsRegistry.to_prometheus` (text format with
  cumulative ``_bucket``/``_sum``/``_count`` series) and
  :meth:`MetricsRegistry.to_json`, plus a strict :func:`parse_prometheus`
  used by CI to validate the exposition line format.

Latency histograms are fixed log-scale buckets (default 10 µs → ~5.6 min)
plus a bounded, deterministically seeded reservoir: percentiles are exact
while the sample count fits the reservoir and statistically faithful after,
with flat memory forever — the replacement for the unbounded per-request
latency lists the servers used to keep.

:func:`set_enabled` is a process-wide kill switch for the *optional*
instrumentation (decode-stage profiling, trace sampling, fetch timing).
Stats-bearing counters ignore it — disabling observability must never make
``stats()`` lie — which is exactly what the overhead benchmark A/Bs.
"""

from __future__ import annotations

import atexit
import bisect
import itertools
import math
import multiprocessing
import os
import random
import re
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.log import get_logger
from repro.utils.errors import ValidationError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsBlock",
    "MetricsRegistry",
    "SharedCounter",
    "is_enabled",
    "log_buckets",
    "parse_prometheus",
    "registry",
    "set_enabled",
]

_log = get_logger("obs.metrics")

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

# -- enable switch ----------------------------------------------------------

_ENABLED = True


def set_enabled(enabled: bool) -> None:
    """Toggle the optional instrumentation (profiling hooks, sampling)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def is_enabled() -> bool:
    return _ENABLED


# -- histogram --------------------------------------------------------------


def log_buckets(start: float = 1e-5, factor: float = 2.0, count: int = 26) -> Tuple[float, ...]:
    """Log-scale bucket upper bounds: ``start * factor**i`` for ``count`` steps."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValidationError("log_buckets needs start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default latency buckets in seconds: 10 µs doubling up to ~5.6 minutes.
DEFAULT_LATENCY_BUCKETS = log_buckets()

_DEFAULT_RESERVOIR = 512


class Histogram:
    """Fixed-bucket histogram plus a bounded reservoir, thread-safe.

    Buckets use Prometheus ``le`` semantics (cumulative on exposition) with
    an implicit ``+Inf`` overflow slot.  Percentiles come from an
    Algorithm-R reservoir with a deterministic seed: exact while fewer than
    ``reservoir_size`` values were observed, an unbiased sample after.
    Memory is O(buckets + reservoir) no matter how long the server runs.
    """

    def __init__(
        self,
        buckets: Optional[Sequence[float]] = None,
        *,
        reservoir_size: int = _DEFAULT_RESERVOIR,
        seed: int = 0,
    ) -> None:
        chosen = buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS
        bounds = tuple(float(b) for b in chosen)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValidationError("histogram buckets must be strictly increasing and non-empty")
        if int(reservoir_size) < 1:
            raise ValidationError("reservoir_size must be >= 1")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir_size = int(reservoir_size)
        self._samples: List[float] = []
        self._seen = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect.bisect_left(self._bounds, value)] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._seen += 1
            if len(self._samples) < self._reservoir_size:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._seen)
                if slot < self._reservoir_size:
                    self._samples[slot] = value

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) estimated from the reservoir."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.asarray(self._samples), q))

    def percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0), *, scale: float = 1.0
    ) -> Dict[str, float]:
        """``{"p50": ..., ...}`` — empty dict when nothing was observed.

        ``scale`` converts units on the way out (e.g. 1e3 for s → ms).
        """
        with self._lock:
            if not self._samples:
                return {}
            values = np.percentile(np.asarray(self._samples) * scale, list(qs))
        return {f"p{int(q)}": float(v) for q, v in zip(qs, values)}

    def _state(self) -> tuple:
        with self._lock:
            return (
                list(self._counts),
                self._count,
                self._sum,
                self._min,
                self._max,
                list(self._samples),
                self._seen,
            )

    def copy(self) -> "Histogram":
        """A consistent snapshot (safe to read without racing writers)."""
        clone = Histogram(self._bounds, reservoir_size=self._reservoir_size)
        (
            clone._counts,
            clone._count,
            clone._sum,
            clone._min,
            clone._max,
            clone._samples,
            clone._seen,
        ) = self._state()
        return clone

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram (returns self).

        Bucket counts and moments add exactly; the merged reservoir keeps
        every sample while the combined set fits, else a size-bounded
        subsample — the same accuracy contract as a single histogram.
        """
        if other._bounds != self._bounds:
            raise ValidationError("cannot merge histograms with different buckets")
        counts, count, total, low, high, samples, seen = other._state()
        with self._lock:
            self._counts = [a + b for a, b in zip(self._counts, counts)]
            self._count += count
            self._sum += total
            self._min = min(self._min, low)
            self._max = max(self._max, high)
            self._seen += seen
            combined = self._samples + samples
            if len(combined) > self._reservoir_size:
                combined = self._rng.sample(combined, self._reservoir_size)
            self._samples = combined
        return self

    def to_dict(self) -> dict:
        counts, count, total, low, high, _, _ = self._state()
        buckets = []
        cumulative = 0
        for bound, n in zip(self._bounds, counts):
            cumulative += n
            buckets.append({"le": f"{bound:.9g}", "count": cumulative})
        buckets.append({"le": "+Inf", "count": count})
        return {
            "count": count,
            "sum": total,
            "min": low if count else None,
            "max": high if count else None,
            "buckets": buckets,
        }


# -- instruments and registry ----------------------------------------------


@dataclass
class MetricSample:
    """One exposition sample: a scalar, or a whole histogram series."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    labels: Dict[str, str] = field(default_factory=dict)
    value: Optional[float] = None
    histogram: Optional[dict] = None


class Counter:
    """Monotonic float counter (one labelled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Set/inc/dec gauge (one labelled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class _Family:
    """A named metric with a fixed label set and one child per label value."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        if not _NAME_RE.match(name):
            raise ValidationError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label) or label == "le":
                raise ValidationError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: Dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        if set(labels) != set(self.label_names):
            raise ValidationError(
                f"metric {self.name} takes labels {self.label_names}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
        return child

    def _solo(self):
        if self.label_names:
            raise ValidationError(f"metric {self.name} is labelled; call .labels() first")
        return self.labels()

    def _child_sample(self, child, labels: Dict[str, str]) -> MetricSample:
        return MetricSample(
            name=self.name, kind=self.kind, help=self.help, labels=labels, value=child.value
        )

    def samples(self) -> List[MetricSample]:
        with self._lock:
            items = sorted(self._children.items())
        return [
            self._child_sample(child, dict(zip(self.label_names, key)))
            for key, child in items
        ]


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    @property
    def value(self) -> float:
        return self._solo().value


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()

    def set(self, value: float) -> None:
        self._solo().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    @property
    def value(self) -> float:
        return self._solo().value


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, label_names)
        self._buckets = tuple(buckets) if buckets is not None else None

    def _make_child(self) -> Histogram:
        return Histogram(self._buckets)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def _child_sample(self, child, labels: Dict[str, str]) -> MetricSample:
        return MetricSample(
            name=self.name,
            kind=self.kind,
            help=self.help,
            labels=labels,
            histogram=child.to_dict(),
        )


class MetricsRegistry:
    """Named instruments plus pull-time collectors, with exposition.

    ``counter/gauge/histogram`` get-or-create a family (re-registration
    with a different kind or label set is an error).  Collectors are
    callables returning :class:`MetricSample` lists, invoked only at scrape
    time — the mechanism by which the gateway publishes its per-model and
    per-replica state without adding a single hot-path write.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[[], Iterable[MetricSample]]] = []

    # -- instruments -------------------------------------------------------
    def _family(self, cls, name: str, help: str, labels: Sequence[str], **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = cls(name, help, labels, **kwargs)
                return family
        if type(family) is not cls or family.label_names != tuple(labels):
            raise ValidationError(
                f"metric {name!r} already registered with a different kind or label set"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> CounterFamily:
        return self._family(CounterFamily, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> GaugeFamily:
        return self._family(GaugeFamily, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> HistogramFamily:
        return self._family(HistogramFamily, name, help, labels, buckets=buckets)

    # -- collectors --------------------------------------------------------
    def register_collector(self, collector: Callable[[], Iterable[MetricSample]]) -> None:
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(self, collector: Callable[[], Iterable[MetricSample]]) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def reset(self) -> None:
        """Drop every instrument and collector (tests and benchmark A/Bs)."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()

    # -- exposition --------------------------------------------------------
    def samples(self) -> List[MetricSample]:
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors)
        out: List[MetricSample] = []
        for family in families:
            out.extend(family.samples())
        for collector in collectors:
            try:
                out.extend(collector())
            except Exception:
                _log.warning("metrics collector %r failed", collector, exc_info=True)
        return out

    def to_json(self) -> dict:
        """JSON exposition: ``{"generated_unix", "metrics": {name: ...}}``."""
        metrics: Dict[str, dict] = {}
        for sample in self.samples():
            entry = metrics.setdefault(
                sample.name, {"kind": sample.kind, "help": sample.help, "samples": []}
            )
            item: dict = {"labels": dict(sample.labels)}
            if sample.histogram is not None:
                item["histogram"] = sample.histogram
            else:
                item["value"] = sample.value
            entry["samples"].append(item)
        return {"generated_unix": time.time(), "metrics": metrics}

    def to_prometheus(self) -> str:
        """Prometheus text exposition (histograms as ``_bucket/_sum/_count``)."""
        grouped: Dict[str, List[MetricSample]] = {}
        for sample in self.samples():
            grouped.setdefault(sample.name, []).append(sample)
        lines: List[str] = []
        for name, group in grouped.items():
            head = group[0]
            if head.help:
                lines.append(f"# HELP {name} {_escape_help(head.help)}")
            lines.append(f"# TYPE {name} {head.kind}")
            for sample in group:
                base = _format_labels(sample.labels)
                if sample.histogram is not None:
                    hist = sample.histogram
                    for bucket in hist["buckets"]:
                        labels = dict(sample.labels)
                        labels["le"] = bucket["le"]
                        lines.append(f"{name}_bucket{_format_labels(labels)} {bucket['count']}")
                    lines.append(f"{name}_sum{base} {_format_value(hist['sum'])}")
                    lines.append(f"{name}_count{base} {hist['count']}")
                else:
                    lines.append(f"{name}{base} {_format_value(sample.value)}")
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(value: str) -> str:
    # The text format allows raw text after HELP but newlines must be
    # escaped or they start a bogus new line.
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


_GLOBAL_LOCK = threading.Lock()
_GLOBAL: Optional[MetricsRegistry] = None


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
        return _GLOBAL


# -- prometheus line-format parser ------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+([^\s]+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_PROM_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _parse_label_block(block: str, lineno: int) -> Dict[str, str]:
    body = block[1:-1]
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _LABEL_PAIR_RE.match(body, pos)
        if match is None:
            raise ValueError(f"line {lineno}: malformed label block {block!r}")
        labels[match.group(1)] = _unescape_label(match.group(2))
        pos = match.end()
        if pos < len(body):
            if body[pos] != ",":
                raise ValueError(f"line {lineno}: malformed label block {block!r}")
            pos += 1
    return labels


def parse_prometheus(text: str) -> Dict[str, dict]:
    """Strictly parse Prometheus text exposition.

    Returns ``{series_name: {"type", "help", "samples": [(labels, value)]}}``
    where histogram series appear under their literal ``_bucket``/``_sum``/
    ``_count`` names with ``type``/``help`` attached to the base name entry.
    Raises :class:`ValueError` on any malformed line — this is the CI
    validator for our own exposition, so it refuses rather than skips.
    """
    series: Dict[str, dict] = {}

    def entry(name: str) -> dict:
        return series.setdefault(name, {"type": None, "help": None, "samples": []})

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(None, 1)
            if not parts or not _NAME_RE.match(parts[0]):
                raise ValueError(f"line {lineno}: malformed HELP line {line!r}")
            entry(parts[0])["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2 or not _NAME_RE.match(parts[0]) or parts[1] not in _PROM_TYPES:
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            entry(parts[0])["type"] = parts[1]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        name, label_block, raw_value = match.groups()
        labels = _parse_label_block(label_block, lineno) if label_block else {}
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(f"line {lineno}: non-numeric value {raw_value!r}") from None
        entry(name)["samples"].append((labels, value))
    return series


# -- cross-process primitives ------------------------------------------------


class SharedCounter:
    """A cross-process counter: ``mp.Value('q')`` guarded by its own lock.

    Safe for concurrent writers in many processes (unlike
    :class:`MetricsBlock` slots, which are single-writer).  This is the
    idiom the in-flight gauge already uses; exposed here so other
    multi-writer counters do not reinvent it.
    """

    def __init__(self, ctx=None, initial: int = 0) -> None:
        self._cell = (ctx or multiprocessing).Value("q", int(initial))

    def add(self, amount: int = 1) -> None:
        with self._cell.get_lock():
            self._cell.value += int(amount)

    def reset(self) -> None:
        with self._cell.get_lock():
            self._cell.value = 0

    @property
    def value(self) -> int:
        return int(self._cell.value)


_BLOCKS_LOCK = threading.Lock()
_LIVE_BLOCKS: "List[MetricsBlock]" = []
_BLOCK_SEQ = itertools.count(1)


def _unlink_blocks_at_exit() -> None:
    with _BLOCKS_LOCK:
        blocks = list(_LIVE_BLOCKS)
    for block in blocks:
        block.close()


atexit.register(_unlink_blocks_at_exit)


class MetricsBlock:
    """Named int64 metric slots in one shared-memory segment.

    The parent :meth:`create`\\ s the block and ships its :attr:`manifest`
    (segment name + slot order, a few dozen bytes) to the worker, which
    :meth:`attach`\\ es and becomes the **single writer**: aligned 8-byte
    stores are atomic on every platform CPython supports, so the parent
    reads live values without any cross-process lock.  Counters that need
    *multiple* writers belong in :class:`SharedCounter` instead.

    The creating process owns the segment: ``close()`` there unlinks it,
    and an ``atexit`` registry unlinks anything still live on unclean exit
    — the same discipline as the shared weight store, and required by the
    CI ``/dev/shm`` leak scan (segments are named ``repro_obs_*``).
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        slots: Sequence[str],
        *,
        owner: bool,
    ) -> None:
        self._segment = segment
        self._slots = tuple(slots)
        self._index = {name: i for i, name in enumerate(self._slots)}
        self._cells: Optional[np.ndarray] = np.ndarray(
            (len(self._slots),), dtype=np.int64, buffer=segment.buf
        )
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, slots: Sequence[str]) -> "MetricsBlock":
        slots = tuple(slots)
        if not slots or len(set(slots)) != len(slots):
            raise ValidationError("MetricsBlock needs a non-empty, unique slot list")
        while True:
            name = f"repro_obs_{os.getpid()}_{next(_BLOCK_SEQ)}"
            try:
                segment = shared_memory.SharedMemory(name=name, create=True, size=8 * len(slots))
                break
            except FileExistsError:  # pragma: no cover - stale leftover
                continue
        block = cls(segment, slots, owner=True)
        block.reset()
        with _BLOCKS_LOCK:
            _LIVE_BLOCKS.append(block)
        return block

    @classmethod
    def attach(cls, manifest: dict) -> "MetricsBlock":
        # Attaching re-registers the name with the (shared) resource
        # tracker, same idempotent-set semantics as the weight segments —
        # see repro.serve.shm.attach_segment for why nothing is unregistered.
        segment = shared_memory.SharedMemory(name=manifest["segment"])
        return cls(segment, manifest["slots"], owner=False)

    @property
    def manifest(self) -> dict:
        return {"segment": self._segment.name, "slots": list(self._slots)}

    @property
    def slots(self) -> Tuple[str, ...]:
        return self._slots

    def add(self, slot: str, amount: int = 1) -> None:
        self._cells[self._index[slot]] += int(amount)

    def set(self, slot: str, value: int) -> None:
        self._cells[self._index[slot]] = int(value)

    def value(self, slot: str) -> int:
        return int(self._cells[self._index[slot]])

    def values(self) -> Dict[str, int]:
        cells = self._cells
        return {name: int(cells[i]) for name, i in self._index.items()}

    def reset(self) -> None:
        self._cells[:] = 0

    def close(self) -> None:
        """Detach; the owning process also unlinks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._cells = None  # release the buffer view before closing the mmap
        try:
            self._segment.close()
        except BufferError:
            _log.debug("metrics block %s close blocked by a live view", self._segment.name)
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass
            with _BLOCKS_LOCK:
                if self in _LIVE_BLOCKS:
                    _LIVE_BLOCKS.remove(self)
