"""Decode-path profiling hooks: per-stage timings with near-zero idle cost.

The codec path has five stages worth timing independently — the planned
compiled-backend work needs a per-stage before/after baseline, not one
lump sum:

* ``lossless`` — the outer byte-codec pass (zlib/lzma/zstd);
* ``huffman``  — canonical Huffman decode of the quantization codes;
* ``predictor`` — Lorenzo/adaptive prediction reconstruction;
* ``dequantize`` — code → value mapping plus outlier reinsertion;
* ``build``    — dense materialisation or CSC operand construction.

Call sites wrap work in :func:`stage` (a context manager) or call
:func:`record_stage` directly.  Each record lands in two places:

* the **global registry** — ``repro_decode_stage_seconds_total{stage=...}``
  and ``repro_decode_stage_total{stage=...}`` counters, the per-host
  aggregate every exposition includes;
* the **active sink**, if one is installed on this thread
  (:func:`stage_sink`) — how :class:`~repro.serve.runtime.ModelRuntime`
  attributes stage time to the specific layer it is decoding, including
  decodes running on prefetch pool threads (the sink is installed inside
  the decode task itself).

When :func:`repro.obs.metrics.is_enabled` is off, every hook degrades to a
single flag check — the disabled path the overhead benchmark gates.

The **fetch log** (:func:`collect_fetches` / :func:`active_fetch_log`) is
the serving-side sibling: a traced batch installs a thread-local list and
the network's forward pass appends ``(layer, start_wall, end_wall)`` for
each decode-on-demand weight fetch, which the server turns into
``replica.decode`` spans.  Untraced requests see only a ``None`` check.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs import metrics as _metrics

__all__ = [
    "DECODE_STAGES",
    "active_fetch_log",
    "collect_fetches",
    "record_fetch",
    "record_stage",
    "stage",
    "stage_sink",
]

#: The decode stages instrumented across the codec path.
DECODE_STAGES = ("lossless", "huffman", "predictor", "dequantize", "build")

_TLS = threading.local()


def record_stage(stage_name: str, seconds: float) -> None:
    """Record ``seconds`` spent in one decode stage (registry + active sink)."""
    if not _metrics.is_enabled():
        return
    sink: Optional[Dict[str, float]] = getattr(_TLS, "stage_sink", None)
    if sink is not None:
        sink[stage_name] = sink.get(stage_name, 0.0) + seconds
    reg = _metrics.registry()
    reg.counter(
        "repro_decode_stage_seconds_total",
        "Cumulative seconds spent in each decode stage.",
        labels=("stage",),
    ).labels(stage=stage_name).inc(seconds)
    reg.counter(
        "repro_decode_stage_total",
        "Number of times each decode stage ran.",
        labels=("stage",),
    ).labels(stage=stage_name).inc()


@contextmanager
def stage(stage_name: str) -> Iterator[None]:
    """Time the enclosed block as one decode stage."""
    if not _metrics.is_enabled():
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        record_stage(stage_name, time.perf_counter() - start)


@contextmanager
def stage_sink() -> Iterator[Dict[str, float]]:
    """Collect this thread's stage records into a dict for the duration."""
    previous = getattr(_TLS, "stage_sink", None)
    sink: Dict[str, float] = {}
    _TLS.stage_sink = sink
    try:
        yield sink
    finally:
        _TLS.stage_sink = previous


# -- decode-on-demand fetch log (request tracing) ---------------------------

FetchRecord = Tuple[str, float, float]  # (layer, start_wall_s, end_wall_s)


def active_fetch_log() -> Optional[List[FetchRecord]]:
    """The thread's fetch log, or ``None`` when the request is untraced."""
    return getattr(_TLS, "fetch_log", None)


def record_fetch(layer: str, start_s: float, end_s: float) -> None:
    """Append one weight fetch to the active log (no-op when untraced)."""
    log = getattr(_TLS, "fetch_log", None)
    if log is not None:
        log.append((layer, start_s, end_s))


@contextmanager
def collect_fetches() -> Iterator[List[FetchRecord]]:
    """Install a fetch log on this thread for one (traced) forward pass."""
    previous = getattr(_TLS, "fetch_log", None)
    log: List[FetchRecord] = []
    _TLS.fetch_log = log
    try:
        yield log
    finally:
        _TLS.fetch_log = previous
