"""Observability for the serving stack: metrics, tracing, profiling, logging.

Dependency-free (stdlib + numpy).  See the submodules:

* :mod:`repro.obs.metrics` — registry, histograms, shared-memory blocks,
  Prometheus/JSON exposition;
* :mod:`repro.obs.trace` — sampled span trees that stitch across worker
  process boundaries;
* :mod:`repro.obs.profile` — per-stage decode timings and the serving
  fetch log;
* :mod:`repro.obs.log` — structured logging for previously-silent
  anomaly paths.
"""

from repro.obs.log import get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsBlock,
    MetricsRegistry,
    SharedCounter,
    is_enabled,
    log_buckets,
    parse_prometheus,
    registry,
    set_enabled,
)
from repro.obs.profile import (
    DECODE_STAGES,
    active_fetch_log,
    collect_fetches,
    record_fetch,
    record_stage,
    stage,
    stage_sink,
)
from repro.obs.trace import (
    SPAN_FIELDS,
    BufferExporter,
    JsonlSpanExporter,
    Span,
    Tracer,
    load_trace,
    span_dict,
    validate_span,
)

__all__ = [
    "DECODE_STAGES",
    "DEFAULT_LATENCY_BUCKETS",
    "SPAN_FIELDS",
    "BufferExporter",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSpanExporter",
    "MetricSample",
    "MetricsBlock",
    "MetricsRegistry",
    "SharedCounter",
    "Span",
    "Tracer",
    "active_fetch_log",
    "collect_fetches",
    "get_logger",
    "is_enabled",
    "load_trace",
    "log_buckets",
    "parse_prometheus",
    "record_fetch",
    "record_stage",
    "registry",
    "set_enabled",
    "span_dict",
    "stage",
    "stage_sink",
    "validate_span",
]
