"""The registered naming grammar for metrics and spans.

Every metric family and span name the serving stack emits is declared (or
validated) here, so the exposition surface stays greppable and the static
analyzer (``repro lint``, rule METRIC-NAME) can flag a misspelled or
off-grammar literal at review time instead of after a dashboard goes dark.

Grammar
-------
* Metric names are ``snake_case`` under the ``repro_`` namespace:
  ``repro_<subsystem>_<what>[_<unit>]``.
* Counters end in ``_total`` (Prometheus convention).
* Gauges never end in ``_total``; sized gauges carry a unit suffix
  (``_bytes``, ``_seconds``, ``_depth``, ...).
* Histograms carry an explicit unit suffix (``_seconds`` or ``_bytes``).
* Span names are dotted ``component.stage`` pairs drawn from
  :data:`SPAN_NAMES` — the catalog CI's trace validator also pins.
"""

from __future__ import annotations

import re
from typing import Optional

__all__ = [
    "GATEWAY_DEADLINE_EXCEEDED_TOTAL",
    "METRIC_NAME_RE",
    "SPAN_NAME_RE",
    "SPAN_NAMES",
    "SPAN_OUTCOMES",
    "HISTOGRAM_UNIT_SUFFIXES",
    "metric_name_error",
    "span_name_error",
    "span_outcome_error",
    "validate_metric_name",
    "validate_span_name",
    "validate_span_outcome",
]

#: ``repro_`` namespace, lowercase snake_case, no doubled/trailing underscores.
METRIC_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9]*(_[a-z0-9]+)*$")

#: Dotted lowercase ``component.stage`` (underscores allowed inside a segment).
SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Every span name the serving stack may emit.  Adding a stage means adding
#: it here first — the trace validator and METRIC-NAME lint both read this.
SPAN_NAMES = frozenset(
    {
        "gateway.request",
        "gateway.admission",
        "gateway.shard",
        "replica.queue",
        "replica.batch",
        "replica.forward",
        "replica.decode",
    }
)

#: Terminal ``outcome`` attribute values a ``gateway.request`` span may
#: finish with.  The async front door adds ``deadline_exceeded`` and
#: ``cancelled`` to the thread gateway's completed/failed/rejected/error
#: set; dashboards group on this attribute, so new outcomes register here
#: first, exactly like span names.
SPAN_OUTCOMES = frozenset(
    {
        "completed",
        "failed",
        "error",
        "rejected",
        "cancelled",
        "deadline_exceeded",
    }
)

#: The deadline-expiry counter family the gateway exposes per model
#: (``gateway.deadline_exceeded`` in dotted shorthand).  Declared here so
#: the exposition surface stays greppable next to the grammar that proves
#: the name well-formed.
GATEWAY_DEADLINE_EXCEEDED_TOTAL = "repro_gateway_deadline_exceeded_total"

#: Unit suffixes a histogram family name must carry.
HISTOGRAM_UNIT_SUFFIXES = ("_seconds", "_bytes")

#: Unit-ish suffixes accepted on gauges (beyond plain snake_case).
_GAUGE_FORBIDDEN_SUFFIX = "_total"


def metric_name_error(name: str, kind: Optional[str] = None) -> Optional[str]:
    """Why ``name`` violates the grammar, or ``None`` when it is valid.

    ``kind`` is ``"counter"``/``"gauge"``/``"histogram"`` when known; kind
    rules are skipped when it is ``None``.
    """
    if not METRIC_NAME_RE.match(name):
        return (
            f"metric name {name!r} is off-grammar: expected "
            "repro_<subsystem>_<what>[_<unit>] in lowercase snake_case"
        )
    if kind == "counter" and not name.endswith("_total"):
        return f"counter {name!r} must end in _total"
    if kind == "gauge" and name.endswith(_GAUGE_FORBIDDEN_SUFFIX):
        return f"gauge {name!r} must not end in _total (that suffix means counter)"
    if kind == "histogram" and not name.endswith(HISTOGRAM_UNIT_SUFFIXES):
        return (
            f"histogram {name!r} must carry a unit suffix "
            f"({' or '.join(HISTOGRAM_UNIT_SUFFIXES)})"
        )
    return None


def span_name_error(name: str) -> Optional[str]:
    """Why ``name`` is not a registered span name, or ``None`` if it is."""
    if not SPAN_NAME_RE.match(name):
        return f"span name {name!r} is off-grammar: expected dotted component.stage"
    if name not in SPAN_NAMES:
        return (
            f"span name {name!r} is not in the registered catalog "
            "(repro.obs.naming.SPAN_NAMES); add it there first"
        )
    return None


def span_outcome_error(outcome: str) -> Optional[str]:
    """Why ``outcome`` is not a registered span outcome, or ``None`` if it is."""
    if outcome not in SPAN_OUTCOMES:
        return (
            f"span outcome {outcome!r} is not in the registered catalog "
            "(repro.obs.naming.SPAN_OUTCOMES); add it there first"
        )
    return None


def validate_span_outcome(outcome: str) -> None:
    """Raise :class:`ValueError` unless ``outcome`` is a registered outcome."""
    error = span_outcome_error(outcome)
    if error is not None:
        raise ValueError(error)


def validate_metric_name(name: str, kind: Optional[str] = None) -> None:
    """Raise :class:`ValueError` unless ``name`` obeys the grammar."""
    error = metric_name_error(name, kind)
    if error is not None:
        raise ValueError(error)


def validate_span_name(name: str) -> None:
    """Raise :class:`ValueError` unless ``name`` is a registered span name."""
    error = span_name_error(name)
    if error is not None:
        raise ValueError(error)
