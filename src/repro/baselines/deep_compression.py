"""Deep Compression (Han et al., ICLR'16) reimplementation.

Deep Compression's post-pruning stages are:

1. **codebook quantization** — all surviving weights of a layer are clustered
   into ``2**bits`` centroids with 1-D k-means (linear initialisation); each
   weight is replaced by its centroid index;
2. **Huffman coding** of the centroid indices and of the position-delta index
   array.

The decoder looks indices up in the codebook and rebuilds the sparse layer.
Unlike DeepSZ there is no error bound: the quantization error is whatever the
codebook produces, which is why accuracy drops sharply at low bit widths
(Table 5) and the original method needs retraining to recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.pruning.sparse_format import SparseLayer, decode_sparse
from repro.sz.huffman import HuffmanCodec
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import DecompressionError, ValidationError
from repro.utils.timing import TimingBreakdown

__all__ = [
    "kmeans_1d",
    "DeepCompressionConfig",
    "DeepCompressionLayerResult",
    "DeepCompressionEncoder",
]

_MAGIC = "repro-deepcompression-v1"


def kmeans_1d(
    values: np.ndarray, k: int, *, iterations: int = 25, tol: float = 1e-7
) -> tuple[np.ndarray, np.ndarray]:
    """1-D Lloyd's k-means with linear initialisation (Deep Compression's choice).

    Returns ``(centroids, assignments)``.  Fully vectorised: assignment uses
    ``np.searchsorted`` on the sorted centroids, the update uses
    ``np.bincount``.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if k < 1:
        raise ValidationError("k must be >= 1")
    if values.size == 0:
        return np.zeros(k), np.zeros(0, dtype=np.int64)
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        centroids = np.full(k, lo)
        return centroids, np.zeros(values.size, dtype=np.int64)
    centroids = np.linspace(lo, hi, k)
    for _ in range(iterations):
        # Nearest centroid via boundaries between consecutive centroids.
        boundaries = (centroids[1:] + centroids[:-1]) / 2.0
        assignments = np.searchsorted(boundaries, values)
        sums = np.bincount(assignments, weights=values, minlength=k)
        counts = np.bincount(assignments, minlength=k)
        new_centroids = np.where(counts > 0, sums / np.maximum(counts, 1), centroids)
        shift = float(np.max(np.abs(new_centroids - centroids)))
        centroids = new_centroids
        if shift < tol:
            break
    # Final assignment pass against the converged centroids so that every
    # value is mapped to its true nearest centroid.
    centroids = np.sort(centroids)
    boundaries = (centroids[1:] + centroids[:-1]) / 2.0
    assignments = np.searchsorted(boundaries, values)
    return centroids, assignments


@dataclass(frozen=True)
class DeepCompressionConfig:
    """Configuration: bits per weight for the fc-layer codebooks (paper: 5)."""

    bits: int = 5
    kmeans_iterations: int = 25

    def __post_init__(self) -> None:
        if not (1 <= int(self.bits) <= 16):
            raise ValidationError("bits must be in [1, 16]")


@dataclass(frozen=True)
class DeepCompressionLayerResult:
    """Per-layer outcome of Deep Compression encoding."""

    layer: str
    payload: bytes
    dense_bytes: int
    compressed_bytes: int
    max_quantization_error: float

    @property
    def ratio(self) -> float:
        return self.dense_bytes / self.compressed_bytes if self.compressed_bytes else float("inf")


class DeepCompressionEncoder:
    """Encode / decode pruned fc-layers with codebook quantization + Huffman."""

    def __init__(self, config: DeepCompressionConfig | None = None) -> None:
        self.config = config or DeepCompressionConfig()
        self._huffman = HuffmanCodec()

    # -- encoding ---------------------------------------------------------
    def encode_layer(self, name: str, layer: SparseLayer) -> DeepCompressionLayerResult:
        """Quantize and entropy-code one pruned layer."""
        cfg = self.config
        k = 1 << cfg.bits
        values = layer.data.astype(np.float64)
        centroids, assignments = kmeans_1d(values, k, iterations=cfg.kmeans_iterations)
        reconstructed = centroids[assignments]
        max_err = float(np.max(np.abs(reconstructed - values))) if values.size else 0.0

        codes_blob = self._huffman.encode(assignments.astype(np.int64))
        index_blob = self._huffman.encode(layer.index.astype(np.int64))
        payload = write_named_sections(
            {
                "codes": codes_blob,
                "index": index_blob,
                "codebook": centroids.astype("<f4").tobytes(),
            },
            meta={
                "magic": _MAGIC,
                "layer": name,
                "bits": cfg.bits,
                "rows": layer.shape[0],
                "cols": layer.shape[1],
                "nnz": layer.nnz,
                "entries": layer.entry_count,
            },
        )
        return DeepCompressionLayerResult(
            layer=name,
            payload=payload,
            dense_bytes=layer.dense_bytes,
            compressed_bytes=len(payload),
            max_quantization_error=max_err,
        )

    def encode_network(
        self, sparse_layers: Dict[str, SparseLayer]
    ) -> Dict[str, DeepCompressionLayerResult]:
        """Encode every pruned fc-layer of a network."""
        return {name: self.encode_layer(name, layer) for name, layer in sparse_layers.items()}

    # -- decoding ---------------------------------------------------------
    def decode_layer(
        self, payload: bytes, timing: TimingBreakdown | None = None
    ) -> tuple[str, np.ndarray]:
        """Decode one layer; returns ``(layer name, dense weight matrix)``."""
        timing = timing if timing is not None else TimingBreakdown()
        meta, sections = read_named_sections(payload)
        if meta.get("magic") != _MAGIC:
            raise DecompressionError("not a Deep Compression payload")
        with timing.phase("codebook quantization"):
            assignments = self._huffman.decode(sections["codes"])
            centroids = np.frombuffer(sections["codebook"], dtype="<f4").astype(np.float32)
            if assignments.size and (assignments.min() < 0 or assignments.max() >= centroids.size):
                raise DecompressionError("codebook index out of range")
            values = centroids[assignments]
        with timing.phase("csr"):
            index = self._huffman.decode(sections["index"]).astype(np.uint8)
            shape = (int(meta["rows"]), int(meta["cols"]))
            skeleton = SparseLayer(
                data=np.zeros(index.size, dtype=np.float32),
                index=index,
                shape=shape,
                nnz=int(meta["nnz"]),
            )
            dense = decode_sparse(skeleton, data=values)
        return str(meta["layer"]), dense

    def decode_network(
        self, results: Dict[str, DeepCompressionLayerResult] | Dict[str, bytes]
    ) -> tuple[Dict[str, np.ndarray], TimingBreakdown]:
        """Decode every layer; returns the dense weights and a timing breakdown."""
        timing = TimingBreakdown()
        weights: Dict[str, np.ndarray] = {}
        for name, item in results.items():
            payload = item.payload if isinstance(item, DeepCompressionLayerResult) else item
            decoded_name, dense = self.decode_layer(payload, timing)
            weights[decoded_name or name] = dense
        return weights, timing
