"""Comparison systems the paper evaluates against (Section 4, Tables 4-5, Fig. 7).

* :mod:`repro.baselines.deep_compression` — Han et al.'s Deep Compression:
  pruning + k-means codebook quantization + Huffman coding.
* :mod:`repro.baselines.weightless` — Reagen et al.'s Weightless: lossy
  Bloomier-filter encoding of (one) pruned fc-layer.

Both are reimplemented from their published descriptions (neither has usable
open-source code, as the paper itself notes for Weightless) and operate on the
same :class:`repro.pruning.SparseLayer` representation DeepSZ uses, so the
three encoders can be compared layer-for-layer.
"""

from repro.baselines.deep_compression import (
    DeepCompressionConfig,
    DeepCompressionEncoder,
    DeepCompressionLayerResult,
    kmeans_1d,
)
from repro.baselines.weightless import (
    BloomierFilter,
    WeightlessConfig,
    WeightlessEncoder,
    WeightlessLayerResult,
)

__all__ = [
    "DeepCompressionConfig",
    "DeepCompressionEncoder",
    "DeepCompressionLayerResult",
    "kmeans_1d",
    "BloomierFilter",
    "WeightlessConfig",
    "WeightlessEncoder",
    "WeightlessLayerResult",
]
