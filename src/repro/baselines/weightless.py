"""Weightless (Reagen et al., ICML'18) reimplementation.

Weightless encodes one (typically the largest) pruned fc-layer with a
*Bloomier filter*: a static data structure that maps each non-zero weight
position to a small quantized value index using ``k = 4`` hash probes into a
table of ``t``-bit slots.  Queries for positions that were *not* stored
(pruned weights) return random bit patterns; a ``t - v`` bit checksum rejects
most of them, but a fraction ``2**-(t-v)`` slip through and materialise as
spurious non-zero weights — that false-positive noise is the lossy part of
Weightless and the reason the original method retrains the remaining layers
(and the reason its decode is expensive: every position of the matrix must be
probed with four hash functions).

The implementation follows the classic Chazelle et al. construction: greedy
peeling to find an evaluation order, then XOR-encoding the table in reverse
order.  All hashing and the full-matrix query path are vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.baselines.deep_compression import kmeans_1d
from repro.pruning.sparse_format import SparseLayer, decode_sparse
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import CompressionError, DecompressionError, ValidationError
from repro.utils.rng import make_rng
from repro.utils.timing import TimingBreakdown

__all__ = ["BloomierFilter", "WeightlessConfig", "WeightlessEncoder", "WeightlessLayerResult"]

_MAGIC = "repro-weightless-v1"
_NUM_HASHES = 4


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 mixer (uint64 in, uint64 out)."""
    x = x.astype(np.uint64, copy=True)
    x += np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def _slot_hashes(keys: np.ndarray, seed: int, table_size: int) -> np.ndarray:
    """The four table-slot hashes for every key; shape (len(keys), 4)."""
    keys = np.asarray(keys, dtype=np.uint64)
    out = np.empty((keys.size, _NUM_HASHES), dtype=np.int64)
    for j in range(_NUM_HASHES):
        mixed = _splitmix64(keys ^ np.uint64(seed + 0x5151_0000 * (j + 1)))
        out[:, j] = (mixed % np.uint64(table_size)).astype(np.int64)
    return out


def _mask_hash(keys: np.ndarray, seed: int, t_bits: int) -> np.ndarray:
    """The t-bit masking hash M(key) for every key."""
    keys = np.asarray(keys, dtype=np.uint64)
    mixed = _splitmix64(keys ^ np.uint64(seed + 0xA5A5_A5A5))
    return (mixed & np.uint64((1 << t_bits) - 1)).astype(np.uint64)


class BloomierFilter:
    """A static Bloomier filter mapping integer keys to ``value_bits``-bit values."""

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        value_bits: int,
        slot_bits: int,
        expansion: float = 1.4,
        seed: int | None = None,
        max_attempts: int = 32,
    ) -> None:
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        values = np.asarray(values, dtype=np.uint64).ravel()
        if keys.size != values.size:
            raise ValidationError("keys and values must have the same length")
        if not (1 <= value_bits <= slot_bits <= 32):
            raise ValidationError("need 1 <= value_bits <= slot_bits <= 32")
        if keys.size and np.unique(keys).size != keys.size:
            raise ValidationError("Bloomier filter keys must be unique")
        if values.size and int(values.max()) >= (1 << value_bits):
            raise ValidationError("a value does not fit in value_bits")

        self.value_bits = int(value_bits)
        self.slot_bits = int(slot_bits)
        self.table_size = max(_NUM_HASHES + 1, int(np.ceil(keys.size * expansion)))
        base_seed = int(make_rng(seed).integers(0, 2**31 - 1))

        for attempt in range(max_attempts):
            self.seed = base_seed + attempt * 7919
            order = self._peel(keys)
            if order is not None:
                self._encode(keys, values, order)
                return
        raise CompressionError(
            "Bloomier filter construction failed; increase the expansion factor"
        )

    # -- construction ------------------------------------------------------
    def _peel(self, keys: np.ndarray) -> list[tuple[int, int]] | None:
        """Greedy peeling: returns [(key index, chosen slot), ...] or None."""
        n = keys.size
        if n == 0:
            self._slots = _slot_hashes(keys, self.seed, self.table_size)
            return []
        slots = _slot_hashes(keys, self.seed, self.table_size)
        self._slots = slots
        counts = np.zeros(self.table_size, dtype=np.int64)
        xor_keys = np.zeros(self.table_size, dtype=np.int64)
        for j in range(_NUM_HASHES):
            np.add.at(counts, slots[:, j], 1)
            np.bitwise_xor.at(xor_keys, slots[:, j], np.arange(n))

        removed = np.zeros(n, dtype=bool)
        stack: list[tuple[int, int]] = []
        frontier = list(np.flatnonzero(counts == 1))
        while frontier:
            slot = frontier.pop()
            if counts[slot] != 1:
                continue
            key_idx = int(xor_keys[slot])
            if removed[key_idx]:
                continue
            stack.append((key_idx, slot))
            removed[key_idx] = True
            for s in slots[key_idx]:
                counts[s] -= 1
                xor_keys[s] ^= key_idx
                if counts[s] == 1:
                    frontier.append(int(s))
        if len(stack) != n:
            return None
        return stack

    def _encode(self, keys: np.ndarray, values: np.ndarray, order: list[tuple[int, int]]) -> None:
        mask = _mask_hash(keys, self.seed, self.slot_bits)
        table = np.zeros(self.table_size, dtype=np.uint64)
        assigned = np.zeros(self.table_size, dtype=bool)
        slots = self._slots
        # Reverse peeling order: when a key is encoded, its chosen slot has
        # not been used by any key encoded so far, so we can solve for it.
        for key_idx, chosen in reversed(order):
            acc = values[key_idx] ^ mask[key_idx]
            for s in slots[key_idx]:
                if s != chosen:
                    acc ^= table[s]
            table[chosen] = acc & np.uint64((1 << self.slot_bits) - 1)
            assigned[chosen] = True
        self.table = table
        del self._slots

    # -- queries -----------------------------------------------------------
    def query(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Query many keys at once.

        Returns ``(values, found)``: for keys that pass the checksum,
        ``found`` is True and ``values`` holds the ``value_bits``-bit value;
        otherwise ``found`` is False (value undefined).
        """
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        slots = _slot_hashes(keys, self.seed, self.table_size)
        acc = np.zeros(keys.size, dtype=np.uint64)
        for j in range(_NUM_HASHES):
            acc ^= self.table[slots[:, j]]
        acc ^= _mask_hash(keys, self.seed, self.slot_bits)
        check = acc >> np.uint64(self.value_bits)
        values = acc & np.uint64((1 << self.value_bits) - 1)
        return values, check == 0

    @property
    def size_bytes(self) -> int:
        """Serialised size: table bits plus a small fixed header."""
        return (self.table_size * self.slot_bits + 7) // 8 + 16

    # -- serialization -----------------------------------------------------
    def state(self) -> dict:
        return {
            "table": self.table,
            "table_size": self.table_size,
            "value_bits": self.value_bits,
            "slot_bits": self.slot_bits,
            "seed": self.seed,
        }

    @classmethod
    def from_state(cls, state: dict) -> "BloomierFilter":
        obj = cls.__new__(cls)
        obj.table = np.asarray(state["table"], dtype=np.uint64)
        obj.table_size = int(state["table_size"])
        obj.value_bits = int(state["value_bits"])
        obj.slot_bits = int(state["slot_bits"])
        obj.seed = int(state["seed"])
        return obj


@dataclass(frozen=True)
class WeightlessConfig:
    """Configuration of the Weightless encoder.

    ``value_bits`` controls the codebook resolution (2**value_bits centroids)
    and ``slot_bits`` the Bloomier table width; the difference is the checksum
    width that keeps the false-positive rate at ``2**-(slot_bits-value_bits)``.
    """

    value_bits: int = 4
    slot_bits: int = 9
    expansion: float = 1.4
    seed: int | None = None

    def __post_init__(self) -> None:
        if not (1 <= self.value_bits < self.slot_bits <= 32):
            raise ValidationError("need 1 <= value_bits < slot_bits <= 32")
        if self.expansion < 1.3:
            raise ValidationError(
                "expansion must be at least 1.3: the 4-hash Bloomier peeling "
                "threshold is ~1.295, below which construction rarely succeeds"
            )


@dataclass(frozen=True)
class WeightlessLayerResult:
    """Per-layer outcome of Weightless encoding."""

    layer: str
    payload: bytes
    dense_bytes: int
    compressed_bytes: int
    false_positive_rate: float

    @property
    def ratio(self) -> float:
        return self.dense_bytes / self.compressed_bytes if self.compressed_bytes else float("inf")


class WeightlessEncoder:
    """Encode / decode a pruned fc-layer with a Bloomier filter."""

    def __init__(self, config: WeightlessConfig | None = None) -> None:
        self.config = config or WeightlessConfig()

    # -- encoding ---------------------------------------------------------
    def encode_layer(self, name: str, layer: SparseLayer) -> WeightlessLayerResult:
        cfg = self.config
        dense = decode_sparse(layer)
        flat = dense.ravel()
        positions = np.flatnonzero(flat)
        values = flat[positions]

        k = 1 << cfg.value_bits
        centroids, assignments = kmeans_1d(values, k)

        bloom = BloomierFilter(
            keys=positions.astype(np.uint64),
            values=assignments.astype(np.uint64),
            value_bits=cfg.value_bits,
            slot_bits=cfg.slot_bits,
            expansion=cfg.expansion,
            seed=cfg.seed,
        )
        state = bloom.state()
        payload = write_named_sections(
            {
                "table": state["table"].astype("<u8").tobytes(),
                "codebook": centroids.astype("<f4").tobytes(),
            },
            meta={
                "magic": _MAGIC,
                "layer": name,
                "rows": layer.shape[0],
                "cols": layer.shape[1],
                "table_size": state["table_size"],
                "value_bits": state["value_bits"],
                "slot_bits": state["slot_bits"],
                "seed": state["seed"],
                "nnz": int(positions.size),
            },
        )
        # Reported size: the Bloomier table at slot_bits per slot plus the
        # codebook (the serialised container above stores slots as uint64 for
        # simplicity; the table accounts for the true bit cost).
        compressed_bytes = bloom.size_bytes + centroids.size * 4
        fp_rate = 2.0 ** -(cfg.slot_bits - cfg.value_bits)
        return WeightlessLayerResult(
            layer=name,
            payload=payload,
            dense_bytes=layer.dense_bytes,
            compressed_bytes=compressed_bytes,
            false_positive_rate=fp_rate,
        )

    def pick_target_layer(self, sparse_layers: Dict[str, SparseLayer]) -> str:
        """Weightless compresses only one layer: the largest by dense size."""
        if not sparse_layers:
            raise ValidationError("no sparse layers supplied")
        return max(sparse_layers, key=lambda name: sparse_layers[name].dense_bytes)

    # -- decoding ---------------------------------------------------------
    def decode_layer(
        self, payload: bytes, timing: TimingBreakdown | None = None
    ) -> tuple[str, np.ndarray]:
        """Rebuild the dense matrix by probing every position (the expensive part)."""
        timing = timing if timing is not None else TimingBreakdown()
        meta, sections = read_named_sections(payload)
        if meta.get("magic") != _MAGIC:
            raise DecompressionError("not a Weightless payload")
        rows, cols = int(meta["rows"]), int(meta["cols"])
        with timing.phase("bloomier filter"):
            bloom = BloomierFilter.from_state(
                {
                    "table": np.frombuffer(sections["table"], dtype="<u8"),
                    "table_size": meta["table_size"],
                    "value_bits": meta["value_bits"],
                    "slot_bits": meta["slot_bits"],
                    "seed": meta["seed"],
                }
            )
            codebook = np.frombuffer(sections["codebook"], dtype="<f4").astype(np.float32)
            total = rows * cols
            dense = np.zeros(total, dtype=np.float32)
            # Probe every matrix position in chunks to bound peak memory.
            chunk = 1 << 20
            for start in range(0, total, chunk):
                keys = np.arange(start, min(start + chunk, total), dtype=np.uint64)
                vals, found = bloom.query(keys)
                if np.any(found):
                    dense[start : start + keys.size][found] = codebook[
                        vals[found].astype(np.int64)
                    ]
        return str(meta["layer"]), dense.reshape(rows, cols)
