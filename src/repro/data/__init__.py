"""Synthetic datasets (the MNIST / ImageNet substitutes).

The real datasets are not available offline, so this package synthesises
deterministic, cluster-structured image classification problems with the same
tensor shapes (1x28x28 for the MNIST-like set, 3x32x32 for the ImageNet-like
set).  The generator places each class at a random template image and adds
per-sample deformations plus noise; the resulting problems are learnable to
high accuracy by the mini networks yet hard enough that accuracy degrades
smoothly as weight error grows — the property every DeepSZ experiment relies
on.
"""

from repro.data.datasets import Dataset, train_test_split, iterate_batches
from repro.data.synthetic import (
    SyntheticSpec,
    make_classification_images,
    mnist_like,
    imagenet_like,
)

__all__ = [
    "Dataset",
    "train_test_split",
    "iterate_batches",
    "SyntheticSpec",
    "make_classification_images",
    "mnist_like",
    "imagenet_like",
]
