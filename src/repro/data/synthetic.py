"""Deterministic synthetic image-classification datasets.

These generators stand in for MNIST and ImageNet (see the substitution table
in DESIGN.md).  The design is driven by the three properties every DeepSZ
experiment relies on:

1. **learnable** — the mini networks must reach high accuracy, so there is
   accuracy to lose;
2. **prunable** — magnitude pruning at the paper's ratios (a few percent of
   weights kept) must not cost accuracy, so the class-discriminative signal is
   spatially localised (a central region of the image carries the class
   information, as digits do in MNIST) and the first fc-layer can drop the
   weights attached to uninformative pixels;
3. **sensitive** — accuracy must degrade *smoothly* as bounded error is
   injected into fc weights, so a controlled fraction of samples is generated
   near the decision boundary: each sample is a convex mixture of its own
   class template and one other class's template, with the mixing coefficient
   drawn up to :attr:`SyntheticSpec.ambiguity`.  Samples mixed past 0.5 are
   genuinely ambiguous, which caps the achievable accuracy and keeps decision
   margins finite.

Every sample additionally gets a brightness jitter, a small random
translation, and Gaussian pixel noise.  All randomness flows from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.data.datasets import Dataset
from repro.utils.errors import ValidationError
from repro.utils.rng import make_rng

__all__ = ["SyntheticSpec", "make_classification_images", "mnist_like", "imagenet_like"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic classification problem."""

    num_classes: int = 10
    samples_per_class: int = 300
    channels: int = 1
    height: int = 28
    width: int = 28
    basis_size: int = 24  #: number of shared low-frequency basis images
    support: float = 0.35  #: fraction of the image area carrying class signal
    ambiguity: float = 0.55  #: maximum class-mixing coefficient (see module docs)
    noise_std: float = 0.25  #: per-pixel Gaussian noise
    max_shift: int = 2  #: maximum absolute translation in pixels
    brightness_jitter: float = 0.15
    smoothness: float = 2.0  #: Gaussian blur sigma applied to the basis fields
    seed: int | None = None

    def __post_init__(self) -> None:
        if min(self.num_classes, self.samples_per_class, self.channels, self.height, self.width) <= 0:
            raise ValidationError("all dataset dimensions must be positive")
        if self.num_classes < 2:
            raise ValidationError("need at least two classes")
        if self.basis_size < 2:
            raise ValidationError("basis_size must be at least 2")
        if not (0.0 < self.support <= 1.0):
            raise ValidationError("support must be in (0, 1]")
        if not (0.0 <= self.ambiguity <= 1.0):
            raise ValidationError("ambiguity must be in [0, 1]")
        if self.noise_std < 0 or self.brightness_jitter < 0 or self.max_shift < 0:
            raise ValidationError("noise parameters must be non-negative")


def _make_basis(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Shared low-frequency basis fields of shape (basis, C, H, W), unit RMS."""
    fields = rng.normal(
        0.0, 1.0, size=(spec.basis_size, spec.channels, spec.height, spec.width)
    )
    if spec.smoothness > 0:
        fields = ndimage.gaussian_filter(
            fields, sigma=(0, 0, spec.smoothness, spec.smoothness), mode="wrap"
        )
    rms = np.sqrt(np.mean(fields**2, axis=(1, 2, 3), keepdims=True))
    return fields / np.maximum(rms, 1e-12)


def _support_mask(spec: SyntheticSpec) -> np.ndarray:
    """Smooth radial bump covering roughly ``support`` of the image area."""
    yy, xx = np.mgrid[0 : spec.height, 0 : spec.width]
    r2 = ((yy - spec.height / 2) / (spec.height / 2)) ** 2 + (
        (xx - spec.width / 2) / (spec.width / 2)
    ) ** 2
    return np.clip(1.0 - r2 / spec.support, 0.0, 1.0)


def _class_templates(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-class templates: localised, unit-RMS mixtures over the shared basis."""
    basis = _make_basis(spec, rng)
    coeffs = rng.normal(0.0, 1.0, size=(spec.num_classes, spec.basis_size))
    coeffs /= np.linalg.norm(coeffs, axis=1, keepdims=True)
    templates = np.tensordot(coeffs, basis, axes=(1, 0))  # (classes, C, H, W)
    templates *= _support_mask(spec)[None, None, :, :]
    rms = np.sqrt(np.mean(templates**2, axis=(1, 2, 3), keepdims=True))
    return templates / np.maximum(rms, 1e-12)


def make_classification_images(spec: SyntheticSpec) -> Dataset:
    """Generate a dataset according to ``spec`` (deterministic given the seed)."""
    rng = make_rng(spec.seed)
    templates = _class_templates(spec, rng)

    n_total = spec.num_classes * spec.samples_per_class
    labels = np.repeat(np.arange(spec.num_classes), spec.samples_per_class)
    confusers = (labels + rng.integers(1, spec.num_classes, size=n_total)) % spec.num_classes
    mixing = rng.uniform(0.0, spec.ambiguity, size=n_total)
    brightness = 1.0 + rng.uniform(
        -spec.brightness_jitter, spec.brightness_jitter, size=n_total
    )
    shifts_h = rng.integers(-spec.max_shift, spec.max_shift + 1, size=n_total)
    shifts_w = rng.integers(-spec.max_shift, spec.max_shift + 1, size=n_total)

    images = np.empty((n_total, spec.channels, spec.height, spec.width), dtype=np.float32)
    for i in range(n_total):
        img = (1.0 - mixing[i]) * templates[labels[i]] + mixing[i] * templates[confusers[i]]
        img = img * brightness[i]
        if spec.max_shift:
            img = np.roll(img, (int(shifts_h[i]), int(shifts_w[i])), axis=(1, 2))
        images[i] = img
    if spec.noise_std:
        images += rng.normal(0.0, spec.noise_std, size=images.shape).astype(np.float32)

    # Shuffle so that class blocks are interleaved before any later split.
    order = rng.permutation(n_total)
    return Dataset(images=images[order], labels=labels[order], name="synthetic")


def mnist_like(
    samples_per_class: int = 300, num_classes: int = 10, seed: int | None = None
) -> Dataset:
    """An MNIST-shaped (1x28x28, 10-class) synthetic dataset.

    Tuned so that LeNet-300-100 / LeNet-5 reach ~96-98% accuracy (the paper's
    LeNets are at 98-99%) and stay at that accuracy through pruning at the
    paper's ratios.
    """
    spec = SyntheticSpec(
        num_classes=num_classes,
        samples_per_class=samples_per_class,
        channels=1,
        height=28,
        width=28,
        ambiguity=0.5,
        noise_std=0.18,
        seed=seed,
    )
    ds = make_classification_images(spec)
    return Dataset(ds.images, ds.labels, name="mnist-like")


def imagenet_like(
    samples_per_class: int = 150, num_classes: int = 15, seed: int | None = None
) -> Dataset:
    """An ImageNet-flavoured (3x32x32, 20-class) synthetic dataset.

    Harder than the MNIST-like set (more classes, more ambiguity), so the mini
    AlexNet / VGG models land in the 60-75% top-1 band — comparable to the
    57% / 68% the paper reports on real ImageNet — and top-5 accuracy is
    meaningfully higher than top-1 (Table 3 reports both).
    """
    spec = SyntheticSpec(
        num_classes=num_classes,
        samples_per_class=samples_per_class,
        channels=3,
        height=32,
        width=32,
        basis_size=32,
        support=0.45,
        ambiguity=0.8,
        noise_std=0.22,
        seed=seed,
    )
    ds = make_classification_images(spec)
    return Dataset(ds.images, ds.labels, name="imagenet-like")
