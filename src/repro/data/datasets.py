"""Dataset container and batching utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.rng import make_rng

__all__ = ["Dataset", "train_test_split", "iterate_batches"]


@dataclass(frozen=True)
class Dataset:
    """A labelled image dataset: ``images`` (N, C, H, W) and ``labels`` (N,)."""

    images: np.ndarray
    labels: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValidationError(f"images must be (N, C, H, W), got {self.images.shape}")
        if self.labels.shape != (self.images.shape[0],):
            raise ValidationError("labels must be 1-D with one entry per image")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self) else 0

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """A new dataset holding only the given sample indices."""
        return Dataset(
            images=self.images[indices],
            labels=self.labels[indices],
            name=name or self.name,
        )

    def take(self, count: int) -> "Dataset":
        """The first ``count`` samples (used to shrink test sets in fast mode)."""
        count = min(int(count), len(self))
        return self.subset(np.arange(count), name=self.name)


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, seed: int | None = None
) -> Tuple[Dataset, Dataset]:
    """Shuffle and split a dataset into train / test parts."""
    if not (0.0 < test_fraction < 1.0):
        raise ValidationError("test_fraction must be in (0, 1)")
    rng = make_rng(seed)
    order = rng.permutation(len(dataset))
    n_test = max(1, int(round(len(dataset) * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return (
        dataset.subset(train_idx, name=f"{dataset.name}-train"),
        dataset.subset(test_idx, name=f"{dataset.name}-test"),
    )


def iterate_batches(
    dataset: Dataset, batch_size: int, *, shuffle: bool = False, seed: int | None = None
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(images, labels)`` mini-batches."""
    if batch_size <= 0:
        raise ValidationError("batch_size must be positive")
    order = np.arange(len(dataset))
    if shuffle:
        order = make_rng(seed).permutation(len(dataset))
    for start in range(0, len(dataset), batch_size):
        idx = order[start : start + batch_size]
        yield dataset.images[idx], dataset.labels[idx]
