"""Project-specific rules for ``repro lint``.

Each rule encodes one invariant the serving stack's concurrency/shared-memory
design depends on; the docstrings say *why*, the ``hint`` says what to do
instead.  Rules register with :func:`repro.lint.engine.rule`; adding one is a
class here plus a positive/negative fixture test.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.engine import FileContext, Rule, rule
from repro.lint.findings import Finding
from repro.obs import naming

__all__ = [
    "BareExceptSwallow",
    "LockHeldBlocking",
    "MetricName",
    "PipeProtocol",
    "ShmUnlinkPairing",
    "SleepInTests",
]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _terminal_name(node: ast.AST) -> str:
    """The last identifier of a dotted/called expression (``a.b.c()`` -> c)."""
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dotted_text(node: ast.AST) -> str:
    """Best-effort lowercase source text of an expression (for substring tests)."""
    try:
        return ast.unparse(node).lower()
    except (ValueError, RecursionError):  # pragma: no cover - degenerate trees
        return ""


def _walk_skipping_defs(nodes) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class bodies.

    A closure defined under a lock does not *run* under the lock, so rules
    about held-lock behaviour must not look inside it.
    """
    opaque = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, opaque):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_shm_create(call: ast.Call) -> bool:
    if _terminal_name(call.func) != "SharedMemory":
        return False
    create = _keyword(call, "create")
    return isinstance(create, ast.Constant) and create.value is True


# ---------------------------------------------------------------------------
# LOCK-HELD-BLOCKING
# ---------------------------------------------------------------------------

#: With-item identifiers that mean "this is a mutual-exclusion guard".
_LOCK_MARKERS = ("lock", "cond", "mutex")
#: Dedicated I/O-serialisation locks are the *fix idiom* for this rule — a
#: lock whose name declares it guards exactly one blocking channel (a pipe
#: send, an append-only file) and is never nested under state locks.
_IO_LOCK_EXEMPT = ("io_lock", "send_lock", "write_lock", "flush_lock")

#: Method/attribute calls that can block on I/O, a child process, or a decode.
_BLOCKING_ATTRS = {
    "send",
    "recv",
    "send_bytes",
    "recv_bytes",
    "sendall",
    "poll",
    "read_bytes",
    "write_bytes",
    "read_text",
    "write_text",
    "get_bytes",
    "put_bytes",
    "result",
    "sleep",
    "open",
    "acquire",
}
_BLOCKING_BUILTINS = {"open"}
#: Constructors that open/decode an archive on the spot.
_BLOCKING_CONSTRUCTORS = {"ModelRuntime"}
_POOL_DISPATCH_ATTRS = {"submit", "map"}


def _is_lock_withitem(item: ast.withitem) -> bool:
    name = _terminal_name(item.context_expr).lower()
    if not name:
        return False
    if any(marker in name for marker in _IO_LOCK_EXEMPT):
        return False
    return any(marker in name for marker in _LOCK_MARKERS)


def _blocking_reason(call: ast.Call) -> Optional[str]:
    """Why ``call`` may block, or ``None`` when it is lock-safe."""
    name = _terminal_name(call.func)
    if _is_shm_create(call):
        return "SharedMemory(create=True) allocates and zero-fills a segment"
    if isinstance(call.func, ast.Name) and name in _BLOCKING_BUILTINS:
        return f"builtin {name}() does file I/O"
    if name in _BLOCKING_CONSTRUCTORS:
        return f"{name}(...) opens and decodes an archive"
    if isinstance(call.func, ast.Attribute):
        if name in _BLOCKING_ATTRS:
            receiver = _dotted_text(call.func.value)
            # self.lock.acquire() style is lockcheck's domain, not this rule's.
            if name == "acquire" and any(m in receiver for m in _LOCK_MARKERS):
                return None
            return f".{name}() can block on I/O or a child process"
        if name in _POOL_DISPATCH_ATTRS and "pool" in _dotted_text(call.func.value):
            return f"pool .{name}() dispatches (and may run) tasks"
    if name.lstrip("_").startswith("decode"):
        return f"{name}() decodes compressed layers (CPU + archive reads)"
    return None


@rule
class LockHeldBlocking(Rule):
    """No blocking work while a state lock is held.

    A pipe send/recv, file or socket I/O, shared-memory creation, a layer
    decode, or a pool dispatch inside ``with self._lock:`` turns every other
    thread's fast-path lock acquisition into a wait on that slow operation —
    and against a stuck peer process, into a deadlock.  The fix is always
    the same shape: snapshot state under the lock, do the slow work outside,
    re-check and install under the lock (see DESIGN.md).  Flows one level
    deep through same-module helpers: ``with lock: self._build()`` is
    charged with whatever ``_build`` does.
    """

    id = "LOCK-HELD-BLOCKING"
    hint = (
        "snapshot under the lock, run the blocking call outside, re-check and "
        "install the result under the lock; a dedicated *_io_lock/*_send_lock "
        "that guards only one channel is exempt"
    )

    def applies(self, rel: str) -> bool:
        return "repro/" in rel and "/tests/" not in rel and not rel.startswith("tests/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(_is_lock_withitem(item) for item in node.items):
                continue
            lock_text = next(
                _dotted_text(item.context_expr)
                for item in node.items
                if _is_lock_withitem(item)
            )
            yield from self._check_body(ctx, node.body, lock_text)

    def _check_body(self, ctx, body, lock_text: str) -> Iterator[Finding]:
        for sub in _walk_skipping_defs(body):
            if not isinstance(sub, ast.Call):
                continue
            reason = _blocking_reason(sub)
            if reason is not None:
                yield self.finding(
                    ctx,
                    sub,
                    f"blocking call under `with {lock_text}:`: {reason}",
                )
                continue
            yield from self._check_helper(ctx, sub, lock_text)

    def _check_helper(self, ctx, call: ast.Call, lock_text: str) -> Iterator[Finding]:
        """One-level flow: charge ``self.helper()`` with the helper's body."""
        func = call.func
        helper_name = ""
        if isinstance(func, ast.Name):
            helper_name = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
        ):
            helper_name = func.attr
        helper = ctx.functions.get(helper_name)
        if helper is None:
            return
        for sub in _walk_skipping_defs(helper.body):
            if isinstance(sub, ast.Call):
                reason = _blocking_reason(sub)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        call,
                        f"blocking call under `with {lock_text}:` via helper "
                        f"{helper_name}() (line {sub.lineno}): {reason}",
                    )
                    return


# ---------------------------------------------------------------------------
# SHM-UNLINK-PAIRING
# ---------------------------------------------------------------------------


@rule
class ShmUnlinkPairing(Rule):
    """Every created shared-memory segment must reach a refcounted release.

    CI greps ``/dev/shm`` after every job; a module that calls
    ``SharedMemory(create=True)`` without also owning an ``unlink()`` path
    *and* an ``atexit``/``finalize`` backstop will leak segments on unclean
    exits — exactly what the leak scan exists to catch, one PR too late.
    """

    id = "SHM-UNLINK-PAIRING"
    hint = (
        "route segment creation through a registry that unlink()s at refcount "
        "zero and registers an atexit/weakref.finalize backstop in the same "
        "module (see repro/serve/shm.py)"
    )

    def applies(self, rel: str) -> bool:
        return "repro/" in rel and not rel.startswith("tests/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        creates = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call) and _is_shm_create(node)
        ]
        if not creates:
            return
        has_unlink = False
        has_backstop = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if name == "unlink":
                    has_unlink = True
                if name in ("register", "finalize") and isinstance(
                    node.func, ast.Attribute
                ):
                    receiver = _dotted_text(node.func.value)
                    if "atexit" in receiver or "weakref" in receiver:
                        has_backstop = True
        if has_unlink and has_backstop:
            return
        missing = []
        if not has_unlink:
            missing.append("an unlink() release path")
        if not has_backstop:
            missing.append("an atexit.register/weakref.finalize backstop")
        for create in creates:
            yield self.finding(
                ctx,
                create,
                "SharedMemory(create=True) without " + " or ".join(missing),
            )


# ---------------------------------------------------------------------------
# BARE-EXCEPT-SWALLOW
# ---------------------------------------------------------------------------

_BROAD_EXC_NAMES = {"Exception", "BaseException"}
_LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical"}


def _is_broad(handler_type: Optional[ast.AST]) -> bool:
    if handler_type is None:
        return True
    if isinstance(handler_type, (ast.Name, ast.Attribute)):
        return _terminal_name(handler_type) in _BROAD_EXC_NAMES
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(elt) for elt in handler_type.elts)
    return False


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """True when a broad handler neither re-raises, logs, nor uses the error."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return False
        if isinstance(node, ast.Name) and handler.name and node.id == handler.name:
            return False
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _LOG_METHODS and "log" in _dotted_text(
                node.func.value
            ):
                return False
            if node.func.attr in ("print_exc", "format_exc"):
                return False
    return True


@rule
class BareExceptSwallow(Rule):
    """Broad exception handlers must surface the error somewhere.

    PR 7's forensics found crash loops that ran silent for minutes because a
    ``except Exception: pass`` ate the first failure.  A broad handler is
    fine — worker loops and exporters need them — but it must re-raise, log
    through ``repro.obs.log``, or actually consume the bound exception.
    """

    id = "BARE-EXCEPT-SWALLOW"
    hint = (
        "log via repro.obs.log.get_logger(...) (e.g. _log.warning(..., "
        "exc_info=True)), re-raise, or narrow the exception type"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node, "bare `except:` catches SystemExit/KeyboardInterrupt"
                )
                continue
            if _handler_swallows(node):
                kind = _terminal_name(node.type) if not isinstance(
                    node.type, ast.Tuple
                ) else "Exception"
                yield self.finding(
                    ctx,
                    node,
                    f"`except {kind}:` swallows the error "
                    "(no raise, no log, bound name unused)",
                )


# ---------------------------------------------------------------------------
# METRIC-NAME
# ---------------------------------------------------------------------------

_FAMILY_METHODS = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}
_SPAN_FACTORIES = {"start_span", "child"}


@rule
class MetricName(Rule):
    """Metric/span string literals must match the registered naming grammar.

    The Prometheus exposition and the trace schema are public surface:
    dashboards, the CI validator, and the bench regression gate all key on
    exact names.  ``repro.obs.naming`` owns the grammar and the span
    catalog; this rule pins every literal in ``src/repro`` to it.
    """

    id = "METRIC-NAME"
    hint = "use a name matching repro.obs.naming (grammar + SPAN_NAMES catalog)"

    def applies(self, rel: str) -> bool:
        return "repro/" in rel and not rel.startswith("tests/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(ctx, node)

    def _check_call(self, ctx, call: ast.Call) -> Iterator[Finding]:
        func_name = _terminal_name(call.func)
        # MetricSample(name="...", kind="...")
        if func_name == "MetricSample":
            name = _const_str(_keyword(call, "name"))
            kind = _const_str(_keyword(call, "kind"))
            if name is not None:
                error = naming.metric_name_error(name, kind)
                if error:
                    yield self.finding(ctx, call, error)
            return
        # registry().counter("...", ...) / .gauge / .histogram
        if isinstance(call.func, ast.Attribute) and func_name in _FAMILY_METHODS:
            if call.args:
                name = _const_str(call.args[0])
                if name is not None:
                    error = naming.metric_name_error(name, _FAMILY_METHODS[func_name])
                    if error:
                        yield self.finding(ctx, call, error)
            return
        # span_dict("...") / tracer.start_span("...") / span.child("...")
        if func_name == "span_dict" or (
            isinstance(call.func, ast.Attribute) and func_name in _SPAN_FACTORIES
        ):
            if call.args:
                name = _const_str(call.args[0])
                if name is not None:
                    error = naming.span_name_error(name)
                    if error:
                        yield self.finding(ctx, call, error)


# ---------------------------------------------------------------------------
# SLEEP-IN-TESTS
# ---------------------------------------------------------------------------


@rule
class SleepInTests(Rule):
    """No ``time.sleep`` synchronisation in the serve/obs test suites.

    Sleeps encode a guess about scheduler timing; on loaded CI runners the
    guess is wrong and the suite flakes.  ``tests/serve/conftest.py`` ships
    ``poll_until``/``wait_until`` deadline-poll helpers — the conftest
    itself is the one sanctioned home for the underlying sleep.
    """

    id = "SLEEP-IN-TESTS"
    hint = "use the poll_until/wait_until helpers from tests/serve/conftest.py"

    def applies(self, rel: str) -> bool:
        if rel.rsplit("/", 1)[-1] == "conftest.py":
            return False
        return "tests/serve/" in rel or "tests/obs/" in rel

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sleep = (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and _terminal_name(func.value) == "time"
            ) or (isinstance(func, ast.Name) and func.id == "sleep")
            if is_sleep:
                yield self.finding(
                    ctx, node, "time.sleep() synchronisation in a serve/obs test"
                )


# ---------------------------------------------------------------------------
# PIPE-PROTOCOL
# ---------------------------------------------------------------------------


def _module_schema(
    tree: ast.Module,
) -> Tuple[Optional[List[str]], Optional[Dict[str, int]]]:
    """Extract ``REQUEST_FIELDS`` / ``RESPONSE_KINDS`` literals if defined."""
    request: Optional[List[str]] = None
    response: Optional[Dict[str, int]] = None
    for node in tree.body:
        targets = []
        value = None
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
            value = node.value
        if "REQUEST_FIELDS" in targets and isinstance(value, ast.Tuple):
            fields = [_const_str(elt) for elt in value.elts]
            if all(f is not None for f in fields):
                request = fields  # type: ignore[assignment]
        if "RESPONSE_KINDS" in targets and isinstance(value, ast.Dict):
            kinds: Dict[str, int] = {}
            ok = True
            for key, val in zip(value.keys, value.values):
                kind = _const_str(key) if key is not None else None
                if kind is None or not (
                    isinstance(val, ast.Constant) and isinstance(val.value, int)
                ):
                    ok = False
                    break
                kinds[kind] = val.value
            if ok:
                response = kinds
    return request, response


@rule
class PipeProtocol(Rule):
    """Worker pipe messages must agree with the one schema constant.

    The request/response tuples crossing the worker pipe are an implicit
    wire protocol between two processes that cannot share code hot-reloads.
    ``REQUEST_FIELDS`` and ``RESPONSE_KINDS`` in ``serve/worker.py`` are the
    single source of truth; every ``.send((...))`` tuple literal and every
    tuple-unpacked ``.recv()`` must match them in kind tag and arity.
    """

    id = "PIPE-PROTOCOL"
    hint = (
        "derive the tuple shape from REQUEST_FIELDS/RESPONSE_KINDS instead of "
        "hand-counting fields"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        request, response = _module_schema(ctx.tree)
        if request is None and response is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_send(ctx, node, request, response)
            elif isinstance(node, ast.Assign):
                yield from self._check_recv_unpack(ctx, node, request)

    def _check_send(self, ctx, call: ast.Call, request, response) -> Iterator[Finding]:
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "send"
            and len(call.args) == 1
        ):
            return
        payload = call.args[0]
        if isinstance(payload, ast.Constant) and payload.value is None:
            return  # the stop sentinel
        if not isinstance(payload, ast.Tuple):
            return  # forwarded variable; not statically checkable
        kind = _const_str(payload.elts[0]) if payload.elts else None
        if kind is not None and response is not None:
            if kind not in response:
                yield self.finding(
                    ctx,
                    call,
                    f"response kind {kind!r} not in RESPONSE_KINDS "
                    f"({sorted(response)})",
                )
            elif len(payload.elts) != response[kind]:
                yield self.finding(
                    ctx,
                    call,
                    f"response {kind!r} sends {len(payload.elts)} fields, "
                    f"RESPONSE_KINDS says {response[kind]}",
                )
            return
        if kind is None and request is not None:
            if len(payload.elts) != len(request):
                yield self.finding(
                    ctx,
                    call,
                    f"request tuple has {len(payload.elts)} fields, "
                    f"REQUEST_FIELDS declares {len(request)} ({request})",
                )

    def _check_recv_unpack(self, ctx, node: ast.Assign, request) -> Iterator[Finding]:
        if request is None:
            return
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "recv"
        ):
            return
        for target in node.targets:
            if isinstance(target, ast.Tuple) and len(target.elts) != len(request):
                yield self.finding(
                    ctx,
                    node,
                    f"recv() unpacked into {len(target.elts)} names, "
                    f"REQUEST_FIELDS declares {len(request)} ({request})",
                )
