"""Project-native static analysis and runtime concurrency checking.

Two halves:

* :mod:`repro.lint.engine` + :mod:`repro.lint.rules` — the AST rules engine
  behind ``python -m repro lint`` / the ``repro-lint`` console script.
* :mod:`repro.lint.lockcheck` — the opt-in (``REPRO_LOCKCHECK=1``) runtime
  lock-order detector; ``repro/serve`` and ``repro/parallel`` construct
  their locks through its :func:`~repro.lint.lockcheck.make_lock` /
  :func:`~repro.lint.lockcheck.make_rlock` factory.
"""

from repro.lint.engine import (
    LintResult,
    all_rules,
    lint_paths,
    main,
    render_report,
    run_cli,
)
from repro.lint.findings import Baseline, Finding
from repro.lint.lockcheck import (
    LockOrderViolation,
    make_lock,
    make_rlock,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "LockOrderViolation",
    "all_rules",
    "lint_paths",
    "main",
    "make_lock",
    "make_rlock",
    "render_report",
    "run_cli",
]
