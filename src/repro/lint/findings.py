"""Findings, inline suppressions, and the committed baseline format.

A finding is one rule violation at one source location.  Two mechanisms can
silence it:

* an **inline pragma** on the offending line::

      do_thing()  # repro-lint: disable=RULE-ID -- why this one is fine

  The justification after ``--`` is mandatory by convention (the lint
  regression test counts pragmas, and review rejects bare ones).

* a **baseline file** (JSON, committed) carrying per-``(rule, path)``
  allowances for pre-existing debt.  A file/rule pair whose current count
  is at or under its allowance is silenced wholesale; one new violation
  resurfaces the whole group so the debt cannot silently grow.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "Baseline",
    "Finding",
    "SUPPRESS_RE",
    "apply_baseline",
    "suppressed_rules",
]

#: ``# repro-lint: disable=RULE-A,RULE-B -- justification``
SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Z0-9,\-\s]+?)(?:\s*--\s*(?P<why>.*))?$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, addressable as ``path:line``."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    message: str
    hint: str = ""
    col: int = 0

    def format_text(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


def suppressed_rules(source_line: str) -> frozenset:
    """Rule ids disabled by an inline pragma on ``source_line`` (may be empty)."""
    match = SUPPRESS_RE.search(source_line)
    if not match:
        return frozenset()
    return frozenset(
        rule.strip() for rule in match.group("rules").split(",") if rule.strip()
    )


@dataclass
class Baseline:
    """Per-``(rule, path)`` finding allowances, round-trippable as JSON."""

    entries: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries: Dict[Tuple[str, str], int] = {}
        for finding in findings:
            key = (finding.rule, finding.path)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != 1:
            raise ValueError(f"{path}: not a repro-lint baseline (want version 1)")
        entries: Dict[Tuple[str, str], int] = {}
        for entry in data.get("entries", ()):
            entries[(entry["rule"], entry["path"])] = int(entry["count"])
        return cls(entries)

    def dump(self, path: Path) -> None:
        payload = {
            "version": 1,
            "entries": [
                {"rule": rule, "path": rel, "count": count}
                for (rule, rel), count in sorted(self.entries.items())
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def allowance(self, rule: str, path: str) -> int:
        return self.entries.get((rule, path), 0)


def apply_baseline(findings: List[Finding], baseline: Baseline) -> List[Finding]:
    """Drop finding groups covered by the baseline; surface grown groups whole."""
    grouped: Dict[Tuple[str, str], List[Finding]] = {}
    for finding in findings:
        grouped.setdefault((finding.rule, finding.path), []).append(finding)
    surfaced: List[Finding] = []
    for key, group in grouped.items():
        if len(group) <= baseline.allowance(*key):
            continue
        surfaced.extend(group)
    surfaced.sort(key=lambda f: (f.path, f.line, f.rule))
    return surfaced
