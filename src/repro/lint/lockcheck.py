"""Opt-in runtime lock-order detection (``REPRO_LOCKCHECK=1``).

The static LOCK-HELD-BLOCKING rule catches slow work *under* a lock; this
module catches the other deadlock family — inconsistent *ordering* between
locks.  Every lock in ``repro/serve`` and ``repro/parallel`` is constructed
through :func:`make_lock`/:func:`make_rlock` with a stable dotted name (the
lock's *class* in lockdep terms).  Normally that returns a plain
``threading`` primitive, zero overhead.  With ``REPRO_LOCKCHECK=1`` it
returns an instrumented wrapper that records, per thread, which lock
classes are held when a new one is acquired, feeds the cross-thread
acquisition-order graph, and runs incremental cycle detection on each new
edge: thread 1 taking A then B while thread 2 ever took B then A is a
potential deadlock *even if the interleaving never bit in this run*.

A violation raises :class:`LockOrderViolation` carrying both acquisition
stacks — the one that recorded the existing edge and the one that closed
the cycle — so CI fails with the two call paths that must be reordered.

Instances of the *same* named class never form a self-edge: per-object
sibling locks (one per model entry, say) are routinely taken in sequence
by iteration, which is ordering-safe.  Re-entering the very same ``Lock``
object on one thread, however, is self-deadlock and reported immediately.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Dict, List, Optional, Tuple

from repro.obs.log import get_logger

__all__ = [
    "InstrumentedLock",
    "InstrumentedRLock",
    "LockOrderGraph",
    "LockOrderViolation",
    "enabled",
    "global_graph",
    "make_lock",
    "make_rlock",
    "reset",
]

_log = get_logger("lint.lockcheck")

ENV_FLAG = "REPRO_LOCKCHECK"


def enabled() -> bool:
    """Whether lock instrumentation is switched on (read per construction)."""
    return os.environ.get(ENV_FLAG, "") == "1"


class LockOrderViolation(RuntimeError):
    """A potential deadlock: two lock classes acquired in both orders."""

    def __init__(self, message: str, *, first_stack: str = "", second_stack: str = ""):
        super().__init__(message)
        self.first_stack = first_stack
        self.second_stack = second_stack


def _stack() -> str:
    return "".join(traceback.format_stack(limit=16)[:-2])


class LockOrderGraph:
    """Cross-thread acquisition-order graph with incremental cycle checks.

    Nodes are lock class names; a directed edge ``A -> B`` means some thread
    acquired B while holding A, and stores the stack that first recorded it.
    The graph's own bookkeeping runs under a plain (uninstrumented) mutex
    held only for dict operations — never across a user lock acquisition.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: Dict[str, Dict[str, str]] = {}

    def record(self, held: List[str], new: str, stack: str) -> None:
        """Register ``held[i] -> new`` edges; raise on a resulting cycle."""
        conflict: Optional[Tuple[str, str]] = None
        with self._mutex:
            for holder in held:
                if holder == new:
                    continue  # sibling instances of one class; see module doc
                path = self._find_path(new, holder)
                if path is not None:
                    conflict = (holder, self._edges[new][path])
                    break
                self._edges.setdefault(holder, {})[new] = (
                    self._edges.get(holder, {}).get(new) or stack
                )
        if conflict is not None:
            holder, first_stack = conflict
            raise LockOrderViolation(
                f"lock-order inversion: acquiring {new!r} while holding "
                f"{holder!r}, but {holder!r} has been acquired after {new!r} "
                f"elsewhere.\n--- first order (recorded earlier) ---\n"
                f"{first_stack}\n--- second order (this thread) ---\n{stack}",
                first_stack=first_stack,
                second_stack=stack,
            )

    def _find_path(self, start: str, goal: str) -> Optional[str]:
        """DFS ``start -> ... -> goal``; returns the first hop on success."""
        stack = [(start, start)]
        seen = set()
        while stack:
            node, first_hop = stack.pop()
            if node == goal and node != start:
                return first_hop
            if node in seen:
                continue
            seen.add(node)
            for nxt in self._edges.get(node, ()):
                stack.append((nxt, nxt if node == start else first_hop))
        return None

    def edges(self) -> Dict[str, Dict[str, str]]:
        with self._mutex:
            return {a: dict(bs) for a, bs in self._edges.items()}

    def clear(self) -> None:
        with self._mutex:
            self._edges.clear()


_GRAPH = LockOrderGraph()
_TLS = threading.local()


def global_graph() -> LockOrderGraph:
    return _GRAPH


def reset() -> None:
    """Forget all recorded orderings (test isolation)."""
    _GRAPH.clear()


def _held_stack() -> List["_CheckedLock"]:
    held = getattr(_TLS, "held", None)
    if held is None:
        held = _TLS.held = []
    return held


class _CheckedLock:
    """Shared acquire/release bookkeeping for both lock flavours.

    Signature-compatible with ``threading.Lock``/``RLock`` including
    positional ``acquire(0)`` — which is what ``threading.Condition`` uses
    when handed a foreign lock — so instrumented locks drop into every
    construction site unchanged.
    """

    _reentrant = False

    def __init__(self, name: str, graph: Optional[LockOrderGraph] = None) -> None:
        self.name = name
        self._graph = graph if graph is not None else _GRAPH
        self._inner = threading.RLock() if self._reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = _held_stack()
        if blocking:
            self._precheck(held)
        ok = (
            self._inner.acquire(blocking)
            if timeout == -1
            else self._inner.acquire(blocking, timeout)
        )
        if ok:
            held.append(self)
        return ok

    def _precheck(self, held: List["_CheckedLock"]) -> None:
        if not held:
            return
        if not self._reentrant and any(other is self for other in held):
            raise LockOrderViolation(
                f"self-deadlock: thread re-acquiring non-reentrant lock "
                f"{self.name!r} it already holds\n{_stack()}",
                second_stack=_stack(),
            )
        if self._reentrant and held[-1] is self:
            return  # plain re-entry records no new ordering
        self._graph.record([other.name for other in held], self.name, _stack())

    def release(self) -> None:
        self._inner.release()
        held = _held_stack()
        for index in range(len(held) - 1, -1, -1):
            if held[index] is self:
                del held[index]
                break

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        return bool(inner_locked()) if inner_locked is not None else False

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self._reentrant else "Lock"
        return f"<Instrumented{kind} {self.name!r}>"


class InstrumentedLock(_CheckedLock):
    _reentrant = False


class InstrumentedRLock(_CheckedLock):
    _reentrant = True


def make_lock(name: str):
    """A ``threading.Lock`` — instrumented under ``REPRO_LOCKCHECK=1``.

    ``name`` is the lock's class for ordering purposes: stable, dotted,
    shared by sibling instances (e.g. ``"serve.gateway.model"``).
    """
    if enabled():
        _log.debug("lockcheck: instrumenting Lock %s", name)
        return InstrumentedLock(name)
    return threading.Lock()


def make_rlock(name: str):
    """A ``threading.RLock`` — instrumented under ``REPRO_LOCKCHECK=1``."""
    if enabled():
        _log.debug("lockcheck: instrumenting RLock %s", name)
        return InstrumentedRLock(name)
    return threading.RLock()
