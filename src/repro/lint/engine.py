"""The ``repro lint`` engine: rule registry, file walk, reporting.

Rules are small classes registered with :func:`rule`; each receives a parsed
:class:`FileContext` and yields :class:`Finding` objects.  The engine owns
everything rule-agnostic: discovering files, parsing, inline-pragma
suppression, baseline filtering, and the text/JSON reports — so adding a
rule is one class in ``rules.py`` plus a fixture test.
"""

from __future__ import annotations

import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.lint.findings import Baseline, Finding, apply_baseline, suppressed_rules

__all__ = [
    "FileContext",
    "LintResult",
    "Rule",
    "all_rules",
    "collect_files",
    "lint_paths",
    "render_report",
    "rule",
]

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}


@dataclass
class FileContext:
    """Everything a rule needs about one parsed source file."""

    path: Path  # absolute
    rel: str  # posix path relative to the lint root (what reports show)
    source: str
    lines: List[str]
    tree: ast.Module
    #: module-level functions and class methods by bare name — the one-level
    #: helper index LOCK-HELD-BLOCKING flows through.
    functions: Dict[str, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, rel: str) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            rel=rel,
            source=source,
            lines=source.splitlines(),
            tree=tree,
        )
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Last definition wins; rules only need "a same-module body
                # with this name", not full resolution.
                ctx.functions[node.name] = node
        return ctx

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class: subclass, set ``id``/``hint``, implement ``check``."""

    id: str = ""
    hint: str = ""

    def applies(self, rel: str) -> bool:
        """Whether this rule runs on the file at repo-relative path ``rel``."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str, hint: Optional[str] = None
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint if hint is None else hint,
        )


_REGISTRY: List[Type[Rule]] = []


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: register a rule with the engine."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    _REGISTRY.append(cls)
    return cls


def all_rules() -> List[Rule]:
    import repro.lint.rules  # noqa: F401  -- registration side effect

    return [cls() for cls in _REGISTRY]


def collect_files(paths: Sequence[Path], root: Path) -> List[Path]:
    """Every ``.py`` file under ``paths``, skipping caches and VCS dirs."""
    files: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIR_NAMES for part in candidate.parts):
                continue
            files.append(candidate)
    # Dedupe while keeping deterministic order.
    seen = set()
    unique: List[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


@dataclass
class LintResult:
    findings: List[Finding]
    files_checked: int
    suppressed: int
    parse_errors: List[Finding]

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Run every registered rule over ``paths`` and filter suppressions."""
    root = (root or Path.cwd()).resolve()
    active = list(rules) if rules is not None else all_rules()
    raw: List[Finding] = []
    parse_errors: List[Finding] = []
    suppressed = 0
    files = collect_files([Path(p) for p in paths], root)
    for path in files:
        rel = _relative(path, root)
        try:
            ctx = FileContext.parse(path, rel)
        except (SyntaxError, UnicodeDecodeError) as exc:
            parse_errors.append(
                Finding(
                    rule="PARSE-ERROR",
                    path=rel,
                    line=getattr(exc, "lineno", 0) or 0,
                    message=f"could not parse: {exc}",
                )
            )
            continue
        for active_rule in active:
            if not active_rule.applies(rel):
                continue
            for finding in active_rule.check(ctx):
                if finding.rule in suppressed_rules(ctx.line_text(finding.line)):
                    suppressed += 1
                    continue
                raw.append(finding)
    if baseline is not None:
        raw = apply_baseline(raw, baseline)
    raw.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintResult(
        findings=raw,
        files_checked=len(files),
        suppressed=suppressed,
        parse_errors=parse_errors,
    )


def render_report(result: LintResult, fmt: str = "text") -> str:
    """The report body for ``--format text`` or ``--format json``."""
    everything = result.parse_errors + result.findings
    if fmt == "json":
        return json.dumps(
            {
                "findings": [f.to_dict() for f in everything],
                "files_checked": result.files_checked,
                "suppressed": result.suppressed,
                "clean": result.clean,
            },
            indent=2,
        )
    if not everything:
        return (
            f"repro lint: clean ({result.files_checked} files, "
            f"{result.suppressed} inline suppressions)"
        )
    parts = [f.format_text() for f in everything]
    parts.append(
        f"repro lint: {len(everything)} finding(s) in {result.files_checked} files"
    )
    return "\n".join(parts)


def add_cli_arguments(parser) -> None:
    """Attach the ``repro lint`` arguments to an argparse parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline JSON of accepted pre-existing findings "
        "(default: ./lint-baseline.json when present)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write current findings as a new baseline and exit 0",
    )


def run_cli(
    paths: Sequence[str],
    *,
    fmt: str = "text",
    baseline_path: Optional[str] = None,
    write_baseline: Optional[str] = None,
) -> int:
    """Shared driver behind ``python -m repro lint`` and ``repro-lint``."""
    baseline: Optional[Baseline] = None
    if baseline_path is None and Path("lint-baseline.json").is_file():
        baseline_path = "lint-baseline.json"
    if write_baseline is None and baseline_path is not None:
        baseline = Baseline.load(Path(baseline_path))

    result = lint_paths([Path(p) for p in paths], baseline=baseline)
    if write_baseline is not None:
        Baseline.from_findings(result.findings).dump(Path(write_baseline))
        print(
            f"wrote baseline with {len(result.findings)} finding(s) "
            f"to {write_baseline}"
        )
        return 0
    print(render_report(result, fmt))
    return 0 if result.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for the ``repro-lint`` console script."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-native static analysis for the repro serving stack.",
    )
    add_cli_arguments(parser)
    args = parser.parse_args(argv)
    return run_cli(
        args.paths,
        fmt=args.format,
        baseline_path=args.baseline,
        write_baseline=args.write_baseline,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
