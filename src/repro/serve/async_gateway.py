"""Asyncio front door over the process-backed serving gateway.

The thread :class:`~repro.serve.gateway.Gateway` runs one blocking
dispatcher thread per model and hands callers ``concurrent.futures``
handles — fine for a handful of benchmark clients, wrong for a front door
multiplexing thousands of connections.  :class:`AsyncGateway` keeps every
piece of the existing stack — admission control, shard policies, the
once-per-host :class:`~repro.serve.shm.SharedWeightStore`, and the
:class:`~repro.serve.worker.ProcessServer` pipe protocol — but replaces
the per-model dispatcher threads with **one asyncio event loop**:

* **pipe multiplexing** — each process replica's response pipe registers
  with ``loop.add_reader`` (the replica's
  :meth:`~repro.serve.worker.ProcessServer.set_response_watcher` watcher
  mode, so no receiver thread exists either); the loop drains responses
  via :meth:`~repro.serve.worker.ProcessServer.process_responses` the
  moment a pipe turns readable.  Where pipe fds are not selectable
  (non-Unix event loops), replicas keep their receiver threads and
  results bridge onto the loop through ``call_soon_threadsafe`` — the
  same completion path, minus the fd registration.
* **deadlines** — ``await submit(model, x, deadline=0.2)`` raises
  :class:`~repro.utils.errors.DeadlineExceeded` when the budget runs out.
  A request still *queued* for a concurrency slot is withdrawn outright:
  its slot request is cancelled, the queue-depth gauge decrements, and
  the next waiter is admitted — an expired request can never camp on
  admission capacity.  A request already *in service* on a replica is
  abandoned: the caller unblocks now, and the concurrency slot frees
  when the replica's (discarded) answer lands.
* **cancellation** — cancelling the awaiting coroutine performs the same
  cleanup with a ``cancelled`` outcome: counters move, the queue slot
  frees, and the ``gateway.request`` span finishes with
  ``outcome="cancelled"`` instead of leaking unfinished.
* **graceful drain** — ``await stop()`` closes admission, waits for every
  in-flight request to settle (or be abandoned by its own deadline), then
  stops the replica fleet exactly like the thread gateway.

Per-request outcome is single-assignment (``_AsyncRequest.outcome``):
completion, failure, deadline expiry, and cancellation race benignly —
whichever lands first owns the counters and the span, and the losers are
no-ops.  All request-path state is touched only from the owning event
loop's thread, so the front door itself needs no new locks; the per-model
``entry.lock`` still guards counters because ``stats()`` and the metrics
collector read them from arbitrary threads.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.obs.log import get_logger
from repro.obs.trace import Span
from repro.serve.gateway import Gateway, _Model
from repro.serve.worker import ProcessServer
from repro.utils.errors import DeadlineExceeded, GatewayOverloaded, ValidationError

__all__ = ["AsyncGateway"]

_log = get_logger("serve.async_gateway")

#: How long the stop path waits for the event loop to detach a pipe
#: reader before giving up (a dead/closing loop cannot acknowledge).
_UNWATCH_TIMEOUT_S = 30.0


class _SlotGate:
    """FIFO concurrency gate owned by one event-loop thread — no locks.

    ``asyncio.Semaphore`` has had version-dependent wake-loss bugs when a
    waiter is cancelled in the same beat its slot is granted; this gate is
    small enough to be obviously correct instead.  ``acquire`` either takes
    a free slot immediately or parks a future in FIFO order; ``release``
    grants the oldest live waiter.  A waiter cancelled *after* its grant
    passes the slot straight on, so cancellation can never strand capacity.
    """

    def __init__(self, slots: int) -> None:
        self._free = int(slots)
        self._waiters: Deque[asyncio.Future] = deque()

    @property
    def free(self) -> int:
        return self._free

    async def acquire(self) -> None:
        if self._free > 0 and not self._waiters:
            self._free -= 1
            return
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append(fut)
        try:
            await fut
        except asyncio.CancelledError:
            if fut.done() and not fut.cancelled():
                # Granted and cancelled in the same beat: hand the slot on.
                self.release()
            else:
                fut.cancel()
                try:
                    self._waiters.remove(fut)
                except ValueError:
                    pass
            raise

    def release(self) -> None:
        self._free += 1
        while self._free > 0 and self._waiters:
            fut = self._waiters.popleft()
            if fut.done():  # cancelled while parked
                continue
            self._free -= 1
            fut.set_result(None)


@dataclass
class _AsyncRequest:
    """One admitted request's loop-side state (loop-thread only)."""

    entry: _Model
    x: np.ndarray
    key: Optional[str]
    enqueued: float
    span: Optional[Span] = None
    wall_enqueued: float = 0.0
    dispatched: bool = False  # handed to a replica server
    abandoned: bool = False  # caller left (deadline/cancel) after dispatch
    outcome: Optional[str] = None  # single-assignment terminal outcome
    outcome_hint: str = "cancelled"  # what an abandonment should count as
    waiter: Optional[asyncio.Future] = None


class AsyncGateway(Gateway):
    """Event-loop front door sharing the thread gateway's whole backend.

    Same constructor and ``add_model`` as :class:`Gateway`; the lifecycle
    and request surface are coroutines::

        gateway = AsyncGateway(replica_backend="process")
        gateway.add_model("ranker", source=blob, replicas=4)
        async with gateway:
            y = await gateway.submit("ranker", x, deadline=0.25)

    The gateway binds to the event loop :meth:`start` runs on; every
    ``submit``/``stop`` must come from that loop.  The inherited blocking
    halves (replica boot, shared-segment decode, worker shutdown) run in
    worker threads via ``asyncio.to_thread`` so the loop never blocks.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[int] = None
        self._tasks: Set[asyncio.Task] = set()
        self._gates: Dict[str, _SlotGate] = {}
        self._watched: Dict[ProcessServer, object] = {}

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "AsyncGateway":
        loop = asyncio.get_running_loop()
        entries = self._begin_start()
        if not entries:
            return self  # already running
        self._loop = loop
        self._loop_thread = threading.get_ident()
        multiplex = self._add_reader_supported(loop)
        if not multiplex:
            _log.info(
                "event loop has no add_reader; process replicas keep their "
                "receiver threads and bridge results onto the loop"
            )
        for entry in entries:
            for replica in entry.replicas:
                if isinstance(replica.server, ProcessServer):
                    replica.server.set_response_watcher(
                        self._pipe_watcher if multiplex else None
                    )
        # The slow half (shared-segment decode + worker spawns) runs off
        # the loop; watcher notifications land back on it via
        # call_soon_threadsafe while we await.
        await asyncio.to_thread(self._start_replica_servers, entries)
        with self._gate_lock:
            for entry in entries:
                entry.reset_for_run()
                self._gates[entry.name] = _SlotGate(entry.max_concurrency)
            self._mark_running()
        return self

    async def stop(self) -> None:
        """Close admission, drain every in-flight request, stop the fleet.

        Requests already admitted keep their concurrency slots and settle
        normally (or get abandoned by their own deadlines — an abandoned
        request's slot frees when its replica answer lands, so the drain
        cannot deadlock on expired callers).
        """
        with self._gate_lock:
            if not self._running:
                return
            self._running = False
            entries = list(self._models.values())
        for entry in entries:
            with entry.lock:
                entry.accepting = False
        # No awaits between the admission flip above and this snapshot, so
        # no request can be admitted but missed by the drain.
        pending = [task for task in self._tasks if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await asyncio.to_thread(self._shutdown_replica_servers, entries)

    async def close(self) -> None:
        """Stop (if running) and release every replica runtime."""
        await self.stop()

        def _release_runtimes() -> None:
            with self._gate_lock:
                if self._closed:
                    return
                self._closed = True
                for entry in self._models.values():
                    for replica in entry.replicas:
                        replica.close_runtime()

        await asyncio.to_thread(_release_runtimes)

    async def __aenter__(self) -> "AsyncGateway":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def __enter__(self) -> "AsyncGateway":
        raise ValidationError("AsyncGateway is async: use 'async with'")

    def __exit__(self, *exc) -> None:  # pragma: no cover - __enter__ raises
        raise ValidationError("AsyncGateway is async: use 'async with'")

    # -- request path ------------------------------------------------------
    async def submit(
        self,
        model: str,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """One sample through the gateway; the awaited output row.

        ``deadline`` is this request's whole budget in seconds (queue wait
        included).  Expiry raises :class:`DeadlineExceeded` and releases
        whatever the request still holds; cancelling the coroutine does
        the same with a ``cancelled`` outcome.  Admission failures
        (:class:`GatewayOverloaded`, :class:`ValidationError`) raise
        before the first await, exactly like the thread gateway's
        ``submit``.
        """
        if deadline is not None and float(deadline) <= 0.0:
            raise ValidationError("deadline must be positive seconds (or None)")
        request, task = self._admit(model, x, key)
        return await self._await_result(request, task, deadline)

    async def submit_many(
        self,
        model: str,
        xs: Sequence[np.ndarray],
        *,
        keys: Optional[Sequence[Optional[str]]] = None,
        deadline: Optional[float] = None,
    ) -> List[np.ndarray]:
        """A batch of samples; resolves when every row is in.

        Admission is per sample; a mid-sequence rejection carries the
        already-admitted requests' tasks as ``exc.admitted`` so callers
        can await or cancel the partial batch instead of leaking it.
        ``deadline`` applies to each request individually.
        """
        if keys is not None and len(keys) != len(xs):
            raise ValidationError("keys must parallel xs")
        if deadline is not None and float(deadline) <= 0.0:
            raise ValidationError("deadline must be positive seconds (or None)")
        admitted: List[tuple] = []
        try:
            for i, x in enumerate(xs):
                admitted.append(
                    self._admit(model, x, keys[i] if keys is not None else None)
                )
        except BaseException as exc:
            try:
                exc.admitted = tuple(task for _request, task in admitted)
            except AttributeError:  # exotic exception with __slots__
                pass
            raise
        return await asyncio.gather(
            *(
                self._await_result(request, task, deadline)
                for request, task in admitted
            )
        )

    async def infer(
        self,
        model: str,
        x: np.ndarray,
        *,
        key: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """Alias of :meth:`submit` for surface parity with :class:`Gateway`."""
        return await self.submit(model, x, key=key, deadline=deadline)

    def _admit(self, model: str, x: np.ndarray, key: Optional[str]) -> tuple:
        """Synchronous admission: validate, count, start the request task."""
        loop = asyncio.get_running_loop()
        if loop is not self._loop:
            raise ValidationError(
                "AsyncGateway is bound to the event loop it started on; "
                "submit from that loop"
            )
        entry = self._model(model)
        # Validate before the span exists: a rejected sample must not leak
        # an unfinished gateway.request span.
        sample = self._validate_sample(entry, x)
        span: Optional[Span] = None
        if self._tracer.sample():
            span = self._tracer.start_span("gateway.request", attrs={"model": model})
            if key is not None:
                span.set(key=key)
        try:
            with entry.lock:
                if not entry.accepting:
                    raise ValidationError("gateway is not running (call start())")
                if entry.queued >= entry.max_queue_depth:
                    entry.rejected += 1
                    raise GatewayOverloaded(
                        f"model {model!r} is saturated: gateway queue is at its "
                        f"depth limit of {entry.max_queue_depth}; retry with "
                        "backoff or shed load"
                    )
                entry.queued += 1
                entry.submitted += 1
        except BaseException as exc:
            if span is not None:
                outcome = "rejected" if isinstance(exc, GatewayOverloaded) else "error"
                span.set(status=outcome, outcome=outcome)
                span.finish()
            raise
        request = _AsyncRequest(
            entry=entry,
            x=sample,
            key=key,
            enqueued=time.perf_counter(),
            span=span,
            wall_enqueued=time.time() if span is not None else 0.0,
        )
        task = loop.create_task(self._run_request(request))
        self._tasks.add(task)
        task.add_done_callback(
            lambda t, req=request: self._request_task_done(t, req)
        )
        return request, task

    def _request_task_done(self, task: asyncio.Task, request: _AsyncRequest) -> None:
        self._tasks.discard(task)
        if task.cancelled() and request.outcome is None and not request.dispatched:
            # Cancelled before its first step: the coroutine body never ran,
            # so neither the gate.acquire handler nor _settle will — the
            # admission counter and the outcome are still ours to settle.
            with request.entry.lock:
                request.entry.queued -= 1
            self._finish_abandoned(request)

    async def _await_result(
        self, request: _AsyncRequest, task: asyncio.Task, deadline: Optional[float]
    ) -> np.ndarray:
        if deadline is None:
            # Direct await: caller cancellation propagates into the task,
            # whose own CancelledError handlers run the abandon accounting
            # (the trailing _abandon is then a no-op on the done task).
            try:
                return await task
            except asyncio.CancelledError:
                self._abandon(request, task, "cancelled")
                raise
        # Shield the request task: expiry/cancellation of *this caller*
        # must run the abandon protocol below, not tear the task down
        # mid-accounting.
        shielded = asyncio.shield(task)
        try:
            return await asyncio.wait_for(shielded, timeout=float(deadline))
        except asyncio.TimeoutError:
            self._abandon(request, task, "deadline_exceeded")
            raise DeadlineExceeded(
                f"request to model {request.entry.name!r} exceeded its "
                f"deadline of {float(deadline):.3f}s"
            ) from None
        except asyncio.CancelledError:
            self._abandon(request, task, "cancelled")
            raise

    async def _run_request(self, request: _AsyncRequest) -> np.ndarray:
        entry = request.entry
        gate = self._gates[entry.name]
        try:
            await gate.acquire()
        except asyncio.CancelledError:
            # Withdrawn while queued: the admission slot frees *now* — an
            # expired request must not camp on queue capacity.
            with entry.lock:
                entry.queued -= 1
            self._finish_abandoned(request)
            raise
        span = request.span
        if span is not None:
            # Admission wait: submit-time enqueue → concurrency slot.
            span.child("gateway.admission", start_s=request.wall_enqueued).finish()
        dequeued = False
        try:
            shard_start = time.time() if span is not None else 0.0
            index = int(entry.policy.choose(entry.replicas, request.key))
            replica = entry.replicas[index]
            if span is not None:
                span.child(
                    "gateway.shard",
                    start_s=shard_start,
                    attrs={"policy": entry.policy.name, "replica": replica.id},
                ).finish()
            with entry.lock:
                entry.queued -= 1
                replica.dispatched += 1
            dequeued = True
            inner = replica.server.submit(request.x, span)
        except BaseException as exc:
            # A failing shard policy (or replica submit) must not leak the
            # admission counter or the concurrency slot.
            with entry.lock:
                entry.failures += 1
                if not dequeued:
                    entry.queued -= 1
            gate.release()
            request.outcome = "error"
            if span is not None:
                span.set(status="error", outcome="error")
                span.finish()
            raise exc
        request.dispatched = True
        request.waiter = self._loop.create_future()
        inner.add_done_callback(
            lambda f, req=request: self._bridge_settle(req, f)
        )
        try:
            return await request.waiter
        except asyncio.CancelledError:
            request.abandoned = True
            self._finish_abandoned(request)
            raise

    def _abandon(self, request: _AsyncRequest, task: asyncio.Task, outcome: str) -> None:
        """Caller left (deadline expired / cancelled): clean up now.

        Runs on the loop thread, so ``dispatched``/``outcome`` are
        consistent: either the request still waits on a concurrency slot
        (cancel the task — its slot request unwinds and admission frees),
        or it is in service (account the abandonment now, unblock the task;
        the slot frees when the replica's discarded answer settles).
        """
        if task.done() or request.outcome is not None:
            return  # settled in the same beat; the result's outcome stands
        request.outcome_hint = outcome
        if request.dispatched:
            request.abandoned = True
            self._finish_abandoned(request)
            if request.waiter is not None and not request.waiter.done():
                request.waiter.cancel()
        else:
            task.cancel()

    def _finish_abandoned(self, request: _AsyncRequest) -> None:
        """Single-assignment outcome + counters + span for an abandonment."""
        if request.outcome is not None:
            return
        outcome = request.outcome_hint
        request.outcome = outcome
        entry = request.entry
        with entry.lock:
            entry.latency_hist.observe(time.perf_counter() - request.enqueued)
            if outcome == "deadline_exceeded":
                entry.deadline_exceeded += 1
            else:
                entry.cancelled += 1
        if request.span is not None:
            request.span.set(status=outcome, outcome=outcome)
            request.span.finish()

    def _bridge_settle(self, request: _AsyncRequest, inner) -> None:
        """Route a finished replica future to :meth:`_settle` on the loop.

        In multiplex mode the worker future resolves *on the loop thread
        itself* (inside ``process_responses``, after the server has dropped
        its state lock), so settling runs inline — no ``call_soon_threadsafe``
        self-pipe wakeup syscall per response.  The receiver-thread fallback
        bridges across threads the usual way.
        """
        if threading.get_ident() == self._loop_thread:
            self._settle(request, inner)
        else:
            self._loop.call_soon_threadsafe(self._settle, request, inner)

    def _settle(self, request: _AsyncRequest, inner) -> None:
        """A replica answer landed (loop thread): free the slot, resolve."""
        entry = request.entry
        gate = self._gates.get(entry.name)
        if gate is not None:
            gate.release()
        waiter = request.waiter
        if request.abandoned or request.outcome is not None:
            # The caller already left; the answer is discarded.  Cancel the
            # waiter so the request task unwinds instead of lingering.
            if waiter is not None and not waiter.done():
                waiter.cancel()
            return
        exc = inner.exception()
        request.outcome = "completed" if exc is None else "failed"
        with entry.lock:
            entry.latency_hist.observe(time.perf_counter() - request.enqueued)
            if exc is None:
                entry.completed += 1
            else:
                entry.failures += 1
        if request.span is not None:
            if exc is None:
                request.span.set(outcome="completed")
            else:
                request.span.set(status="error", outcome="failed")
            request.span.finish()
        if waiter is None or waiter.done():  # pragma: no cover - defensive
            return
        if exc is None:
            waiter.set_result(inner.result())
        else:
            waiter.set_exception(exc)

    # -- pipe multiplexing -------------------------------------------------
    @staticmethod
    def _add_reader_supported(loop: asyncio.AbstractEventLoop) -> bool:
        """Probe whether this loop can watch raw pipe fds (selector loops
        can; proactor-style loops raise NotImplementedError)."""
        read_fd, write_fd = os.pipe()
        try:
            try:
                loop.add_reader(read_fd, lambda: None)
            except (NotImplementedError, PermissionError):
                return False
            loop.remove_reader(read_fd)
            return True
        finally:
            os.close(read_fd)
            os.close(write_fd)

    def _pipe_watcher(self, server: ProcessServer, conn) -> None:
        """The :meth:`ProcessServer.set_response_watcher` callback.

        Watch calls (``conn`` set) arrive from server start/respawn threads
        with the server's state lock held, so they only schedule onto the
        loop.  The unwatch call (``conn is None``) arrives from the stop
        path without the lock and blocks until the loop has dropped the
        reader — the stopping thread becomes the pipe's sole reader next.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            self._watched.pop(server, None)
            return
        if conn is not None:
            loop.call_soon_threadsafe(self._watch, server, conn)
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:  # pragma: no cover - stop() always runs off-loop
            self._unwatch(server)
            return
        detached = threading.Event()
        try:
            loop.call_soon_threadsafe(self._unwatch, server, detached.set)
        except RuntimeError:  # loop shut down between the check and the call
            self._watched.pop(server, None)
            return
        if not detached.wait(timeout=_UNWATCH_TIMEOUT_S):  # pragma: no cover
            _log.warning("event loop did not detach a pipe reader in time")

    def _watch(self, server: ProcessServer, conn) -> None:
        """Loop thread: register a replica response pipe with the loop."""
        stale = self._watched.pop(server, None)
        if stale is not None and stale is not conn:
            try:
                self._loop.remove_reader(stale.fileno())
            except (ValueError, OSError):
                pass
        try:
            fd = conn.fileno()
        except (ValueError, OSError):  # already closed (server stopped)
            return
        self._watched[server] = conn
        self._loop.add_reader(fd, self._on_pipe_readable, server, conn)

    def _unwatch(self, server: ProcessServer, done=None) -> None:
        """Loop thread: drop a replica's pipe reader (ack via ``done``)."""
        conn = self._watched.pop(server, None)
        if conn is not None:
            try:
                self._loop.remove_reader(conn.fileno())
            except (ValueError, OSError):
                pass
        if done is not None:
            done()

    def _on_pipe_readable(self, server: ProcessServer, conn) -> None:
        """Loop thread: a watched response pipe has data (or broke)."""
        if not server.process_responses():
            # Done with this pipe: the worker said bye, or it crashed (the
            # server respawns off-loop and re-notifies the watcher with the
            # replacement pipe).
            if self._watched.get(server) is conn:
                self._unwatch(server)
