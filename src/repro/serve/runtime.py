"""On-demand model serving runtime over a ``.dsz`` archive.

A :class:`ModelRuntime` is the edge/serving-node counterpart of the cloud
encoder: it memory-maps an archive (or wraps an in-memory blob) and decodes
layers *lazily*, each first touch reading only that layer's segments and
running the index + data codecs + CSR rebuild for that layer alone.  Decoded
dense matrices go through a byte-bounded, thread-safe LRU cache
(:class:`repro.serve.cache.LRUCache`) with single-flight misses, so a
serving node with less RAM than the decoded model still serves every layer,
and repeat access is a dictionary hit.

``prefetch`` fans the first-touch decodes out on the PR-1
:class:`repro.parallel.pool.TaskPool` (thread mode: the heavy lifting is
GIL-releasing zlib/NumPy work), which is how a node hides decode latency
behind the network transfer of the *next* archive.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

import numpy as np  # noqa: F401 - np.ndarray in docs/annotations

from repro.core.decoder import decode_compressed_layer, decode_compressed_layer_sparse
from repro.lint.lockcheck import make_lock
from repro.core.encoder import CompressedModel
from repro.nn.sparse import SparseWeight
from repro.obs import profile
from repro.parallel.pool import TaskPool
from repro.serve.cache import CacheStats, LRUCache
from repro.store.archive import ModelArchive, archive_bytes
from repro.utils.errors import ValidationError

__all__ = [
    "RuntimeStats",
    "ModelRuntime",
    "DEFAULT_CACHE_BYTES",
    "decode_compressed_layer",
]

#: Default decoded-layer cache budget (enough for every mini-zoo model).
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


@dataclass
class RuntimeStats:
    """Serving-side counters: cache behaviour plus per-layer decode cost.

    ``stage_seconds`` breaks the decode time down by codec stage
    (:data:`repro.obs.profile.DECODE_STAGES`) — populated whenever the
    observability instrumentation is enabled, empty otherwise.
    """

    cache: CacheStats
    decodes: int = 0
    decode_seconds: Dict[str, float] = field(default_factory=dict)
    bytes_read: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_decode_seconds(self) -> float:
        return float(sum(self.decode_seconds.values()))

    def as_dict(self) -> dict:
        return {
            "cache": self.cache.as_dict(),
            "decodes": self.decodes,
            "decode_seconds": dict(self.decode_seconds),
            "total_decode_seconds": self.total_decode_seconds,
            "bytes_read": self.bytes_read,
            "stage_seconds": dict(self.stage_seconds),
        }


class ModelRuntime:
    """Lazy, cached, thread-safe access to a compressed model's layers.

    Parameters
    ----------
    source:
        A path to a ``.dsz`` archive (opened with mmap), raw archive bytes
        (v2 or v1 compat), an open :class:`ModelArchive`, or a
        :class:`CompressedModel` (wrapped in an in-memory archive).
    cache_bytes:
        Budget of the decoded-layer LRU cache.
    verify:
        CRC-check segment bytes on every (cold) read.  Warm hits never
        re-read or re-verify.
    sparse:
        Serve layers in compressed-domain form: decoding stops at the
        two-array :class:`~repro.pruning.SparseLayer` and :meth:`layer`
        returns a matmul-ready :class:`~repro.nn.sparse.SparseWeight`
        instead of a dense matrix.  Cache entries are charged their actual
        CSC footprint (data + indices + indptr), so at the paper's ~10%
        density the same byte budget holds ~5x more models.
    """

    def __init__(
        self,
        source: Union[str, Path, bytes, bytearray, memoryview, ModelArchive, CompressedModel],
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        verify: bool = True,
        sparse: bool = False,
    ) -> None:
        self._owns_archive = True
        if isinstance(source, ModelArchive):
            self._archive = source
            self._owns_archive = False
        elif isinstance(source, CompressedModel):
            self._archive = ModelArchive.from_bytes(archive_bytes(source))
        elif isinstance(source, (bytes, bytearray, memoryview)):
            self._archive = ModelArchive.from_bytes(source)
        elif isinstance(source, (str, Path)):
            self._archive = ModelArchive.open(source)
        else:
            raise ValidationError(
                f"unsupported runtime source type: {type(source).__name__}"
            )
        self._verify = bool(verify)
        self._sparse = bool(sparse)
        self._cache: LRUCache[str, np.ndarray] = LRUCache(cache_bytes)
        self._stats_lock = make_lock("serve.runtime.stats")
        self._decodes = 0
        self._decode_seconds: Dict[str, float] = {}
        self._stage_seconds: Dict[str, float] = {}
        self._bytes_read = 0
        self._closed = False

    # -- introspection -----------------------------------------------------
    @property
    def archive(self) -> ModelArchive:
        return self._archive

    @property
    def network(self) -> str:
        return self._archive.manifest.network

    @property
    def sparse(self) -> bool:
        """Whether layers are served in compressed-domain (sparse) form."""
        return self._sparse

    @property
    def layer_names(self) -> list[str]:
        return self._archive.layer_names

    def layer_shape(self, name: str) -> tuple[int, int]:
        """A layer's dense (rows, cols) shape, straight from the manifest.

        Shape questions must not cost a decode; serving networks
        (:class:`~repro.serve.gateway.ArchiveMLP`) and the shared-memory
        builder validate topologies through this instead of reaching into
        the archive, so a :class:`~repro.serve.shm.SharedRuntime` can
        answer the same question without any archive at all.
        """
        self._archive_check(name)
        shape = self._archive.manifest.layers[name].shape
        return (int(shape[0]), int(shape[1]))

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held by the decoded-layer cache (dense ``nbytes``
        or true CSC footprint in sparse mode) — what a serving gateway
        reports as this replica's memory cost."""
        return int(self._cache.current_bytes)

    def stats(self) -> RuntimeStats:
        with self._stats_lock:
            return RuntimeStats(
                cache=self._cache.stats(),
                decodes=self._decodes,
                decode_seconds=dict(self._decode_seconds),
                bytes_read=self._bytes_read,
                stage_seconds=dict(self._stage_seconds),
            )

    # -- decoding ----------------------------------------------------------
    def layer(self, name: str) -> "np.ndarray | SparseWeight":
        """The weight matrix of one layer (decoded on first touch).

        A dense ndarray normally, or a
        :class:`~repro.nn.sparse.SparseWeight` when the runtime serves in
        sparse mode.  The returned object is the cached one with its arrays
        marked read-only — callers that need to mutate must copy
        (``Network.set_weights`` already does).
        """
        return self._cache.get_or_create(name, lambda: self._decode(name))

    def _decode(self, name: str) -> "tuple[np.ndarray | SparseWeight, int]":
        # The stage sink is installed *here* — inside the task — so decodes
        # running on prefetch pool threads attribute their codec stages to
        # this runtime exactly like request-path decodes do.
        start = time.perf_counter()
        with profile.stage_sink() as stages:
            compressed = self._archive.read_layer(name, verify=self._verify)
            if self._sparse:
                # Compressed-domain fast path: stop at the two-array form and
                # build the CSC kernel operand; the entry is charged its true
                # data + indices + indptr footprint, not the dense nbytes.
                sparse_layer = decode_compressed_layer_sparse(compressed)
                with profile.stage("build"):
                    value = SparseWeight.from_sparse_layer(sparse_layer)
                size = value.nbytes
            else:
                dense = decode_compressed_layer(compressed)
                dense.flags.writeable = False
                value, size = dense, int(dense.nbytes)
        elapsed = time.perf_counter() - start
        with self._stats_lock:
            self._decodes += 1
            self._decode_seconds[name] = (
                self._decode_seconds.get(name, 0.0) + elapsed
            )
            self._bytes_read += compressed.compressed_bytes
            for stage_name, seconds in stages.items():
                self._stage_seconds[stage_name] = (
                    self._stage_seconds.get(stage_name, 0.0) + seconds
                )
        return value, size

    def prefetch(
        self, names: Optional[Iterable[str]] = None, *, workers: Optional[int] = None
    ) -> list[str]:
        """Warm the cache for ``names`` (default: every layer) concurrently.

        Returns the prefetched names.  ``workers=None`` resolves through
        ``REPRO_WORKERS`` / CPU count; decodes fan out on a thread pool
        (zlib/NumPy release the GIL) and single-flight caching keeps each
        layer decoded at most once even if requests race the prefetch.
        """
        targets = list(names) if names is not None else self.layer_names
        for name in targets:
            self._archive_check(name)
        TaskPool(workers, mode="thread").map(self.layer, targets)
        return targets

    def _archive_check(self, name: str) -> None:
        if name not in self._archive.manifest.layers:
            raise ValidationError(
                f"archive has no layer {name!r}; available: {self.layer_names}"
            )

    def decode_all(self) -> "Dict[str, np.ndarray | SparseWeight]":
        """Every layer's weights (through the cache)."""
        return {name: self.layer(name) for name in self.layer_names}

    def load_into(self, network) -> None:
        """Install every decoded layer into a :class:`repro.nn.Network`.

        In sparse mode the target fc layers switch to compressed-domain
        execution (:meth:`Network.set_sparse_weights`) and share the cached
        CSC arrays instead of copying a dense matrix.
        """
        for name in self.layer_names:
            if self._sparse:
                network.set_sparse_weights(name, self.layer(name))
            else:
                network.set_weights(name, self.layer(name))

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._cache.clear()
            if self._owns_archive:
                self._archive.close()

    def __enter__(self) -> "ModelRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ModelRuntime network={self.network!r} layers={len(self.layer_names)} "
            f"cache={self._cache.current_bytes}/{self._cache.max_bytes}B>"
        )
