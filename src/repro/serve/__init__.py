"""On-demand model serving: cache, runtime, server, and multi-model gateway.

* :mod:`repro.serve.cache` — :class:`LRUCache`, the byte-bounded,
  thread-safe, single-flight LRU for decoded dense layers;
* :mod:`repro.serve.runtime` — :class:`ModelRuntime`, lazy per-layer decode
  over a memory-mapped ``.dsz`` archive with prefetch on the shared task
  pool;
* :mod:`repro.serve.server` — :class:`Server`, the dynamic-batching
  inference front-end with throughput / latency-percentile reporting;
* :mod:`repro.serve.shm` — :class:`SharedWeightStore` /
  :class:`SharedRuntime`, the once-per-host shared-memory weight cache:
  decode a model's layers into one ``multiprocessing.shared_memory``
  segment and reconstruct zero-copy read-only views in worker processes;
* :mod:`repro.serve.worker` — :class:`ProcessServer`, the process-backed
  replica: a worker process running the dynamic-batching loop over pipes,
  with crash containment (:class:`~repro.utils.errors.ReplicaCrashed`) and
  automatic respawn;
* :mod:`repro.serve.gateway` — :class:`Gateway`, the multi-model,
  multi-replica front door: pluggable shard policies (round-robin,
  least-loaded, consistent-hash), thread- or process-backed replica pools
  (``replica_backend=``), bounded-queue admission control with fast-fail
  :class:`~repro.utils.errors.GatewayOverloaded` rejection, and fleet-wide
  stats;
* :mod:`repro.serve.async_gateway` — :class:`AsyncGateway`, the asyncio
  front door over the same backend: one event loop multiplexes the worker
  response pipes, with per-request deadlines
  (:class:`~repro.utils.errors.DeadlineExceeded`), real cancellation, and
  graceful drain;
* :mod:`repro.serve.http` — the minimal stdlib HTTP surface
  (``python -m repro serve-http``): ``/v1/infer/<model>``, ``/metrics``,
  ``/healthz``;
* :mod:`repro.serve.bench` — the cold/warm/concurrency and gateway-scaling
  measurement harnesses behind ``python -m repro serve-bench`` /
  ``gateway-bench`` and ``benchmarks/bench_serving.py``.
"""

from repro.serve.async_gateway import AsyncGateway
from repro.serve.cache import CacheStats, LRUCache
from repro.serve.http import HttpFrontDoor
from repro.serve.gateway import (
    REPLICA_BACKENDS,
    ArchiveMLP,
    ConsistentHashPolicy,
    Gateway,
    GatewayStats,
    LeastLoadedPolicy,
    ModelStats,
    Replica,
    ReplicaStats,
    RoundRobinPolicy,
    ShardPolicy,
    resolve_policy,
)
from repro.serve.runtime import (
    DEFAULT_CACHE_BYTES,
    ModelRuntime,
    RuntimeStats,
    decode_compressed_layer,
)
from repro.serve.server import Server, ServerStats
from repro.serve.shm import (
    SharedModelWeights,
    SharedRuntime,
    SharedWeightStore,
    shared_weight_store,
)
from repro.serve.worker import ProcessServer

__all__ = [
    "AsyncGateway",
    "HttpFrontDoor",
    "CacheStats",
    "LRUCache",
    "DEFAULT_CACHE_BYTES",
    "ModelRuntime",
    "RuntimeStats",
    "decode_compressed_layer",
    "Server",
    "ServerStats",
    "SharedModelWeights",
    "SharedRuntime",
    "SharedWeightStore",
    "shared_weight_store",
    "ProcessServer",
    "REPLICA_BACKENDS",
    "ArchiveMLP",
    "ConsistentHashPolicy",
    "Gateway",
    "GatewayStats",
    "LeastLoadedPolicy",
    "ModelStats",
    "Replica",
    "ReplicaStats",
    "RoundRobinPolicy",
    "ShardPolicy",
    "resolve_policy",
]
