"""On-demand model serving: decoded-layer cache, runtime, and server.

* :mod:`repro.serve.cache` — :class:`LRUCache`, the byte-bounded,
  thread-safe, single-flight LRU for decoded dense layers;
* :mod:`repro.serve.runtime` — :class:`ModelRuntime`, lazy per-layer decode
  over a memory-mapped ``.dsz`` archive with prefetch on the shared task
  pool;
* :mod:`repro.serve.server` — :class:`Server`, the dynamic-batching
  inference front-end with throughput / latency-percentile reporting;
* :mod:`repro.serve.bench` — the cold/warm/concurrency measurement harness
  behind ``python -m repro serve-bench`` and ``benchmarks/bench_serving.py``.
"""

from repro.serve.cache import CacheStats, LRUCache
from repro.serve.runtime import (
    DEFAULT_CACHE_BYTES,
    ModelRuntime,
    RuntimeStats,
    decode_compressed_layer,
)
from repro.serve.server import Server, ServerStats

__all__ = [
    "CacheStats",
    "LRUCache",
    "DEFAULT_CACHE_BYTES",
    "ModelRuntime",
    "RuntimeStats",
    "decode_compressed_layer",
    "Server",
    "ServerStats",
]
