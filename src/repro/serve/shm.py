"""Shared-memory weight cache: decode once per host, serve from every process.

Thread-backed replica pools (PR 5) contend on one interpreter: dispatcher
loops, batching servers, and the Python-level forward passes all serialize
on the GIL, so gateway throughput *falls* as replicas are added.  The fix is
process-backed replicas — but naively, each worker process would mmap the
archive and re-decode every layer, multiplying both startup cost and
resident memory by the pool size.

This module keeps the decode at once per (model, host):

* :class:`SharedWeightStore` — a refcounted, digest-keyed registry.  The
  first ``acquire()`` for an archive decodes every layer (dense matrices, or
  CSC operands in sparse mode) through a throwaway
  :class:`~repro.serve.runtime.ModelRuntime` and packs the arrays into **one
  ``multiprocessing.shared_memory`` segment**, described by a small
  JSON-able *layout manifest* (per-layer dtype/shape/offset).  Subsequent
  acquires for the same bytes bump a refcount and return the same segment.
  ``release()`` unlinks at refcount zero, and an ``atexit`` hook unlinks
  anything still live if the owner exits uncleanly — segments are named
  ``repro_<digest>_<pid>_<seq>`` so a leak scan of ``/dev/shm`` can find
  them.
* :class:`SharedModelWeights` — the handle: segment + manifest + byte
  accounting.  Only the *creating* process ever unlinks; workers attach.
* :class:`SharedRuntime` — the worker-side counterpart.  Reconstructs
  **zero-copy read-only numpy views** over the segment from the manifest
  (dense: one ``ndarray`` per layer; sparse: a
  :class:`~repro.nn.sparse.SparseWeight` wrapping ``data``/``indices``/
  ``indptr`` views via :meth:`SparseWeight.from_csc_arrays`).  No archive
  read, no codec pass, no per-worker copy: attaching is an ``shm_open`` +
  pointer math.  It exposes the same serving surface a replica network
  needs (``layer`` / ``layer_names`` / ``layer_shape`` / ``load_into``), so
  :class:`~repro.serve.gateway.ArchiveMLP` runs over it unchanged.

Worker processes share the creator's resource-tracker process (spawn and
fork both forward the tracker fd), so attachments re-register the same
name idempotently and the creator's registration survives worker churn —
even a SIGKILLed owner leaves cleanup to the stdlib tracker rather than
leaking the segment (see :func:`attach_segment`).
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import threading
import time
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.lint.lockcheck import make_lock
from repro.nn.sparse import SparseWeight
from repro.obs.log import get_logger
from repro.utils.errors import ValidationError

__all__ = [
    "SharedModelWeights",
    "SharedRuntime",
    "SharedWeightStore",
    "shared_weight_store",
]

_log = get_logger("serve.shm")

#: Segment offsets are aligned so every view starts on a cache line.
_ALIGN = 64

_SEGMENT_PREFIX = "repro_"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment (worker-side open).

    Python < 3.13 registers *attachments* with the resource tracker exactly
    like created segments.  That is benign — and load-bearing — here:
    worker processes share the gateway's tracker process (both spawn and
    fork forward the tracker fd), whose registry is a *set* of names, so a
    worker's attach re-adds the same name the creator registered
    (idempotent) and nothing must be unregistered on the worker side.
    Explicitly unregistering — the widely-cited leak-warning workaround —
    would be wrong with a shared tracker: it strips the creator's
    registration too, killing the SIGKILL safety net and making the
    creator's eventual ``unlink()`` trip a tracker KeyError.
    """
    return shared_memory.SharedMemory(name=name)


# ---------------------------------------------------------------------------
# layout manifest <-> numpy views
# ---------------------------------------------------------------------------


def _array_spec(array: np.ndarray, offset: int) -> dict:
    return {
        "dtype": str(array.dtype),
        "shape": [int(d) for d in array.shape],
        "offset": int(offset),
        "nbytes": int(array.nbytes),
    }


def _view(segment: shared_memory.SharedMemory, spec: dict) -> np.ndarray:
    array = np.ndarray(
        tuple(spec["shape"]),
        dtype=np.dtype(spec["dtype"]),
        buffer=segment.buf,
        offset=int(spec["offset"]),
    )
    array.flags.writeable = False
    return array


class SharedModelWeights:
    """One model's decoded weights in a shared-memory segment.

    Owned by the :class:`SharedWeightStore` that built it; everyone else
    (workers, stats readers) treats it as an immutable descriptor.  The
    ``manifest`` is a plain JSON-able dict — it is what crosses the process
    boundary, not this object.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        manifest: dict,
        *,
        key: tuple,
        decodes: int,
        decode_seconds: float,
    ) -> None:
        self._segment = segment
        self.manifest = manifest
        self.key = key
        self.decodes = decodes
        self.decode_seconds = decode_seconds
        self.refcount = 0  # guarded by the owning store's lock

    @property
    def segment_name(self) -> str:
        return self._segment.name

    @property
    def total_bytes(self) -> int:
        return int(self.manifest["total_bytes"])

    @property
    def sparse(self) -> bool:
        return bool(self.manifest["sparse"])

    @property
    def layer_names(self) -> List[str]:
        return list(self.manifest["order"])

    def unlink(self) -> None:
        """Close and unlink the segment (idempotent; creator only)."""
        try:
            self._segment.close()
        except BufferError:
            # A live view pins the mapping; unlink proceeds anyway and the
            # mapping dies with the process.  Logged because a *persistent*
            # pin here means some reader outlived its replica.
            _log.debug("segment %s close blocked by a live view", self._segment.name)
        try:
            self._segment.unlink()
        except FileNotFoundError:
            _log.debug("segment %s already unlinked", self._segment.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SharedModelWeights {self.segment_name} "
            f"{len(self.layer_names)} layers {self.total_bytes}B "
            f"refs={self.refcount}>"
        )


class SharedWeightStore:
    """Refcounted per-host registry of shared-memory weight segments.

    ``acquire(source, sparse=...)`` decodes the archive **once** per
    distinct ``(content digest, sparse)`` key and returns the shared
    segment; further acquires are refcount bumps.  ``release()`` unlinks at
    zero.  A process-wide singleton (:func:`shared_weight_store`) makes
    "once per host" hold across every gateway in the serving process, and
    an ``atexit`` hook unlinks whatever is still registered when the
    process exits.
    """

    def __init__(self) -> None:
        self._lock = make_lock("serve.shm.store")
        self._entries: Dict[tuple, SharedModelWeights] = {}
        # Per-key single-flight markers: the thread that installs the Event
        # builds (decode + segment create) *outside* the lock; racers wait
        # on the Event instead of on the store lock, so an unrelated model's
        # acquire never queues behind a multi-second decode.
        self._building: Dict[tuple, threading.Event] = {}
        self._seq = itertools.count(1)
        atexit.register(self.shutdown)

    # -- lifecycle ---------------------------------------------------------
    def acquire(
        self,
        source: Union[bytes, bytearray, memoryview, str, Path],
        *,
        sparse: bool = False,
    ) -> SharedModelWeights:
        """The shared segment for ``source`` (decoded now if first touch)."""
        if isinstance(source, (str, Path)):
            source = Path(source).read_bytes()
        blob = bytes(source)
        key = (hashlib.sha256(blob).hexdigest(), bool(sparse))
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    entry.refcount += 1
                    return entry
                pending = self._building.get(key)
                if pending is None:
                    self._building[key] = threading.Event()
                    break
            # Another thread is decoding this exact model: wait on its
            # single-flight event (not the store lock) and re-check.
            pending.wait()
        try:
            entry = self._build(blob, key)
        except BaseException:
            with self._lock:
                event = self._building.pop(key)
            event.set()  # wake racers; the next one retries the build
            raise
        with self._lock:
            self._entries[key] = entry
            entry.refcount += 1
            event = self._building.pop(key)
        event.set()
        return entry

    def release(self, weights: SharedModelWeights) -> None:
        """Drop one reference; unlink the segment when nobody holds it."""
        with self._lock:
            entry = self._entries.get(weights.key)
            if entry is not weights:  # already unlinked (or foreign handle)
                return
            entry.refcount -= 1
            if entry.refcount > 0:
                return
            del self._entries[weights.key]
        weights.unlink()

    def shutdown(self) -> None:
        """Unlink every live segment (crash-exit safety net)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        if entries:
            # Reaching exit with live segments means some gateway skipped
            # its release() — worth a warning, not silence.
            _log.warning(
                "unlinking %d shared weight segment(s) still live at shutdown: %s",
                len(entries),
                [entry.segment_name for entry in entries],
            )
        for entry in entries:
            entry.unlink()

    def active_segments(self) -> List[str]:
        """Names of currently live segments (tests and leak scans)."""
        with self._lock:
            return [entry.segment_name for entry in self._entries.values()]

    # -- building ----------------------------------------------------------
    def _build(self, blob: bytes, key: tuple) -> SharedModelWeights:
        from repro.serve.runtime import ModelRuntime

        digest, sparse = key
        start = time.perf_counter()
        with ModelRuntime(blob, cache_bytes=2**62, verify=True, sparse=sparse) as runtime:
            order = runtime.layer_names
            decoded = {name: runtime.layer(name) for name in order}
            network = runtime.network
            shapes = {name: runtime.layer_shape(name) for name in order}
            decodes = runtime.stats().decodes

            layers: Dict[str, dict] = {}
            offset = 0
            for name in order:
                value = decoded[name]
                if sparse:
                    arrays = {}
                    for part in ("data", "indices", "indptr"):
                        array = getattr(value.matrix, part)
                        offset = _aligned(offset)
                        arrays[part] = _array_spec(array, offset)
                        offset += array.nbytes
                    layers[name] = {
                        "kind": "csc",
                        "shape": [int(d) for d in shapes[name]],
                        "arrays": arrays,
                    }
                else:
                    offset = _aligned(offset)
                    layers[name] = {"kind": "dense", **_array_spec(value, offset)}
                    offset += value.nbytes

            segment = self._create_segment(digest, max(offset, 1))
            try:
                for name in order:
                    value = decoded[name]
                    spec = layers[name]
                    if sparse:
                        for part, array_spec in spec["arrays"].items():
                            target = np.ndarray(
                                tuple(array_spec["shape"]),
                                dtype=np.dtype(array_spec["dtype"]),
                                buffer=segment.buf,
                                offset=array_spec["offset"],
                            )
                            np.copyto(target, getattr(value.matrix, part))
                    else:
                        target = np.ndarray(
                            tuple(spec["shape"]),
                            dtype=np.dtype(spec["dtype"]),
                            buffer=segment.buf,
                            offset=spec["offset"],
                        )
                        np.copyto(target, value)
            except BaseException:
                segment.close()
                segment.unlink()
                raise

        manifest = {
            "segment": segment.name,
            "digest": digest,
            "network": network,
            "sparse": bool(sparse),
            "total_bytes": int(offset),
            "order": list(order),
            "layers": layers,
        }
        return SharedModelWeights(
            segment,
            manifest,
            key=key,
            decodes=decodes,
            decode_seconds=time.perf_counter() - start,
        )

    def _create_segment(self, digest: str, size: int) -> shared_memory.SharedMemory:
        # Explicit repro_* names (instead of the stdlib's psm_*) so leak
        # scans of /dev/shm can attribute segments; pid + sequence keeps
        # them unique, and a stale same-named leftover is retried past.
        # itertools.count is atomic under the GIL, so concurrent builders of
        # *different* models (builds run outside the store lock) never share
        # a sequence number.
        while True:
            name = f"{_SEGMENT_PREFIX}{digest[:8]}_{os.getpid()}_{next(self._seq)}"
            try:
                return shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:  # pragma: no cover - stale leftover
                continue


_STORE_LOCK = make_lock("serve.shm.singleton")
_STORE: Optional[SharedWeightStore] = None


def shared_weight_store() -> SharedWeightStore:
    """The process-wide store — "once per host" across every gateway."""
    global _STORE
    with _STORE_LOCK:
        if _STORE is None:
            _STORE = SharedWeightStore()
        return _STORE


# ---------------------------------------------------------------------------
# worker-side reconstruction
# ---------------------------------------------------------------------------


class SharedRuntime:
    """Zero-copy serving views over a shared-memory weight segment.

    Built from a layout manifest (a small dict — the only thing shipped to
    a worker process), it attaches the segment and materialises one
    read-only view per layer: a dense ndarray, or a
    :class:`~repro.nn.sparse.SparseWeight` whose CSC arrays alias the
    segment.  It deliberately mirrors the slice of the
    :class:`~repro.serve.runtime.ModelRuntime` surface the serving
    networks consume — :meth:`layer`, :attr:`layer_names`,
    :meth:`layer_shape`, :meth:`load_into` — so
    :class:`~repro.serve.gateway.ArchiveMLP` and ``network_factory``
    installs work identically in a worker.  ``resident_bytes`` is 0: the
    bytes belong to the host-wide segment, counted once by the gateway.
    """

    def __init__(self, manifest: dict) -> None:
        self.manifest = manifest
        self._segment = attach_segment(manifest["segment"])
        self._sparse = bool(manifest["sparse"])
        self._order: List[str] = list(manifest["order"])
        self._layers: Dict[str, "np.ndarray | SparseWeight"] = {}
        for name in self._order:
            spec = manifest["layers"][name]
            if spec["kind"] == "csc":
                self._layers[name] = SparseWeight.from_csc_arrays(
                    _view(self._segment, spec["arrays"]["data"]),
                    _view(self._segment, spec["arrays"]["indices"]),
                    _view(self._segment, spec["arrays"]["indptr"]),
                    shape=tuple(spec["shape"]),
                )
            else:
                self._layers[name] = _view(self._segment, spec)

    # -- runtime surface ---------------------------------------------------
    @property
    def network(self) -> str:
        return str(self.manifest.get("network", "?"))

    @property
    def sparse(self) -> bool:
        return self._sparse

    @property
    def layer_names(self) -> List[str]:
        return list(self._order)

    def layer_shape(self, name: str) -> tuple[int, int]:
        spec = self.manifest["layers"].get(name)
        if spec is None:
            raise ValidationError(
                f"segment has no layer {name!r}; available: {self._order}"
            )
        return (int(spec["shape"][0]), int(spec["shape"][1]))

    def layer(self, name: str) -> "np.ndarray | SparseWeight":
        try:
            return self._layers[name]
        except KeyError:
            raise ValidationError(
                f"segment has no layer {name!r}; available: {self._order}"
            ) from None

    @property
    def resident_bytes(self) -> int:
        """0 — the views alias the host-wide segment; nothing is private."""
        return 0

    @property
    def shared_bytes(self) -> int:
        return int(self.manifest["total_bytes"])

    def load_into(self, network) -> None:
        """Install the shared views into a ``network_factory`` network.

        Sparse layers share the CSC arrays outright; dense installs follow
        ``Network.set_weights`` semantics (the layer copies, because a
        trainable layer must own writable weights).
        """
        for name in self._order:
            if self._sparse:
                network.set_sparse_weights(name, self.layer(name))
            else:
                network.set_weights(name, self.layer(name))

    def close(self) -> None:
        """Detach from the segment (never unlinks — the owner does that)."""
        self._layers.clear()
        try:
            self._segment.close()
        except BufferError:
            # A caller still holds a weight view; the mapping is released at
            # process exit instead.  Visible under REPRO_LOG for leak hunts.
            _log.debug(
                "shared runtime detach from %s blocked by a live view",
                self.manifest["segment"],
            )

    def __enter__(self) -> "SharedRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SharedRuntime segment={self.manifest['segment']!r} "
            f"layers={len(self._order)} {'sparse' if self._sparse else 'dense'}>"
        )
