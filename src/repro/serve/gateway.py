"""Multi-model, multi-replica serving gateway with admission control.

The :class:`~repro.serve.server.Server` answers requests for *one* model on
*one* runtime.  A production node hosts a fleet: many named models, each
backed by a pool of replicas, behind one front door that decides which
replica takes a request and — just as important — which requests never get
in.  :class:`Gateway` is that front door:

* **models** are added by name, resolved either from a raw archive source
  (path / bytes / :class:`~repro.store.ModelArchive`) or from a
  :class:`~repro.store.ModelStore` by content digest (prefixes accepted via
  :meth:`ModelStore.resolve`), each with its own replica count, shard
  policy, and admission limits;
* **replicas** are full serving stacks behind one of two backends.  The
  default ``thread`` backend keeps everything in-process: an independent
  :class:`~repro.serve.runtime.ModelRuntime` (own mmap + decoded-layer
  cache, dense or compressed-domain sparse) plus a dynamic-batching
  :class:`Server`.  The ``process`` backend breaks the GIL: each replica
  is a worker **process** (:class:`~repro.serve.worker.ProcessServer`)
  whose forward passes run on their own interpreter, reconstructing the
  model's weights zero-copy from a host-wide shared-memory segment the
  gateway decodes **once** per model
  (:mod:`repro.serve.shm`).  A model without a ``network_factory`` serves
  through :class:`ArchiveMLP`, a feed-forward stack straight over the
  archive's fc layers — what the synthetic benchmarks use;
* **sharding** is pluggable via :class:`ShardPolicy`: ``round-robin``
  (fair, stateful), ``least-loaded`` (reads each replica's in-flight
  gauge), and ``consistent-hash`` (stable key → replica mapping that
  keeps a client's requests on one replica's warm cache);
* **admission control** keeps overload predictable: each model has a
  bounded gateway queue (``max_queue_depth``) with *fast-fail* rejection —
  a full queue raises :class:`~repro.utils.errors.GatewayOverloaded`
  (429-style) instead of stretching everyone's latency — and a
  ``max_concurrency`` cap on requests in service across the model's
  replicas, enforced by the per-model dispatcher;
* **stats** aggregate the whole fleet: per-model throughput and latency
  percentiles (measured submit→resolve, queue wait included), rejection
  rates and live queue depth, per-replica dispatch counts, in-flight
  gauges, decode counts and resident cache bytes.

Lifecycle mirrors :class:`Server`: ``start()`` spins up every replica
server and one dispatcher thread per model, ``stop()`` closes admission,
drains every queued and in-flight request (every accepted future resolves),
and freezes the stats clock; a stopped gateway restarts cleanly with fresh
queues and counters.  ``close()`` additionally releases the replica
runtimes (after which the gateway cannot be restarted).
"""

from __future__ import annotations

import abc
import hashlib
import queue
import threading
import time
from bisect import bisect_right
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.encoder import CompressedModel
from repro.lint.lockcheck import make_lock
from repro.nn.sparse import SparseWeight
from repro.obs import metrics as obs_metrics
from repro.obs import profile
from repro.obs.metrics import Histogram, MetricSample, MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.serve.runtime import DEFAULT_CACHE_BYTES, ModelRuntime
from repro.serve.server import Server, ServerStats
from repro.serve.shm import shared_weight_store
from repro.serve.worker import ProcessServer
from repro.store.archive import archive_bytes
from repro.utils.errors import GatewayOverloaded, ValidationError

__all__ = [
    "REPLICA_BACKENDS",
    "ShardPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "ConsistentHashPolicy",
    "resolve_policy",
    "ArchiveMLP",
    "Replica",
    "ReplicaStats",
    "ModelStats",
    "GatewayStats",
    "Gateway",
]

#: Replica execution backends a gateway model can run on.
REPLICA_BACKENDS = ("thread", "process")


def _hash64(text: str) -> int:
    """Stable 64-bit point on the hash ring (first 8 bytes of SHA-256)."""
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


def _resolve_backend(backend: Optional[str], default: str) -> str:
    resolved = default if backend is None else str(backend)
    if resolved not in REPLICA_BACKENDS:
        raise ValidationError(
            f"unknown replica backend {resolved!r}; "
            f"available: {list(REPLICA_BACKENDS)}"
        )
    return resolved


# ---------------------------------------------------------------------------
# shard policies
# ---------------------------------------------------------------------------


class ShardPolicy(abc.ABC):
    """Chooses which replica of a model takes the next request.

    One policy instance belongs to one model (policies may hold state);
    :meth:`bind` is called once with the model's replica ids — in index
    order — before any :meth:`choose`.  ``choose`` runs on the model's
    single dispatcher thread, so implementations only need locks if they
    are also queried from outside (``Gateway.stats`` never calls them).
    """

    name: str = "?"

    def bind(self, replica_ids: Sequence[str]) -> None:  # noqa: B027 - optional hook
        """Learn the replica topology (default: nothing to precompute)."""

    @abc.abstractmethod
    def choose(self, replicas: Sequence["Replica"], key: Optional[str] = None) -> int:
        """Index of the replica that takes the request."""


class RoundRobinPolicy(ShardPolicy):
    """Cycle through replicas in index order — fair and cheap."""

    name = "round-robin"

    def __init__(self) -> None:
        self._lock = make_lock("serve.gateway.policy")
        self._next = 0

    def choose(self, replicas: Sequence["Replica"], key: Optional[str] = None) -> int:
        with self._lock:
            index = self._next % len(replicas)
            self._next += 1
        return index


class LeastLoadedPolicy(ShardPolicy):
    """Send the request to the replica with the fewest in-flight requests.

    Reads each replica server's ``inflight`` gauge (queued + batching, not
    yet resolved) — a plain counter on a thread-backed
    :class:`~repro.serve.server.Server`, a cross-process shared
    ``multiprocessing.Value`` on a
    :class:`~repro.serve.worker.ProcessServer`, so the signal stays correct
    when replicas run in worker processes.  Ties break to the lowest index
    so the choice is deterministic under equal load.
    """

    name = "least-loaded"

    def choose(self, replicas: Sequence["Replica"], key: Optional[str] = None) -> int:
        return min(range(len(replicas)), key=lambda i: (replicas[i].inflight, i))


class ConsistentHashPolicy(ShardPolicy):
    """Stable key → replica mapping over a virtual-node hash ring.

    Each replica id is hashed onto ``vnodes`` ring positions; a keyed
    request lands on the first position at or after its own hash.  The
    mapping depends only on the replica ids (``"<model>/<index>"``) and the
    key, so it is reproducible across gateway instances and restarts, and
    adding a replica remaps only ~``1/n`` of the key space.  Keyless
    requests fall back to round-robin.
    """

    name = "consistent-hash"

    def __init__(self, vnodes: int = 64) -> None:
        if int(vnodes) < 1:
            raise ValidationError("vnodes must be >= 1")
        self._vnodes = int(vnodes)
        self._ring: List[tuple[int, int]] = []
        self._points: List[int] = []
        self._fallback = RoundRobinPolicy()

    def bind(self, replica_ids: Sequence[str]) -> None:
        ring = [
            (_hash64(f"{replica_id}#{v}"), index)
            for index, replica_id in enumerate(replica_ids)
            for v in range(self._vnodes)
        ]
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]

    def replica_for(self, key: str) -> int:
        """The replica index a key maps to (pure function of bind() + key)."""
        if not self._ring:
            raise ValidationError("policy is not bound to a replica set yet")
        slot = bisect_right(self._points, _hash64(key)) % len(self._ring)
        return self._ring[slot][1]

    def choose(self, replicas: Sequence["Replica"], key: Optional[str] = None) -> int:
        if key is None:
            return self._fallback.choose(replicas)
        return self.replica_for(key)


_POLICIES: Dict[str, Callable[[], ShardPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    ConsistentHashPolicy.name: ConsistentHashPolicy,
}


def resolve_policy(policy: Union[str, ShardPolicy]) -> ShardPolicy:
    """A fresh policy instance from a name, or the caller's own instance."""
    if isinstance(policy, ShardPolicy):
        return policy
    try:
        return _POLICIES[str(policy)]()
    except KeyError:
        raise ValidationError(
            f"unknown shard policy {policy!r}; available: {sorted(_POLICIES)}"
        ) from None


# ---------------------------------------------------------------------------
# default replica network
# ---------------------------------------------------------------------------


class ArchiveMLP:
    """Feed-forward stack straight over a runtime's archived fc layers.

    The default replica network when a gateway model ships without a
    ``network_factory`` — synthetic archives have weights but no trained
    zoo network.  Layers apply in manifest order as ``h @ W.T`` (each
    stored matrix is ``(out_features, in_features)``) with ReLU between
    layers and a linear head; sparse-mode runtimes serve
    :class:`~repro.nn.sparse.SparseWeight` operands and the stack runs the
    compressed-domain CSC matmul instead.  Weights are pulled through the
    runtime's decoded-layer cache on every forward pass, so the gateway's
    cache-byte stats reflect real serving traffic.

    The runtime only needs the serving slice of the
    :class:`ModelRuntime` surface (``layer`` / ``layer_names`` /
    ``layer_shape``), so the same class runs over a
    :class:`~repro.serve.shm.SharedRuntime` inside a process-backed
    replica's worker.
    """

    def __init__(self, runtime) -> None:
        self._runtime = runtime
        self._names = list(runtime.layer_names)
        if not self._names:
            raise ValidationError("archive has no layers to serve")
        shapes = [runtime.layer_shape(n) for n in self._names]
        for i in range(1, len(shapes)):
            if shapes[i][1] != shapes[i - 1][0]:
                raise ValidationError(
                    f"archive layers do not chain into an MLP: "
                    f"{self._names[i - 1]!r} is {shapes[i - 1][0]}x{shapes[i - 1][1]} "
                    f"but {self._names[i]!r} expects {shapes[i][1]} inputs "
                    f"({shapes[i][0]}x{shapes[i][1]})"
                )
        self._input_dim = int(shapes[0][1])
        self._output_dim = int(shapes[-1][0])

    @property
    def input_dim(self) -> int:
        return self._input_dim

    @property
    def output_dim(self) -> int:
        return self._output_dim

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        h = np.asarray(x, dtype=np.float32)
        if h.ndim == 1:
            h = h[None, :]
        last = len(self._names) - 1
        fetch_log = profile.active_fetch_log()
        for i, name in enumerate(self._names):
            if fetch_log is not None:
                # A traced/profiled batch: time each weight fetch (a cache
                # hit, a decode-on-demand, or a shared-segment view lookup).
                fetch_start = time.time()
                weight = self._runtime.layer(name)
                profile.record_fetch(name, fetch_start, time.time())
            else:
                weight = self._runtime.layer(name)
            if isinstance(weight, SparseWeight):
                h = weight.matmul(h)
            else:
                h = h @ weight.T
            if i != last:
                np.maximum(h, 0.0, out=h)
        return h


# ---------------------------------------------------------------------------
# replicas and per-model state
# ---------------------------------------------------------------------------


class Replica:
    """One serving copy of a model behind either backend.

    A thread replica owns an independent :class:`ModelRuntime` (its own
    archive handle and decoded-layer cache, so replicas never contend on a
    shared cache lock) plus a :class:`Server` whose batching loop is the
    replica's execution thread.  A process replica owns no runtime at all —
    its server is a :class:`~repro.serve.worker.ProcessServer` handle and
    the weights live in the model's host-wide shared segment; the stats
    properties below make both shapes answer the same questions.
    """

    def __init__(
        self,
        model_name: str,
        index: int,
        server,
        *,
        runtime: Optional[ModelRuntime] = None,
        network=None,
    ) -> None:
        self.id = f"{model_name}/{index}"
        self.index = index
        self.runtime = runtime
        self.network = network
        self.server = server
        self.dispatched = 0  # guarded by the owning model's lock

    @property
    def inflight(self) -> int:
        return self.server.inflight

    @property
    def cache_bytes(self) -> int:
        """Private decoded bytes this replica holds (0 for process replicas:
        their weights alias the shared segment, counted once per model)."""
        return int(self.runtime.resident_bytes) if self.runtime is not None else 0

    @property
    def decodes(self) -> int:
        """Weight decodes this replica performed itself.  Process replicas
        report the worker's counter — 0 by construction, which is the
        once-per-host decode property made observable."""
        if self.runtime is not None:
            return int(self.runtime.stats().decodes)
        return int(self.server.worker_decodes)

    def close_runtime(self) -> None:
        if self.runtime is not None:
            self.runtime.close()


@dataclass
class _GatewayRequest:
    x: np.ndarray
    key: Optional[str]
    future: Future
    enqueued: float
    span: Optional[Span] = None
    wall_enqueued: float = 0.0  # time.time() twin of enqueued, traced only


class _Model:
    """Per-model gateway state: replicas, policy, admission, dispatcher."""

    def __init__(
        self,
        name: str,
        replicas: List[Replica],
        policy: ShardPolicy,
        *,
        max_queue_depth: int,
        max_concurrency: int,
        backend: str = "thread",
        source_bytes: Optional[bytes] = None,
        sparse: bool = False,
        input_dim: Optional[int] = None,
    ) -> None:
        self.name = name
        self.replicas = replicas
        self.policy = policy
        self.max_queue_depth = max_queue_depth
        self.max_concurrency = max_concurrency
        self.backend = backend
        # Expected request width, when the serving network declares one —
        # what admission-time shape validation checks against (None skips
        # the width check but still requires a 1-D float32-castable sample).
        self.input_dim = input_dim
        # Process backend: the archive bytes the shared segment is decoded
        # from at every start() (released/unlinked at stop()), plus the
        # live handle and the last-known segment size for post-stop stats.
        self.source_bytes = source_bytes
        self.sparse = sparse
        self.shared = None
        self.shared_bytes = 0
        self.lock = make_lock("serve.gateway.model")
        self.accepting = False
        self.queue: "queue.SimpleQueue[Optional[_GatewayRequest]]" = queue.SimpleQueue()
        self.semaphore = threading.BoundedSemaphore(max_concurrency)
        self.dispatcher: Optional[threading.Thread] = None
        self.queued = 0  # admitted, not yet handed to a replica server
        self.submitted = 0
        self.completed = 0
        self.failures = 0
        self.rejected = 0
        self.deadline_exceeded = 0  # async front door: expired deadlines
        self.cancelled = 0  # async front door: caller cancellations
        # Bounded replacement for the old unbounded per-request latency
        # list: log-scale buckets for percentile exposition plus a fixed
        # reservoir that keeps small-run percentiles exact.
        self.latency_hist = Histogram()

    def reset_for_run(self) -> None:
        """Fresh queue/semaphore/counters for a new gateway run (stats are
        per run, exactly like :class:`Server`'s)."""
        self.queue = queue.SimpleQueue()
        self.semaphore = threading.BoundedSemaphore(self.max_concurrency)
        self.queued = 0
        self.submitted = 0
        self.completed = 0
        self.failures = 0
        self.rejected = 0
        self.deadline_exceeded = 0
        self.cancelled = 0
        self.latency_hist = Histogram()
        for replica in self.replicas:
            replica.dispatched = 0
        self.accepting = True


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------


@dataclass
class ReplicaStats:
    """One replica's share of a model's traffic plus its serving internals."""

    id: str
    dispatched: int
    inflight: int
    cache_bytes: int
    decodes: int
    server: ServerStats

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["server"] = self.server.as_dict()
        return out


@dataclass
class ModelStats:
    """One hosted model's admission, latency, and replica breakdown."""

    name: str
    policy: str
    backend: str = "thread"
    shared_bytes: int = 0
    submitted: int = 0
    completed: int = 0
    failures: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    cancelled: int = 0
    queue_depth: int = 0
    max_queue_depth: int = 0
    max_concurrency: int = 0
    elapsed_seconds: float = 0.0
    latencies_ms: Dict[str, float] = field(default_factory=dict)
    replicas: List[ReplicaStats] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def rejection_rate(self) -> float:
        offered = self.submitted + self.rejected
        return self.rejected / offered if offered else 0.0

    @property
    def cache_bytes(self) -> int:
        return int(sum(r.cache_bytes for r in self.replicas))

    def as_dict(self) -> dict:
        out = {k: v for k, v in self.__dict__.items() if k != "replicas"}
        out["replicas"] = [r.as_dict() for r in self.replicas]
        out["throughput_rps"] = self.throughput_rps
        out["rejection_rate"] = self.rejection_rate
        out["cache_bytes"] = self.cache_bytes
        return out


@dataclass
class GatewayStats:
    """Fleet-wide aggregates plus the per-model breakdown."""

    elapsed_seconds: float = 0.0
    submitted: int = 0
    completed: int = 0
    failures: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    cancelled: int = 0
    cache_bytes: int = 0
    shared_bytes: int = 0
    latencies_ms: Dict[str, float] = field(default_factory=dict)
    models: Dict[str, ModelStats] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def rejection_rate(self) -> float:
        offered = self.submitted + self.rejected
        return self.rejected / offered if offered else 0.0

    def as_dict(self) -> dict:
        out = {k: v for k, v in self.__dict__.items() if k != "models"}
        out["models"] = {name: m.as_dict() for name, m in self.models.items()}
        out["throughput_rps"] = self.throughput_rps
        out["rejection_rate"] = self.rejection_rate
        return out


# ---------------------------------------------------------------------------
# the gateway
# ---------------------------------------------------------------------------


class Gateway:
    """Multi-model serving front door with sharding and admission control.

    Parameters
    ----------
    store:
        Optional default :class:`~repro.store.ModelStore` that
        ``add_model(digest=...)`` resolves content digests against.
    replica_backend:
        Default execution backend for hosted models: ``"thread"`` (replicas
        share the gateway's interpreter — the PR-5 behaviour and still the
        default) or ``"process"`` (each replica is a worker process serving
        zero-copy from a shared-memory weight segment decoded once per
        model; scales past the GIL).  Per-model override via
        ``add_model(replica_backend=...)``.

    Usage::

        gateway = Gateway(store=store)
        gateway.add_model("ranker", digest="ab12cd34", replicas=4,
                          policy="least-loaded", max_queue_depth=128)
        gateway.add_model("embedder", source="embedder.dsz", sparse=True,
                          policy="consistent-hash")
        with gateway:
            future = gateway.submit("ranker", x, key=user_id)
            probs = future.result()
    """

    def __init__(
        self,
        *,
        store=None,
        replica_backend: str = "thread",
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._store = store
        self._default_backend = _resolve_backend(replica_backend, "thread")
        self._models: Dict[str, _Model] = {}
        self._gate_lock = make_lock("serve.gateway.gate")
        # Names reserved by in-flight add_model() calls: source resolution
        # and replica construction run outside the gate lock, so the name
        # is claimed first and installed (or abandoned) afterwards.
        self._pending_models: set = set()
        self._running = False
        self._starting = False
        self._closed = False
        self._started_at = 0.0
        self._stopped_at: Optional[float] = None
        # Tracing: no exporter → Tracer.sample() short-circuits to False and
        # the request path never builds a span.  Metrics: the gateway is a
        # *collector* on the registry (registered per run), so serving hot
        # paths write only their existing counters; metric samples are built
        # at scrape time from the same state stats() reads.
        self._tracer = tracer if tracer is not None else Tracer()
        self._registry = metrics if metrics is not None else obs_metrics.registry()

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this gateway's collector publishes into."""
        return self._registry

    # -- model management --------------------------------------------------
    def add_model(
        self,
        name: str,
        source: Union[str, bytes, object, None] = None,
        *,
        digest: Optional[str] = None,
        store=None,
        replicas: int = 1,
        sparse: bool = False,
        network_factory: Optional[Callable[[], object]] = None,
        policy: Union[str, ShardPolicy] = "round-robin",
        max_queue_depth: int = 64,
        max_concurrency: Optional[int] = None,
        batch_size: int = 32,
        max_batch_delay: float = 0.002,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        verify: bool = True,
        replica_backend: Optional[str] = None,
    ) -> None:
        """Host a model behind the gateway under ``name``.

        Exactly one of ``source`` (archive path / bytes / open archive /
        :class:`CompressedModel`) or ``digest`` (resolved against a
        :class:`ModelStore` — full digest or unique prefix, ``sha256:``
        scheme accepted) must be given.  ``network_factory`` builds one
        fresh network per replica (the replica's server installs the
        decoded archive weights into it at start); without it the replica
        serves an :class:`ArchiveMLP` directly over the archive.
        ``max_concurrency`` defaults to two requests in service per
        replica.  Models can only be added while the gateway is stopped.

        ``replica_backend`` overrides the gateway default (``None`` keeps
        it).  Process-backed models need a re-shareable source — path,
        bytes, ``CompressedModel``, or ``digest`` (an already-open
        :class:`ModelArchive` cannot cross process boundaries) — and a
        *picklable* ``network_factory`` (a module-level function, not a
        closure) since the factory runs inside each worker; ``cache_bytes``
        is ignored there because workers serve zero-copy from the shared
        segment instead of a private decoded-layer cache.
        """
        if int(replicas) < 1:
            raise ValidationError("replicas must be >= 1")
        if int(max_queue_depth) < 1:
            raise ValidationError("max_queue_depth must be >= 1")
        if max_concurrency is None:
            max_concurrency = 2 * int(replicas)
        if int(max_concurrency) < 1:
            raise ValidationError("max_concurrency must be >= 1")
        if (source is None) == (digest is None):
            raise ValidationError("pass exactly one of source= or digest=")
        backend = _resolve_backend(replica_backend, self._default_backend)
        # Reserve the name under the gate lock, then do all the slow work —
        # store reads, file reads, archive probes, runtime construction —
        # outside it, and install (re-checking lifecycle state) at the end.
        # Two gateways' or two threads' add_model calls must not serialise
        # each other's multi-second decodes on this lock.
        with self._gate_lock:
            self._check_can_add(name)
            self._pending_models.add(name)
        try:
            if digest is not None:
                resolved_store = store if store is not None else self._store
                if resolved_store is None:
                    raise ValidationError(
                        "digest= needs a store (Gateway(store=...) or add_model(store=...))"
                    )
                source = resolved_store.get_bytes(resolved_store.resolve(digest))
            if isinstance(source, CompressedModel):
                # Encode the container once, not once per replica.
                source = archive_bytes(source)

            source_bytes: Optional[bytes] = None
            input_dim: Optional[int] = None
            pool: List[Replica] = []
            try:
                if backend == "process":
                    if isinstance(source, (str, Path)):
                        source_bytes = Path(source).read_bytes()
                    elif isinstance(source, (bytes, bytearray, memoryview)):
                        source_bytes = bytes(source)
                    else:
                        raise ValidationError(
                            "process-backed models need a re-shareable source "
                            "(path, bytes, CompressedModel, or digest=); an "
                            f"open {type(source).__name__} cannot cross "
                            "process boundaries"
                        )
                    # Validate the archive (and, for the default network,
                    # the MLP chain) now — add_model is where a bad source
                    # should fail, not inside a worker at start().
                    with ModelRuntime(
                        source_bytes, cache_bytes=1, verify=False, sparse=sparse
                    ) as probe:
                        if network_factory is None:
                            input_dim = ArchiveMLP(probe).input_dim
                    for index in range(int(replicas)):
                        server = ProcessServer(
                            f"{name}/{index}",
                            batch_size=batch_size,
                            max_batch_delay=max_batch_delay,
                            network_factory=network_factory,
                        )
                        pool.append(Replica(name, index, server))
                else:
                    for index in range(int(replicas)):
                        runtime = ModelRuntime(
                            source, cache_bytes=cache_bytes, verify=verify,
                            sparse=sparse,
                        )
                        network = (
                            network_factory() if network_factory is not None
                            else ArchiveMLP(runtime)
                        )
                        # ArchiveMLP pulls weights through the runtime cache
                        # per forward; factory networks get the decoded
                        # weights installed at start().
                        server = Server(
                            network,
                            runtime if network_factory is not None else None,
                            batch_size=batch_size,
                            max_batch_delay=max_batch_delay,
                        )
                        pool.append(
                            Replica(name, index, server, runtime=runtime,
                                    network=network)
                        )
                    # Factory networks that declare an input width get the
                    # same admission-time shape check as ArchiveMLP stacks.
                    width = getattr(pool[0].network, "input_dim", None)
                    input_dim = int(width) if width is not None else None
            except BaseException:
                for replica in pool:
                    replica.close_runtime()
                raise

            shard_policy = resolve_policy(policy)
            shard_policy.bind([replica.id for replica in pool])
            model = _Model(
                name,
                pool,
                shard_policy,
                max_queue_depth=int(max_queue_depth),
                max_concurrency=int(max_concurrency),
                backend=backend,
                source_bytes=source_bytes,
                sparse=bool(sparse),
                input_dim=input_dim,
            )
            with self._gate_lock:
                installable = not (self._closed or self._running or self._starting)
                if installable:
                    self._models[name] = model
            if not installable:
                # The gateway changed state while we built replicas (e.g. a
                # concurrent start()); leave no half-registered model behind.
                for replica in pool:
                    replica.close_runtime()
                raise ValidationError(
                    "cannot add models while the gateway is running (stop() first)"
                )
        finally:
            with self._gate_lock:
                self._pending_models.discard(name)

    def _check_can_add(self, name: str) -> None:
        """Gate-lock-held validation that ``name`` can be registered."""
        if self._closed:
            raise ValidationError("gateway is closed")
        if self._running or self._starting:
            raise ValidationError(
                "cannot add models while the gateway is running (stop() first)"
            )
        if name in self._models or name in self._pending_models:
            raise ValidationError(f"gateway already hosts a model named {name!r}")

    def models(self) -> List[str]:
        with self._gate_lock:
            return list(self._models)

    def _model(self, name: str) -> _Model:
        try:
            return self._models[name]
        except KeyError:
            raise ValidationError(
                f"gateway hosts no model named {name!r}; "
                f"available: {sorted(self._models)}"
            ) from None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Gateway":
        """Start every replica server and one dispatcher thread per model.

        The slow half — shared-segment acquisition (a full decode on first
        touch) and worker process spawns — runs *outside* the gate lock,
        guarded by a ``_starting`` flag, so a gateway warming up never
        blocks another thread's ``submit``/``stats`` on a multi-second
        decode.
        """
        entries = self._begin_start()
        if not entries:
            return self  # already running
        self._start_replica_servers(entries)
        with self._gate_lock:
            for entry in entries:
                entry.reset_for_run()
                entry.dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    args=(entry,),
                    name=f"repro-gateway-{entry.name}",
                    daemon=True,
                )
                entry.dispatcher.start()
            self._mark_running()
        return self

    def _begin_start(self) -> List[_Model]:
        """Lifecycle checks + the ``_starting`` flag; the model list to
        start, or ``[]`` when the gateway is already running."""
        with self._gate_lock:
            if self._closed:
                raise ValidationError("gateway is closed")
            if self._running:
                return []
            if self._starting:
                raise ValidationError("gateway start already in progress")
            if not self._models:
                raise ValidationError("gateway hosts no models (call add_model())")
            self._starting = True
            return list(self._models.values())

    def _start_replica_servers(self, entries: List[_Model]) -> None:
        """The slow half of start(), run outside the gate lock.

        Acquires shared weight segments and boots every replica server.  A
        failed weight install / worker spawn leaves the gateway cleanly
        stopped (everything already started is stopped, segments released,
        the ``_starting`` flag cleared) so start() can be retried.
        """
        started: List = []
        acquired: List[_Model] = []
        try:
            for entry in entries:
                if entry.backend == "process":
                    # Decode once per (model, host): first acquire for
                    # these bytes builds the segment, replicas share it.
                    entry.shared = shared_weight_store().acquire(
                        entry.source_bytes, sparse=entry.sparse
                    )
                    entry.shared_bytes = entry.shared.total_bytes
                    acquired.append(entry)
                    for replica in entry.replicas:
                        replica.server.set_shared(entry.shared)
                for replica in entry.replicas:
                    replica.server.start()
                    started.append(replica.server)
        except BaseException:
            for server in started:
                server.stop()
            for entry in acquired:
                shared_weight_store().release(entry.shared)
                entry.shared = None
            with self._gate_lock:
                self._starting = False
            raise

    def _mark_running(self) -> None:
        """Gate-lock-held tail of start(): flip flags, start the stats clock."""
        self._running = True
        self._starting = False
        self._started_at = time.perf_counter()
        self._stopped_at = None
        self._registry.register_collector(self._collect)

    def _shutdown_replica_servers(self, entries: List[_Model]) -> None:
        """Tail of stop(): stop every replica server, release the segments."""
        for entry in entries:
            for replica in entry.replicas:
                replica.server.stop()
            if entry.shared is not None:
                # Workers are gone; dropping the gateway's reference unlinks
                # the segment once no other model/gateway shares it.  A
                # restart re-acquires (and, if needed, re-decodes) cleanly.
                shared_weight_store().release(entry.shared)
                entry.shared = None
        self._registry.unregister_collector(self._collect)
        self._stopped_at = time.perf_counter()

    def stop(self) -> None:
        """Close admission, drain every accepted request, stop the fleet.

        The shutdown sentinel enters each model's queue under the same lock
        ``submit`` enqueues under, so every accepted request sits ahead of
        it; dispatchers hand their backlog to the replica servers before
        exiting, and ``Server.stop`` drains those — every future returned
        by ``submit`` resolves.
        """
        with self._gate_lock:
            if not self._running:
                return
            self._running = False
            entries = list(self._models.values())
        for entry in entries:
            with entry.lock:
                entry.accepting = False
                entry.queue.put(None)
        for entry in entries:
            if entry.dispatcher is not None:
                entry.dispatcher.join()
                entry.dispatcher = None
        self._shutdown_replica_servers(entries)

    def close(self) -> None:
        """Stop (if running) and release every replica runtime."""
        self.stop()
        with self._gate_lock:
            if self._closed:
                return
            self._closed = True
            for entry in self._models.values():
                for replica in entry.replicas:
                    replica.close_runtime()

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request path ------------------------------------------------------
    def _validate_sample(self, entry: _Model, x: np.ndarray) -> np.ndarray:
        """Admission-time shape/dtype validation; the float32 sample.

        A replica server stacks co-batched samples and runs one forward
        pass over the lot, so a single wrong-shaped or non-castable sample
        would fail every neighbour in its batch.  Rejecting it here keeps
        bad inputs a caller-local :class:`ValidationError` instead of a
        batch-wide failure.
        """
        try:
            sample = np.asarray(x, dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"sample for model {entry.name!r} is not castable to "
                f"float32: {exc}"
            ) from None
        if sample.ndim != 1:
            raise ValidationError(
                f"sample for model {entry.name!r} must be a 1-D feature "
                f"vector, got shape {sample.shape}"
            )
        if entry.input_dim is not None and sample.shape[0] != entry.input_dim:
            raise ValidationError(
                f"sample for model {entry.name!r} has {sample.shape[0]} "
                f"features but the model expects {entry.input_dim}"
            )
        return sample

    def submit(self, model: str, x: np.ndarray, *, key: Optional[str] = None) -> Future:
        """Enqueue one sample for ``model``; the future resolves to its
        output row.

        ``key`` is the shard key (consistent-hash policies route by it;
        others ignore it).  Raises :class:`GatewayOverloaded` immediately —
        never blocks — when the model's bounded queue is full, and
        :class:`ValidationError` for a bad sample (wrong shape/width or not
        float32-castable — checked at admission so one bad input can never
        fail a co-batched group) or when the gateway is not running.
        """
        entry = self._model(model)
        # Validate before the span exists: a rejected sample must not leak
        # an unfinished gateway.request span.
        sample = self._validate_sample(entry, x)
        span: Optional[Span] = None
        if self._tracer.sample():
            span = self._tracer.start_span("gateway.request", attrs={"model": model})
            if key is not None:
                span.set(key=key)
        request = _GatewayRequest(
            x=sample,
            key=key,
            future=Future(),
            enqueued=time.perf_counter(),
            span=span,
            wall_enqueued=time.time() if span is not None else 0.0,
        )
        try:
            with entry.lock:
                if not entry.accepting:
                    raise ValidationError("gateway is not running (call start())")
                if entry.queued >= entry.max_queue_depth:
                    entry.rejected += 1
                    raise GatewayOverloaded(
                        f"model {model!r} is saturated: gateway queue is at its "
                        f"depth limit of {entry.max_queue_depth}; retry with "
                        "backoff or shed load"
                    )
                entry.queued += 1
                entry.submitted += 1
                # Enqueue under the admission lock so no request can land
                # behind stop()'s shutdown sentinel.
                entry.queue.put(request)
        except BaseException as exc:
            if span is not None:
                outcome = "rejected" if isinstance(exc, GatewayOverloaded) else "error"
                span.set(status=outcome, outcome=outcome)
                span.finish()
            raise
        return request.future

    def submit_many(
        self,
        model: str,
        xs: Sequence[np.ndarray],
        *,
        keys: Optional[Sequence[Optional[str]]] = None,
    ) -> List[Future]:
        """Enqueue a sequence of samples (``keys`` parallels ``xs``).

        Admission is per sample, so a mid-sequence rejection (a full queue
        raising :class:`GatewayOverloaded`, or a bad sample raising
        :class:`ValidationError`) can leave earlier samples already
        admitted and in flight.  Those handles ride on the exception as
        ``exc.admitted`` (a tuple of futures) so callers can drain or await
        the partial batch instead of leaking it.
        """
        if keys is not None and len(keys) != len(xs):
            raise ValidationError("keys must parallel xs")
        futures: List[Future] = []
        try:
            for i, x in enumerate(xs):
                futures.append(
                    self.submit(model, x, key=keys[i] if keys is not None else None)
                )
        except BaseException as exc:
            try:
                exc.admitted = tuple(futures)
            except AttributeError:  # exotic exception with __slots__
                pass
            raise
        return futures

    def infer(
        self, model: str, x: np.ndarray, *, key: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Synchronous single-sample inference through the gateway."""
        return self.submit(model, x, key=key).result(timeout=timeout)

    def queue_depth(self, model: str) -> int:
        """Requests admitted for ``model`` but not yet handed to a replica."""
        entry = self._model(model)
        with entry.lock:
            return entry.queued

    # -- dispatch ----------------------------------------------------------
    def _dispatch_loop(self, entry: _Model) -> None:
        # One dispatcher per model: pops admitted requests, waits for a
        # concurrency slot, routes by the shard policy, and hands off to
        # the replica's batching server.  Exits only via the sentinel, so
        # everything admitted before stop() is dispatched before it dies.
        while True:
            request = entry.queue.get()
            if request is None:
                return
            entry.semaphore.acquire()
            span = request.span
            if span is not None:
                # Admission wait: submit-time enqueue → concurrency slot.
                span.child("gateway.admission", start_s=request.wall_enqueued).finish()
            dequeued = False
            try:
                shard_start = time.time() if span is not None else 0.0
                index = int(entry.policy.choose(entry.replicas, request.key))
                replica = entry.replicas[index]
                if span is not None:
                    span.child(
                        "gateway.shard",
                        start_s=shard_start,
                        attrs={"policy": entry.policy.name, "replica": replica.id},
                    ).finish()
                with entry.lock:
                    entry.queued -= 1
                    replica.dispatched += 1
                dequeued = True
                inner = replica.server.submit(request.x, span)
            except BaseException as exc:
                # A failing shard policy (or replica submit) must not leak
                # the admission counter, or the model saturates forever.
                with entry.lock:
                    entry.failures += 1
                    if not dequeued:
                        entry.queued -= 1
                entry.semaphore.release()
                if span is not None:
                    span.set(status="error", outcome="error")
                    span.finish()
                request.future.set_exception(exc)
                continue
            inner.add_done_callback(
                lambda f, req=request, e=entry: self._complete(e, req, f)
            )

    def _complete(self, entry: _Model, request: _GatewayRequest, inner: Future) -> None:
        done = time.perf_counter()
        exc = inner.exception()
        with entry.lock:
            entry.latency_hist.observe(done - request.enqueued)
            if exc is None:
                entry.completed += 1
            else:
                entry.failures += 1
        # Free the concurrency slot before waking the caller so a resolved
        # future's owner can immediately submit into the freed capacity.
        entry.semaphore.release()
        if request.span is not None:
            if exc is not None:
                request.span.set(status="error", outcome="failed")
            else:
                request.span.set(outcome="completed")
            request.span.finish()
        if exc is None:
            request.future.set_result(inner.result())
        else:
            request.future.set_exception(exc)

    # -- statistics --------------------------------------------------------
    def stats(self) -> GatewayStats:
        end = self._stopped_at if self._stopped_at is not None else time.perf_counter()
        elapsed = max(end - self._started_at, 0.0) if self._started_at else 0.0
        total = GatewayStats(elapsed_seconds=elapsed)
        fleet_hist = Histogram()
        with self._gate_lock:
            entries = list(self._models.values())
        for entry in entries:
            with entry.lock:
                hist = entry.latency_hist.copy()
                model = ModelStats(
                    name=entry.name,
                    policy=entry.policy.name,
                    backend=entry.backend,
                    shared_bytes=entry.shared_bytes,
                    submitted=entry.submitted,
                    completed=entry.completed,
                    failures=entry.failures,
                    rejected=entry.rejected,
                    deadline_exceeded=entry.deadline_exceeded,
                    cancelled=entry.cancelled,
                    queue_depth=entry.queued,
                    max_queue_depth=entry.max_queue_depth,
                    max_concurrency=entry.max_concurrency,
                    elapsed_seconds=elapsed,
                )
                dispatched = [replica.dispatched for replica in entry.replicas]
            model.latencies_ms = hist.percentiles(scale=1e3)
            model.replicas = [
                ReplicaStats(
                    id=replica.id,
                    dispatched=count,
                    inflight=replica.inflight,
                    cache_bytes=replica.cache_bytes,
                    decodes=replica.decodes,
                    server=replica.server.stats(),
                )
                for replica, count in zip(entry.replicas, dispatched)
            ]
            fleet_hist.merge(hist)
            total.models[entry.name] = model
            total.submitted += model.submitted
            total.completed += model.completed
            total.failures += model.failures
            total.rejected += model.rejected
            total.deadline_exceeded += model.deadline_exceeded
            total.cancelled += model.cancelled
            total.cache_bytes += model.cache_bytes
            total.shared_bytes += model.shared_bytes
        total.latencies_ms = fleet_hist.percentiles(scale=1e3)
        return total

    def _collect(self) -> List[MetricSample]:
        """Registry collector: the serving fleet as metric samples.

        Runs at scrape time only, reading the same per-model state
        :meth:`stats` reads — the request hot path never touches the
        registry.  Registered at :meth:`start`, unregistered at
        :meth:`stop`.
        """
        samples: List[MetricSample] = []
        with self._gate_lock:
            entries = list(self._models.values())
        for entry in entries:
            with entry.lock:
                outcomes = {
                    "submitted": entry.submitted,
                    "completed": entry.completed,
                    "failed": entry.failures,
                    "rejected": entry.rejected,
                    "deadline_exceeded": entry.deadline_exceeded,
                    "cancelled": entry.cancelled,
                }
                deadline_exceeded = entry.deadline_exceeded
                queued = entry.queued
                hist = entry.latency_hist.copy()
            for outcome, value in sorted(outcomes.items()):
                samples.append(
                    MetricSample(
                        name="repro_gateway_requests_total",
                        kind="counter",
                        help="Gateway requests by model and outcome.",
                        labels={"model": entry.name, "outcome": outcome},
                        value=float(value),
                    )
                )
            samples.append(
                # The dedicated family (naming.GATEWAY_DEADLINE_EXCEEDED_TOTAL)
                # alongside the outcome label: deadline misses are the SLO
                # signal dashboards alert on, so they get a first-class name.
                MetricSample(
                    name="repro_gateway_deadline_exceeded_total",
                    kind="counter",
                    help="Requests whose deadline expired before a result.",
                    labels={"model": entry.name},
                    value=float(deadline_exceeded),
                )
            )
            samples.append(
                MetricSample(
                    name="repro_gateway_queue_depth",
                    kind="gauge",
                    help="Requests admitted but not yet dispatched to a replica.",
                    labels={"model": entry.name},
                    value=float(queued),
                )
            )
            samples.append(
                MetricSample(
                    name="repro_gateway_latency_seconds",
                    kind="histogram",
                    help="Submit-to-resolve request latency by model.",
                    labels={"model": entry.name},
                    histogram=hist.to_dict(),
                )
            )
            cache_totals = {
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "coalesced": 0,
            }
            cache_resident = 0
            for replica in entry.replicas:
                labels = {"model": entry.name, "replica": replica.id}
                samples.append(
                    MetricSample(
                        name="repro_replica_inflight",
                        kind="gauge",
                        help="Requests in service on a replica (queued + batching).",
                        labels=labels,
                        value=float(replica.inflight),
                    )
                )
                samples.append(
                    MetricSample(
                        name="repro_replica_dispatched_total",
                        kind="counter",
                        help="Requests the shard policy routed to a replica.",
                        labels=labels,
                        value=float(replica.dispatched),
                    )
                )
                if replica.runtime is not None:
                    cache = replica.runtime.stats().cache
                    cache_totals["hits"] += cache.hits
                    cache_totals["misses"] += cache.misses
                    cache_totals["evictions"] += cache.evictions
                    cache_totals["coalesced"] += cache.coalesced
                    cache_resident += cache.current_bytes
                if isinstance(replica.server, ProcessServer):
                    counters = replica.server.worker_counters()
                    for stage, ns_slot, count_slot in (
                        ("forward", "forward_ns", "forward_count"),
                        ("fetch", "fetch_ns", "fetch_count"),
                    ):
                        samples.append(
                            MetricSample(
                                name="repro_worker_stage_seconds_total",
                                kind="counter",
                                help=(
                                    "Worker-process time by serving stage "
                                    "(forward pass, per-layer weight fetch)."
                                ),
                                labels={**labels, "stage": stage},
                                value=counters[ns_slot] / 1e9,
                            )
                        )
                        samples.append(
                            MetricSample(
                                name="repro_worker_stage_total",
                                kind="counter",
                                help="Worker-process stage executions.",
                                labels={**labels, "stage": stage},
                                value=float(counters[count_slot]),
                            )
                        )
            for event, value in sorted(cache_totals.items()):
                samples.append(
                    MetricSample(
                        name="repro_cache_events_total",
                        kind="counter",
                        help="Decoded-layer cache events across a model's replicas.",
                        labels={"model": entry.name, "event": event},
                        value=float(value),
                    )
                )
            samples.append(
                MetricSample(
                    name="repro_cache_resident_bytes",
                    kind="gauge",
                    help="Decoded bytes resident across a model's replica caches.",
                    labels={"model": entry.name},
                    value=float(cache_resident),
                )
            )
        return samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(
            f"{name}x{len(entry.replicas)}" for name, entry in self._models.items()
        )
        state = "running" if self._running else ("closed" if self._closed else "stopped")
        return f"<Gateway {state} [{names}]>"
