"""Process-backed replica: a worker process plus its parent-side handle.

A thread replica keeps everything in the gateway process — which is exactly
why thread pools stop scaling: every forward pass serializes on the one
interpreter's GIL.  A *process* replica moves the hot loop out:

* :func:`_worker_main` is the child entry point.  It reconstructs the
  model's weights **zero-copy** from the host's shared-memory segment
  (:class:`~repro.serve.shm.SharedRuntime` — no archive read, no codec
  pass, no private weight copy), builds the serving network (the default
  :class:`~repro.serve.gateway.ArchiveMLP`, or a picklable
  ``network_factory``), and runs a dynamic-batching loop over the request
  pipe: a batch closes when it is full or when the oldest request has
  waited ``max_batch_delay`` — the same policy as the in-process
  :class:`~repro.serve.server.Server` — then one forward pass answers the
  whole batch with a single response message.
* :class:`ProcessServer` is the parent-side handle with the same surface a
  :class:`~repro.serve.gateway.Replica` expects from a ``Server``
  (``start/stop/submit/infer/inflight/stats``), so the gateway's dispatch,
  draining, and stats code is backend-agnostic.  Requests travel as
  ``(id, sample, trace_ctx)`` tuples over a one-way pipe; responses come
  back batched.  The in-flight gauge is a shared ``multiprocessing.Value``
  — readable from any process, which keeps :class:`LeastLoadedPolicy`
  correct no matter where it runs.

**Observability.**  Batch and stage counters live in a per-run
:class:`~repro.obs.metrics.MetricsBlock` (a shared-memory slot array the
worker single-writes and the parent reads live), created at :meth:`start`
and unlinked at :meth:`stop` — same per-run lifecycle as the weight
segment.  Per-request latency lands in a bounded
:class:`~repro.obs.metrics.Histogram`.  A request submitted with a live
trace span ships its span *context* to the worker, which builds
queue/batch/forward/decode span dicts with wall-clock timestamps and
returns them piggybacked on the response batch; the parent exports them
through the span's tracer, stitching worker-process spans under the
gateway-side root (see :mod:`repro.obs.trace`).

**Crash containment.**  If the worker dies (OOM-kill, segfault, ``kill
-9``), the parent's receiver thread sees the pipe break, fails exactly the
requests that were pending on that replica with
:class:`~repro.utils.errors.ReplicaCrashed` (a retryable 503), respawns
the worker against the still-live shared segment, and keeps serving.
After ``max_respawns`` consecutive crashes the replica stays down and
rejects submissions instead of crash-looping.  Workers never own the
shared segment, so no crash can leak ``/dev/shm``.

**Start method.**  Workers default to ``spawn``: ``fork`` from a gateway
that already runs receiver/dispatcher threads inherits locks in unknown
states (the same reason the codec registry documents spawn semantics), and
spawn behaves identically across platforms.  The decoded weights cross via
shared memory, so spawn's re-import is the only startup cost;
``REPRO_WORKER_START_METHOD=fork`` opts into faster starts where safe.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.lint.lockcheck import make_lock
from repro.obs import metrics as obs_metrics
from repro.obs import profile
from repro.obs.log import get_logger
from repro.obs.metrics import Histogram, MetricsBlock
from repro.obs.trace import Span, span_dict
from repro.serve.server import ServerStats
from repro.utils.errors import ReplicaCrashed, ValidationError

__all__ = [
    "ProcessServer",
    "REQUEST_FIELDS",
    "RESPONSE_KINDS",
    "WorkerSpec",
    "resolve_start_method",
]

_log = get_logger("serve.worker")

_READY_TIMEOUT_S = 120.0  # spawn imports numpy/scipy; slow CI boxes need slack

#: The pipe protocol schema — the single source of truth the PIPE-PROTOCOL
#: lint rule checks every sender and receiver against.  A request crosses
#: the request pipe as a tuple with exactly these fields, in this order
#: (``None`` is the stop sentinel):
REQUEST_FIELDS = ("req_id", "sample", "ctx")
#: Response messages are ``(kind, *payload)`` tuples; this maps each kind
#: to its total tuple arity (kind tag included).
RESPONSE_KINDS = {"ready": 2, "failed": 2, "ok": 4, "err": 4, "bye": 1}

#: MetricsBlock slot layout shared between parent and worker.  ``fetch`` is
#: per-layer weight-view lookup time inside the forward pass, ``forward``
#: the whole batched network pass; both in integer nanoseconds so the slots
#: stay plain int64 adds.
_WORKER_SLOTS = (
    "batches",
    "batch_items",
    "forward_ns",
    "forward_count",
    "fetch_ns",
    "fetch_count",
)


def resolve_start_method(override: Optional[str] = None) -> str:
    """``spawn`` unless overridden (argument > REPRO_WORKER_START_METHOD)."""
    method = override or os.environ.get("REPRO_WORKER_START_METHOD") or "spawn"
    if method not in multiprocessing.get_all_start_methods():
        raise ValidationError(
            f"start method {method!r} not available here; "
            f"choose from {multiprocessing.get_all_start_methods()}"
        )
    return method


@dataclass
class WorkerSpec:
    """Everything a worker needs, small enough to pickle through spawn.

    The weights themselves never cross: ``manifest`` is the shared-memory
    layout manifest (segment name + per-layer dtype/shape/offsets), a few
    hundred bytes regardless of model size.
    """

    replica_id: str
    manifest: dict
    batch_size: int
    max_batch_delay: float
    network_factory: Optional[Callable[[], object]] = None
    metrics: Optional[dict] = None  # MetricsBlock manifest, when one is live


# ---------------------------------------------------------------------------
# child process
# ---------------------------------------------------------------------------


def _send_safely(conn, message) -> None:
    try:
        conn.send(message)
    except Exception:  # parent gone; nothing left to tell
        _log.debug("response pipe send failed (parent gone?)", exc_info=True)


def _batch_spans(batch, assembled_s, fwd_start_s, fwd_end_s, fetches) -> List[dict]:
    """Span dicts for every traced request in one worker batch.

    Each traced request gets the same sub-tree under its gateway-side root:
    ``replica.queue`` (pipe recv → batch assembled) and ``replica.batch``
    (assembled → forward done) as siblings, ``replica.forward`` under the
    batch span, and one ``replica.decode`` per weight fetch under the
    forward span.  Batch-level work is shared, so its spans are duplicated
    per traced request — each trace tree stays self-contained.
    """
    spans: List[dict] = []
    size = len(batch)
    for _req_id, _x, ctx, recv_s in batch:
        if ctx is None:
            continue
        trace_id, root_id = ctx["trace_id"], ctx["span_id"]
        spans.append(
            span_dict(
                "replica.queue",
                trace_id=trace_id,
                parent_id=root_id,
                start_s=recv_s,
                end_s=assembled_s,
            )
        )
        batch_span = span_dict(
            "replica.batch",
            trace_id=trace_id,
            parent_id=root_id,
            start_s=assembled_s,
            end_s=fwd_end_s,
            attrs={"batch_size": size},
        )
        spans.append(batch_span)
        forward = span_dict(
            "replica.forward",
            trace_id=trace_id,
            parent_id=batch_span["span_id"],
            start_s=fwd_start_s,
            end_s=fwd_end_s,
        )
        spans.append(forward)
        for layer, fetch_start, fetch_end in fetches or ():
            spans.append(
                span_dict(
                    "replica.decode",
                    trace_id=trace_id,
                    parent_id=forward["span_id"],
                    start_s=fetch_start,
                    end_s=fetch_end,
                    attrs={"layer": layer},
                )
            )
    return spans


def _worker_main(spec: WorkerSpec, request_conn, response_conn) -> None:
    """Child entry: attach shared weights, answer batched requests."""
    # Imported lazily: the parent-side module must stay importable without
    # pulling the gateway (gateway imports this module for ProcessServer).
    from repro.serve.gateway import ArchiveMLP
    from repro.serve.shm import SharedRuntime

    runtime = None
    block = None
    try:
        runtime = SharedRuntime(spec.manifest)
        if spec.network_factory is not None:
            network = spec.network_factory()
            runtime.load_into(network)
        else:
            network = ArchiveMLP(runtime)
        if spec.metrics is not None:
            block = MetricsBlock.attach(spec.metrics)
    except BaseException as exc:
        _send_safely(response_conn, ("failed", f"{type(exc).__name__}: {exc}"))
        if runtime is not None:
            runtime.close()
        return
    _send_safely(response_conn, ("ready", runtime.shared_bytes))

    try:
        stopping = False
        while not stopping:
            message = request_conn.recv()
            if message is None:
                break
            batch = [(message[0], message[1], message[2], time.time())]
            deadline = time.perf_counter() + spec.max_batch_delay
            while len(batch) < spec.batch_size:
                remaining = deadline - time.perf_counter()
                # Past the deadline, still drain what is already in the
                # pipe (backlog from the previous forward pass); only
                # *waiting* for more requests is bounded by the delay.
                if not request_conn.poll(max(0.0, remaining)):
                    break
                message = request_conn.recv()
                if message is None:
                    stopping = True
                    break
                batch.append((message[0], message[1], message[2], time.time()))
            ids = [req_id for req_id, _, _, _ in batch]
            traced = any(ctx is not None for _, _, ctx, _ in batch)
            profiled = block is not None and obs_metrics.is_enabled()
            fetches: Optional[List[profile.FetchRecord]] = None
            try:
                inputs = np.stack([x for _, x, _, _ in batch])
                if traced or profiled:
                    assembled_s = time.time()
                    fwd_tick = time.perf_counter()
                    with profile.collect_fetches() as fetches:
                        outputs = np.asarray(network.forward(inputs, training=False))
                    forward_ns = int((time.perf_counter() - fwd_tick) * 1e9)
                    fwd_end_s = time.time()
                else:
                    outputs = np.asarray(network.forward(inputs, training=False))
            except BaseException as exc:
                try:
                    response_conn.send(("err", ids, exc, []))
                except Exception:
                    # The exception object itself would not pickle; say so
                    # (otherwise a custom exception type degrades to a bare
                    # string parent-side with no hint why) and fall back to
                    # the stringified form.
                    _log.debug(
                        "worker %s: error response for %r did not pickle; "
                        "sending stringified form",
                        spec.replica_id,
                        type(exc).__name__,
                        exc_info=True,
                    )
                    _send_safely(
                        response_conn,
                        ("err", ids, f"{type(exc).__name__}: {exc}", []),
                    )
                continue
            finally:
                if block is not None:
                    block.add("batches", 1)
                    block.add("batch_items", len(ids))
            spans: List[dict] = []
            if traced or profiled:
                if block is not None:
                    block.add("forward_ns", forward_ns)
                    block.add("forward_count", 1)
                    if fetches:
                        fetch_ns = sum(end - start for _, start, end in fetches)
                        block.add("fetch_ns", int(fetch_ns * 1e9))
                        block.add("fetch_count", len(fetches))
                if traced:
                    # Forward wall start ≈ assembly end; one clock for spans.
                    spans = _batch_spans(
                        batch, assembled_s, assembled_s, fwd_end_s, fetches
                    )
            _send_safely(response_conn, ("ok", ids, outputs, spans))
        _send_safely(response_conn, ("bye",))
    except (EOFError, OSError):  # parent died; exit quietly
        pass
    finally:
        if block is not None:
            block.close()
        runtime.close()


# ---------------------------------------------------------------------------
# parent-side handle
# ---------------------------------------------------------------------------


@dataclass
class _Pending:
    future: Future
    enqueued: float
    span: Optional[Span] = None


@dataclass
class _Link:
    """One spawned worker: process + pipes (replaced on respawn).

    ``send_lock`` serialises writes to the request pipe *only* — requests
    and the stop sentinel — so a pipe send never runs under the server's
    state lock.  ``closed`` flips (under ``send_lock``) before the sentinel
    goes out, which is what keeps a racing ``submit`` from landing a
    request behind the sentinel the worker drains up to.
    """

    process: multiprocessing.process.BaseProcess
    request_conn: object
    response_conn: object
    shared_bytes: int = 0
    generation: int = 0
    pending: Dict[int, _Pending] = field(default_factory=dict)
    send_lock: object = field(default_factory=lambda: make_lock("serve.worker.send"))
    closed: bool = False


class ProcessServer:
    """Parent-side handle of a replica worker process.

    Server-compatible surface (``start/stop/submit/infer/inflight/stats``)
    over a request pipe + response pipe + shared gauge counters.  Call
    :meth:`set_shared` with the model's
    :class:`~repro.serve.shm.SharedModelWeights` before each
    :meth:`start` — the gateway acquires the segment per run and releases
    (unlinks) it on stop, so a restarted gateway re-shares cleanly.
    """

    def __init__(
        self,
        replica_id: str,
        *,
        batch_size: int = 32,
        max_batch_delay: float = 0.002,
        network_factory: Optional[Callable[[], object]] = None,
        start_method: Optional[str] = None,
        max_respawns: int = 3,
    ) -> None:
        if int(batch_size) < 1:
            raise ValidationError("batch_size must be >= 1")
        if float(max_batch_delay) < 0:
            raise ValidationError("max_batch_delay must be >= 0")
        if int(max_respawns) < 0:
            raise ValidationError("max_respawns must be >= 0")
        self._replica_id = replica_id
        self._batch_size = int(batch_size)
        self._max_batch_delay = float(max_batch_delay)
        self._network_factory = network_factory
        self._ctx = multiprocessing.get_context(resolve_start_method(start_method))
        self._max_respawns = int(max_respawns)
        self._shared = None
        self._lock = make_lock("serve.worker.state")
        # Guards the start/respawn windows: spawning a worker (process
        # start + ready handshake) and creating its MetricsBlock run
        # *outside* the state lock, flagged here so concurrent
        # start()/stop() calls wait on the condition instead of racing.
        self._cond = threading.Condition(self._lock)
        self._starting = False
        self._respawning = False
        self._running = False
        self._dead = False
        self._link: Optional[_Link] = None
        self._receiver: Optional[threading.Thread] = None
        # External-receiver (watcher) mode: instead of a receiver thread,
        # an event loop watches the response pipe and calls
        # process_responses() when it turns readable.  _watched_link is the
        # link whose pipe the external reader currently owns.
        self._watcher: Optional[Callable[["ProcessServer", object], None]] = None
        self._watched_link: Optional[_Link] = None
        self._next_id = 0
        self._crashes = 0
        self._latency_hist = Histogram()
        self._failures = 0
        self._started_at = 0.0
        self._stopped_at: Optional[float] = None
        # Shared in-flight gauge: readable from any process (the
        # cross-process signal least-loaded sharding reads).  Created once;
        # reset per run.
        self._inflight = self._ctx.Value("q", 0)
        # Batch/stage counters live in a per-run MetricsBlock (created at
        # start(), snapshotted into _metrics_final and unlinked at stop())
        # so /dev/shm stays clean between runs, same as the weight segment.
        self._metrics: Optional[MetricsBlock] = None
        self._metrics_final: Dict[str, int] = dict.fromkeys(_WORKER_SLOTS, 0)

    # -- wiring ------------------------------------------------------------
    def set_shared(self, shared) -> None:
        """Point the next start() at a model's shared weight segment."""
        self._shared = shared

    def set_response_watcher(
        self, watcher: Optional[Callable[["ProcessServer", object], None]]
    ) -> None:
        """Route responses through an external reader instead of a thread.

        ``watcher(server, conn)`` is called — with the server's state lock
        held, so it must not block — whenever ``conn`` becomes the response
        pipe to watch: once at :meth:`start` and again after every crash
        respawn.  The watcher registers the pipe with its event loop and
        calls :meth:`process_responses` when the pipe turns readable.

        ``watcher(server, None)`` is the unwatch call on the stop path; it
        runs *without* the state lock and may block until the external
        reader is provably detached, because :meth:`stop` becomes the sole
        reader of the pipe immediately afterwards.

        Must be configured on a stopped server, before :meth:`start`.
        """
        with self._lock:
            if self._running or self._starting:
                raise ValidationError(
                    "set_response_watcher() requires a stopped server"
                )
            self._watcher = watcher

    @property
    def shared_bytes(self) -> int:
        """Size of the shared segment this replica serves from."""
        link = self._link
        return int(link.shared_bytes) if link is not None else 0

    @property
    def worker_pid(self) -> Optional[int]:
        """PID of the current worker process (changes across respawns)."""
        link = self._link
        return link.process.pid if link is not None else None

    @property
    def worker_decodes(self) -> int:
        """Per-worker weight decodes after warmup — 0 by construction.

        The worker reconstructs views over the pre-decoded shared segment;
        it has no decoder to run.  Kept as an explicit stat so gateway
        stats can *prove* the no-per-worker-decode property.
        """
        return 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ProcessServer":
        with self._lock:
            while self._starting:
                self._cond.wait()
            if self._running:
                return self
            if self._shared is None:
                raise ValidationError(
                    "no shared weights attached (call set_shared() first)"
                )
            self._starting = True
        # The slow half — shared-memory block creation and the worker spawn
        # (process start + ready handshake) — runs outside the state lock so
        # a starting replica never blocks submit/stats on its siblings.
        metrics: Optional[MetricsBlock] = None
        try:
            metrics = MetricsBlock.create(_WORKER_SLOTS)
            link = self._spawn(generation=0, metrics=metrics)
        except BaseException:
            if metrics is not None:
                metrics.close()
            with self._lock:
                self._starting = False
                self._cond.notify_all()
            raise
        with self._lock:
            self._metrics = metrics
            self._link = link
            self._running = True
            self._dead = False
            self._crashes = 0
            self._latency_hist = Histogram()
            self._metrics_final = dict.fromkeys(_WORKER_SLOTS, 0)
            self._failures = 0
            with self._inflight.get_lock():
                self._inflight.value = 0
            self._started_at = time.perf_counter()
            self._stopped_at = None
            if self._watcher is None:
                self._receiver = threading.Thread(
                    target=self._recv_loop,
                    args=(link,),
                    name=f"repro-replica-{self._replica_id}",
                    daemon=True,
                )
                self._receiver.start()
            else:
                # Watcher mode: hand the response pipe to the external
                # reader under the same lock hold that publishes the link,
                # so a racing stop() cannot unwatch before the watch lands.
                self._watched_link = link
                self._watcher(self, link.response_conn)
            self._starting = False
            self._cond.notify_all()
        return self

    def stop(self) -> None:
        """Drain the worker (sentinel behind every accepted request), stop it."""
        with self._lock:
            while self._starting or self._respawning:
                self._cond.wait()
            if not self._running:
                return
            self._running = False
            link = self._link
            receiver, self._receiver = self._receiver, None
        if link is not None:
            # closed flips under the send lock, then the sentinel goes out
            # under the same hold: any submit that already passed its closed
            # check has finished its send, so the sentinel lands behind
            # every accepted request.
            try:
                with link.send_lock:
                    link.closed = True
                    link.request_conn.send(None)
            except Exception:  # worker already dead; receiver winds down
                link.closed = True
                _log.debug(
                    "replica %s: stop sentinel send failed (worker dead?)",
                    self._replica_id,
                    exc_info=True,
                )
        if receiver is not None:
            receiver.join()
        elif link is not None and self._watcher is not None:
            # Watcher mode: reclaim sole ownership of the response pipe —
            # the unwatch call blocks until the event loop has dropped its
            # reader — then drain the worker's remaining responses (it
            # answers everything queued ahead of the sentinel, then says
            # bye) on this thread.
            self._watched_link = None
            self._watcher(self, None)
            self._drain_responses(link)
        if link is not None:
            link.process.join(timeout=30.0)
            if link.process.is_alive():  # pragma: no cover - hung worker
                link.process.terminate()
                link.process.join(timeout=10.0)
            self._fail_pending(link, "replica worker stopped with requests pending")
            self._close_link(link)
        with self._lock:
            block, self._metrics = self._metrics, None
            if block is not None:
                self._metrics_final = block.values()
        if block is not None:
            block.close()  # owner: unlinks the per-run segment
        self._stopped_at = time.perf_counter()

    def close(self) -> None:
        self.stop()

    def __enter__(self) -> "ProcessServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request path ------------------------------------------------------
    def submit(self, x: np.ndarray, span: Optional[Span] = None) -> Future:
        """Enqueue one sample; the future resolves to its output row.

        ``span`` (a sampled request's gateway-side root) ships its context
        to the worker, whose replica spans come back with the response and
        export through this span's tracer.
        """
        sample = np.asarray(x, dtype=np.float32)
        ctx = span.context() if span is not None else None
        future: Future = Future()
        with self._lock:
            if not self._running:
                raise ValidationError("server is not running (call start())")
            if self._dead:
                raise ReplicaCrashed(
                    f"replica {self._replica_id} is down after "
                    f"{self._crashes} crash(es); not respawning"
                )
            link = self._link
            req_id = self._next_id
            self._next_id += 1
            link.pending[req_id] = _Pending(future, time.perf_counter(), span)
        with self._inflight.get_lock():
            self._inflight.value += 1
        # The pipe write happens outside the state lock: it can block on a
        # full pipe buffer (or a wedged worker), and nothing else — not
        # stats, not a sibling submit's bookkeeping — should wait on that.
        delivered = True
        try:
            with link.send_lock:
                if link.closed:
                    delivered = False
                else:
                    link.request_conn.send((req_id, sample, ctx))
        except Exception:
            # Worker just died mid-send; the receiver's crash handling will
            # fail this pending entry.
            _log.debug(
                "replica %s: request send failed (worker dead?)",
                self._replica_id,
                exc_info=True,
            )
        if not delivered:
            # Lost the race with stop(): the sentinel is already queued, so
            # the worker will never see this request.  Withdraw it (unless a
            # crash handler got there first and failed the future for us).
            with self._lock:
                mine = link.pending.pop(req_id, None)
            if mine is not None:
                with self._inflight.get_lock():
                    self._inflight.value -= 1
                raise ValidationError("server is not running (call start())")
        return future

    def infer(self, x: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        return self.submit(x).result(timeout=timeout)

    @property
    def inflight(self) -> int:
        """Accepted requests not yet resolved — a cross-process gauge."""
        return int(self._inflight.value)

    # -- worker management -------------------------------------------------
    def _spawn(
        self, generation: int, metrics: Optional[MetricsBlock]
    ) -> _Link:
        # Runs outside the state lock (start() and _handle_crash() guard
        # their windows with _starting/_respawning): a worker spawn blocks
        # on process start plus the ready handshake.
        request_recv, request_send = self._ctx.Pipe(duplex=False)
        response_recv, response_send = self._ctx.Pipe(duplex=False)
        spec = WorkerSpec(
            replica_id=self._replica_id,
            manifest=self._shared.manifest,
            batch_size=self._batch_size,
            max_batch_delay=self._max_batch_delay,
            network_factory=self._network_factory,
            metrics=metrics.manifest if metrics is not None else None,
        )
        process = self._ctx.Process(
            target=_worker_main,
            args=(spec, request_recv, response_send),
            name=f"repro-worker-{self._replica_id}",
            daemon=True,
        )
        process.start()
        # The child owns its pipe ends now; closing the parent's copies is
        # what makes recv() raise EOFError the moment the worker dies.
        request_recv.close()
        response_send.close()
        link = _Link(
            process=process,
            request_conn=request_send,
            response_conn=response_recv,
            generation=generation,
        )
        deadline = time.monotonic() + _READY_TIMEOUT_S
        try:
            while not link.response_conn.poll(min(1.0, _READY_TIMEOUT_S)):
                if time.monotonic() >= deadline:
                    raise ValidationError(
                        f"replica {self._replica_id} worker did not become "
                        f"ready within {_READY_TIMEOUT_S:.0f}s"
                    )
                if not process.is_alive():
                    raise ValidationError(
                        f"replica {self._replica_id} worker died during startup"
                    )
            try:
                message = link.response_conn.recv()
            except (EOFError, OSError):
                raise ValidationError(
                    f"replica {self._replica_id} worker died during startup "
                    f"(exit code {process.exitcode}); with the spawn start "
                    "method the main module must be import-safe"
                ) from None
        except BaseException:
            self._close_link(link, terminate=True)
            raise
        if message[0] != "ready":
            self._close_link(link, terminate=True)
            raise ValidationError(
                f"replica {self._replica_id} worker failed to start: {message[1]}"
            )
        link.shared_bytes = int(message[1])
        return link

    @staticmethod
    def _close_link(link: _Link, *, terminate: bool = False) -> None:
        if terminate and link.process.is_alive():
            link.process.terminate()
            link.process.join(timeout=10.0)
        for conn in (link.request_conn, link.response_conn):
            try:
                conn.close()
            except Exception:
                _log.debug("worker pipe close failed", exc_info=True)

    def _dispatch(self, link: _Link, message) -> bool:
        """Resolve one response message; False when it was the goodbye."""
        kind = message[0]
        if kind == "ok":
            self._resolve(link, message[1], results=message[2], spans=message[3])
        elif kind == "err":
            self._resolve(link, message[1], error=message[2])
        elif kind == "bye":
            return False
        return True

    def _recv_loop(self, link: _Link) -> None:
        while True:
            try:
                message = link.response_conn.recv()
            except (EOFError, OSError):
                replacement = self._handle_crash(link)
                if replacement is None:
                    return
                link = replacement
                continue
            if not self._dispatch(link, message):
                return

    def process_responses(self) -> bool:
        """Drain buffered responses — the watcher-mode readable callback.

        Called by the external reader (the async gateway's event loop) when
        the watched response pipe turns readable.  Returns ``True`` to keep
        watching the pipe, ``False`` when it is done: either the worker
        said goodbye, or the pipe broke — a crash is then handled on a
        short-lived thread (the respawn blocks on a worker boot, which must
        never stall the event loop) and the watcher is re-notified with the
        replacement pipe when one comes up.
        """
        link = self._watched_link
        if link is None:
            return False
        try:
            while link.response_conn.poll(0):
                message = link.response_conn.recv()
                if not self._dispatch(link, message):
                    self._watched_link = None
                    return False
        except (EOFError, OSError):
            self._watched_link = None
            threading.Thread(
                target=self._crash_and_rewatch,
                args=(link,),
                name=f"repro-respawn-{self._replica_id}",
                daemon=True,
            ).start()
            return False
        return True

    def _crash_and_rewatch(self, link: _Link) -> None:
        """Watcher-mode crash path: respawn, then re-hand the new pipe over.

        The re-watch happens under the state lock and only while the server
        is still running with this replacement current — either it lands
        before a concurrent stop() flips state (stop then unwatches it), or
        stop() wins the lock first and the re-watch is skipped, so the stop
        path's drain is always the pipe's sole reader.
        """
        replacement = self._handle_crash(link)
        if replacement is None:
            return
        with self._lock:
            if not self._running or self._link is not replacement:
                return
            self._watched_link = replacement
            if self._watcher is not None:
                self._watcher(self, replacement.response_conn)

    def _drain_responses(self, link: _Link) -> None:
        """Stop-path drain in watcher mode: this thread reads alone now."""
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                if not link.response_conn.poll(0.1):
                    if not link.process.is_alive():
                        return
                    continue
                message = link.response_conn.recv()
            except (EOFError, OSError):
                return
            if not self._dispatch(link, message):
                return

    def _handle_crash(self, link: _Link) -> Optional[_Link]:
        """Fail this worker's pending requests; respawn unless exhausted.

        Returns the replacement link (receiver keeps reading), or ``None``
        when the server is stopping / the replica is staying down.
        """
        with self._lock:
            if not self._running or self._link is not link:
                return None  # stop() in progress, or an already-replaced link
            self._crashes += 1
            exit_code = link.process.exitcode
            respawn = self._crashes <= self._max_respawns
            _log.warning(
                "replica %s worker died (exit code %s, crash %d/%d); %s",
                self._replica_id,
                exit_code,
                self._crashes,
                self._max_respawns,
                "respawning" if respawn else "staying down",
            )
            metrics = self._metrics
            if respawn:
                self._respawning = True
        replacement: Optional[_Link] = None
        if respawn:
            # Spawn outside the state lock (stop()/submit() must not queue
            # behind a worker boot); _respawning keeps stop() honest.
            try:
                replacement = self._spawn(
                    generation=link.generation + 1, metrics=metrics
                )
            except BaseException:
                _log.warning(
                    "replica %s: respawn after crash failed; staying down",
                    self._replica_id,
                    exc_info=True,
                )
                replacement = None
        stale: Optional[_Link] = None
        with self._lock:
            if respawn:
                self._respawning = False
                self._cond.notify_all()
            if not self._running:
                # stop() flipped state while the spawn ran: the fresh worker
                # must not outlive the server.
                stale, replacement = replacement, None
            elif replacement is None:
                self._dead = True
            else:
                self._link = replacement
        if stale is not None:
            self._close_link(stale, terminate=True)
        self._fail_pending(
            link,
            f"replica {self._replica_id} worker died (exit code {exit_code}) "
            f"with the request in flight",
        )
        self._close_link(link, terminate=True)
        return replacement

    def _fail_pending(self, link: _Link, reason: str) -> None:
        with self._lock:
            pending = list(link.pending.values())
            link.pending.clear()
            done = time.perf_counter()
            for item in pending:
                self._latency_hist.observe(done - item.enqueued)
            self._failures += len(pending)
        if pending:
            with self._inflight.get_lock():
                self._inflight.value -= len(pending)
            error = ReplicaCrashed(reason)
            for item in pending:
                item.future.set_exception(error)

    def _resolve(self, link: _Link, ids, results=None, error=None, spans=None) -> None:
        done = time.perf_counter()
        if error is not None and not isinstance(error, BaseException):
            error = RuntimeError(str(error))
        resolved: List[tuple[_Pending, Optional[np.ndarray]]] = []
        with self._lock:
            for position, req_id in enumerate(ids):
                item = link.pending.pop(req_id, None)
                if item is None:  # already failed by a crash handler
                    continue
                self._latency_hist.observe(done - item.enqueued)
                if error is not None:
                    self._failures += 1
                resolved.append(
                    (item, results[position] if results is not None else None)
                )
        if resolved:
            with self._inflight.get_lock():
                self._inflight.value -= len(resolved)
        if spans:
            # Worker-built replica spans for this batch; export them through
            # the tracer of any traced request the batch resolved (the
            # gateway runs one tracer, so any span's tracer is *the* tracer).
            for item, _row in resolved:
                if item.span is not None:
                    item.span.tracer.export_dicts(spans)
                    break
        for item, row in resolved:
            if error is not None:
                item.future.set_exception(error)
            else:
                item.future.set_result(row)

    # -- statistics --------------------------------------------------------
    def worker_counters(self) -> Dict[str, int]:
        """Live (or, after stop, final) worker MetricsBlock counters."""
        with self._lock:
            block = self._metrics
            if block is not None:
                return block.values()
            return dict(self._metrics_final)

    def latency_histogram(self) -> Histogram:
        """Snapshot of the per-request latency histogram (seconds)."""
        with self._lock:
            return self._latency_hist.copy()

    def stats(self) -> ServerStats:
        with self._lock:
            hist = self._latency_hist.copy()
            failures = self._failures
        counters = self.worker_counters()
        batches = counters["batches"]
        items = counters["batch_items"]
        end = self._stopped_at if self._stopped_at is not None else time.perf_counter()
        elapsed = max(end - self._started_at, 0.0) if self._started_at else 0.0
        return ServerStats(
            requests=hist.count,
            batches=batches,
            failures=failures,
            elapsed_seconds=elapsed,
            latencies_ms=hist.percentiles(scale=1e3),
            mean_batch_size=items / batches if batches else 0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._running else "stopped"
        return f"<ProcessServer {self._replica_id} {state}>"
