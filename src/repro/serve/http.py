"""Minimal stdlib HTTP surface over the asyncio gateway.

One ``asyncio.start_server`` acceptor on the same event loop the
:class:`~repro.serve.async_gateway.AsyncGateway` runs on — no thread pool,
no web framework (the container ships no aiohttp; plain HTTP/1.1 over
asyncio streams is all three endpoints need):

* ``POST /v1/infer/<model>`` — body ``{"x": [...], "key": ..., "deadline": ...}``,
  response ``{"y": [...]}``.  Gateway errors map onto their HTTP-style
  status codes: :class:`~repro.utils.errors.ValidationError` → 400 (an
  unknown model → 404), :class:`~repro.utils.errors.GatewayOverloaded` →
  429, :class:`~repro.utils.errors.ReplicaCrashed` → 503, and
  :class:`~repro.utils.errors.DeadlineExceeded` → 504.
* ``GET /metrics`` — Prometheus text from the gateway's registry (the
  scrape runs the gateway's registered collector, so the series are live).
* ``GET /healthz`` — ``{"status": "ok", "models": [...]}`` while serving.

Connections are HTTP/1.1 keep-alive (closed-loop benchmark clients reuse
them); ``Connection: close`` is honoured.  The server drains on
:meth:`HttpFrontDoor.stop`: the acceptor closes first, in-flight handlers
finish their response, then the caller stops the gateway underneath.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

import numpy as np

from repro.obs.log import get_logger
from repro.serve.async_gateway import AsyncGateway
from repro.utils.errors import ReproError, ValidationError

__all__ = ["HttpFrontDoor"]

_log = get_logger("serve.http")

#: Largest request body accepted (a feature vector is a few KiB; anything
#: bigger is a client bug, answered with 413 instead of buffered).
_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_LINES = 100


class _HttpError(Exception):
    """An error with a wire status, raised inside request handling."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpFrontDoor:
    """The HTTP listener; owns nothing but the acceptor socket.

    The gateway's lifecycle stays the caller's: start the gateway, then
    the front door; stop the front door, then the gateway.  ``port=0``
    binds an ephemeral port — read it back from :attr:`address`.
    """

    def __init__(
        self,
        gateway: AsyncGateway,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._gateway = gateway
        self._host = host
        self._port = int(port)
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        if self._server is None or not self._server.sockets:
            raise ValidationError("HTTP front door is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> "HttpFrontDoor":
        if self._server is not None:
            return self
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self

    async def stop(self) -> None:
        """Stop accepting; in-flight handlers finish their responses."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def __aenter__(self) -> "HttpFrontDoor":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- connection handling -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:  # clean EOF between requests
                    return
                method, target, headers, body = request
                try:
                    status, content_type, payload = await self._route(
                        method, target, body
                    )
                except _HttpError as exc:
                    status, content_type, payload = self._error_body(
                        exc.status, str(exc)
                    )
                except ReproError as exc:
                    status, content_type, payload = self._error_body(
                        int(getattr(exc, "status_code", 400)), str(exc)
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    _log.warning("request handling failed", exc_info=True)
                    status, content_type, payload = self._error_body(
                        500, f"{type(exc).__name__}: {exc}"
                    )
                keep_alive = headers.get("connection", "").lower() != "close"
                self._write_response(
                    writer, status, content_type, payload, keep_alive
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            TimeoutError,
        ):  # client went away mid-request; normal churn, not an error
            _log.debug("client connection dropped", exc_info=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                _log.debug("connection close raced the peer", exc_info=True)

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many headers")
        length_text = headers.get("content-length", "0") or "0"
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _HttpError(413, f"body larger than {_MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)

    @staticmethod
    def _error_body(status: int, message: str) -> Tuple[int, str, bytes]:
        payload = json.dumps({"error": message, "status": status}).encode("utf-8")
        return status, "application/json", payload

    # -- routing -----------------------------------------------------------
    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, str, bytes]:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            payload = json.dumps(
                {"status": "ok", "models": sorted(self._gateway.models())}
            ).encode("utf-8")
            return 200, "application/json", payload
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "metrics is GET-only")
            text = self._gateway.registry.to_prometheus()
            return 200, "text/plain; version=0.0.4", text.encode("utf-8")
        if path.startswith("/v1/infer/"):
            if method != "POST":
                raise _HttpError(405, "infer is POST-only")
            model = path[len("/v1/infer/"):]
            if not model or "/" in model:
                raise _HttpError(404, f"no such route {path!r}")
            if model not in self._gateway.models():
                raise _HttpError(404, f"gateway hosts no model named {model!r}")
            return await self._infer(model, body)
        raise _HttpError(404, f"no such route {path!r}")

    async def _infer(self, model: str, body: bytes) -> Tuple[int, str, bytes]:
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not JSON: {exc}") from None
        if not isinstance(request, dict) or "x" not in request:
            raise _HttpError(400, 'body must be a JSON object with an "x" array')
        key = request.get("key")
        if key is not None and not isinstance(key, str):
            raise _HttpError(400, '"key" must be a string')
        deadline = request.get("deadline")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise _HttpError(400, '"deadline" must be a number') from None
        try:
            x = np.asarray(request["x"], dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f'"x" is not a numeric array: {exc}') from None
        # Gateway errors (ValidationError 400, GatewayOverloaded 429,
        # ReplicaCrashed 503, DeadlineExceeded 504) propagate to the
        # connection handler, which maps them via their status_code.
        y = await self._gateway.submit(model, x, key=key, deadline=deadline)
        payload = json.dumps({"model": model, "y": np.asarray(y).tolist()})
        return 200, "application/json", payload.encode("utf-8")
