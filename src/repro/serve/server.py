"""Batched inference front-end over cached decoded weights.

The :class:`Server` completes the paper's edge scenario: after the archive
arrives and the :class:`~repro.serve.runtime.ModelRuntime` decodes the fc
layers on demand, something must actually answer inference requests.  The
server accepts single-sample requests from any number of client threads,
coalesces them into batches (dynamic batching: a batch closes when it is
full *or* when the oldest request has waited ``max_batch_delay``), runs one
forward pass per batch on the NumPy network, and resolves each request's
future with its probability row.

The forward pass is whatever the network's fc layers are running: dense
BLAS matmuls, or — when the weights were installed from a sparse-mode
:class:`~repro.serve.runtime.ModelRuntime` — compressed-domain CSC matmuls
that exploit the pruned layers' ~10% density batch after batch.

Per-request latency (submit to result) and batch sizes are recorded in a
bounded :class:`~repro.obs.metrics.Histogram` (log-scale buckets plus a
seeded reservoir — flat memory under sustained load, unlike the unbounded
lists it replaced), and :meth:`Server.stats` reports throughput plus
latency percentiles — the numbers ``python -m repro serve-bench`` and
``benchmarks/bench_serving.py`` publish.

Requests submitted with a live trace span (see :mod:`repro.obs.trace`) get
``replica.queue`` / ``replica.batch`` / ``replica.forward`` child spans,
plus one ``replica.decode`` span per decode-on-demand weight fetch the
forward pass triggered; untraced requests pay only a ``None`` check.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.lint.lockcheck import make_lock
from repro.obs import profile
from repro.obs.metrics import Histogram
from repro.obs.trace import Span
from repro.serve.runtime import ModelRuntime
from repro.utils.errors import ValidationError

__all__ = ["ServerStats", "Server", "latency_percentiles"]

_PERCENTILES = (50.0, 90.0, 99.0)


def latency_percentiles(latencies_s: Sequence[float]) -> Dict[str, float]:
    """p50/p90/p99 of per-request latencies, in milliseconds.

    The one formatting of latency distributions every serving stats surface
    (server, gateway models, gateway aggregate) reports."""
    if not latencies_s:
        return {}
    values = np.percentile(np.asarray(latencies_s) * 1e3, _PERCENTILES)
    return {f"p{int(p)}": float(v) for p, v in zip(_PERCENTILES, values)}


@dataclass
class ServerStats:
    """Aggregate request statistics since server start."""

    requests: int = 0
    batches: int = 0
    failures: int = 0
    elapsed_seconds: float = 0.0
    latencies_ms: Dict[str, float] = field(default_factory=dict)
    mean_batch_size: float = 0.0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["throughput_rps"] = self.throughput_rps
        return out


@dataclass
class _Request:
    x: np.ndarray
    future: Future
    enqueued: float
    span: Optional[Span] = None  # gateway-side root; None for untraced requests
    wall_enqueued: float = 0.0  # wall clock, only captured when traced


class Server:
    """Dynamic-batching inference server over a network + serving runtime.

    Parameters
    ----------
    network:
        A :class:`repro.nn.Network` whose non-compressed parameters are
        already in place (conv layers ship dense in the edge scenario).
    runtime:
        Optional :class:`ModelRuntime`; when given, the compressed fc
        weights are installed from the decoded-layer cache at
        :meth:`start` (decoding on demand if still cold).
    batch_size:
        Maximum requests folded into one forward pass.
    max_batch_delay:
        Seconds the oldest queued request may wait for the batch to fill.
    """

    def __init__(
        self,
        network,
        runtime: Optional[ModelRuntime] = None,
        *,
        batch_size: int = 64,
        max_batch_delay: float = 0.002,
    ) -> None:
        if int(batch_size) < 1:
            raise ValidationError("batch_size must be >= 1")
        if float(max_batch_delay) < 0:
            raise ValidationError("max_batch_delay must be >= 0")
        self._network = network
        self._runtime = runtime
        self._batch_size = int(batch_size)
        self._max_batch_delay = float(max_batch_delay)
        self._queue: "queue.SimpleQueue[Optional[_Request]]" = queue.SimpleQueue()
        self._worker: Optional[threading.Thread] = None
        self._running = False
        self._lock = make_lock("serve.server.state")
        self._latency_hist = Histogram()
        self._batches = 0
        self._batch_items = 0
        self._failures = 0
        self._inflight = 0
        self._started_at = 0.0
        self._stopped_at: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Server":
        """Install weights from the runtime and start the batching loop.

        Weight installation runs *before* any server state changes, so a
        failed decode leaves the server cleanly stopped and start() can be
        retried.
        """
        with self._lock:
            if self._running:
                return self
        if self._runtime is not None:
            self._runtime.load_into(self._network)
        with self._lock:
            if self._running:  # lost a concurrent start() race; that's fine
                return self
            # A fresh queue per run: a previous stop() may have left its
            # shutdown sentinel unconsumed (the worker can exit via the
            # _running check instead), which would kill the new worker on
            # its first get().
            self._queue = queue.SimpleQueue()
            self._running = True
            # Stats cover one run ("since server start"): a restart resets
            # the counters along with the elapsed clock, or throughput
            # would divide old requests by the new run's elapsed time.
            self._latency_hist = Histogram()
            self._batches = 0
            self._batch_items = 0
            self._failures = 0
            self._inflight = 0
            self._started_at = time.perf_counter()
            self._stopped_at = None
            self._worker = threading.Thread(
                target=self._serve_loop, name="repro-serve", daemon=True
            )
            self._worker.start()
        return self

    def stop(self) -> None:
        """Stop the loop after the queued work drains; freeze the clock.

        The shutdown sentinel is enqueued under the same lock submit()
        enqueues requests under, so every accepted request sits ahead of
        the sentinel and is processed before the worker exits — a future
        returned by submit() always resolves.
        """
        with self._lock:
            if not self._running:
                return
            self._running = False
            self._queue.put(None)
            worker, self._worker = self._worker, None
        if worker is not None:
            worker.join()
        self._stopped_at = time.perf_counter()

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request path ------------------------------------------------------
    def submit(self, x: np.ndarray, span: Optional[Span] = None) -> Future:
        """Enqueue one sample; the future resolves to its probability row.

        ``span`` is an optional live trace span (the gateway-side request
        root): when present the batching loop emits queue/batch/forward/
        decode child spans for this request.
        """
        request = _Request(
            x=np.asarray(x, dtype=np.float32),
            future=Future(),
            enqueued=time.perf_counter(),
            span=span,
            wall_enqueued=time.time() if span is not None else 0.0,
        )
        # The running check and the put are one atomic step: stop() enqueues
        # its sentinel under the same lock, so a request can never land
        # behind the sentinel in a dead queue (its future would never
        # resolve).
        with self._lock:
            if not self._running:
                raise ValidationError("server is not running (call start())")
            self._inflight += 1
            self._queue.put(request)
        return request.future

    def submit_many(self, xs: Sequence[np.ndarray]) -> List[Future]:
        """Enqueue a sequence of samples, one future per sample.

        The samples enter the queue back to back, so the batching loop folds
        them into as few forward passes as ``batch_size`` allows — the bulk
        path benchmarks and the edge example use this to drive full batches.
        """
        return [self.submit(x) for x in xs]

    def infer(self, x: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous single-sample inference."""
        return self.submit(x).result(timeout=timeout)

    def classify(self, x: np.ndarray, timeout: Optional[float] = None) -> int:
        """Synchronous single-sample top-1 class."""
        return int(np.argmax(self.infer(x, timeout=timeout)))

    # -- batching loop -----------------------------------------------------
    def _serve_loop(self) -> None:
        # The worker exits only by consuming the shutdown sentinel: stop()
        # enqueues it atomically with the _running flip, so every accepted
        # request is ahead of it and gets processed before the exit.
        while True:
            first = self._queue.get()
            if first is None:
                return
            batch = [first]
            deadline = first.enqueued + self._max_batch_delay
            stop_after = False
            while len(batch) < self._batch_size:
                remaining = deadline - time.perf_counter()
                try:
                    # Past the deadline, still drain whatever is already
                    # queued (backlog built up during the previous forward
                    # pass) — only *waiting* for more requests is bounded
                    # by the delay budget.
                    if remaining > 0:
                        item = self._queue.get(timeout=remaining)
                    else:
                        item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is None:
                    stop_after = True
                    break
                batch.append(item)
            self._run_batch(batch)
            if stop_after:
                return

    def _run_batch(self, batch: Sequence[_Request]) -> None:
        traced = [req for req in batch if req.span is not None]
        wall_assembled = time.time() if traced else 0.0
        fetches: List[profile.FetchRecord] = []
        try:
            inputs = np.stack([req.x for req in batch])
            if traced:
                # A traced batch collects (layer, start, end) for every
                # decode-on-demand weight fetch the forward pass triggers.
                with profile.collect_fetches() as fetches:
                    wall_fwd_start = time.time()
                    probs = self._network.forward(inputs, training=False)
                    wall_fwd_end = time.time()
            else:
                probs = self._network.forward(inputs, training=False)
        except BaseException as exc:  # propagate to every caller in the batch
            done = time.perf_counter()
            with self._lock:
                self._failures += len(batch)
            for req in batch:
                self._record_latency(req, done)
                req.future.set_exception(exc)
            return
        done = time.perf_counter()
        with self._lock:
            self._batches += 1
            self._batch_items += len(batch)
        if traced:
            self._emit_spans(
                traced, len(batch), wall_assembled, wall_fwd_start, wall_fwd_end, fetches
            )
        for req, row in zip(batch, probs):
            self._record_latency(req, done)
            req.future.set_result(row)

    @staticmethod
    def _emit_spans(
        traced: Sequence[_Request],
        batch_size: int,
        assembled_s: float,
        fwd_start_s: float,
        fwd_end_s: float,
        fetches: Sequence[profile.FetchRecord],
    ) -> None:
        """Per traced request: queue → batch → forward (+ per-layer decode).

        Decode spans are duplicated into every traced tree of the batch —
        each request's tree stays complete on its own, which is what trace
        tooling (and the CI validator) consume.
        """
        for req in traced:
            queue_span = req.span.child("replica.queue", start_s=req.wall_enqueued)
            queue_span.finish(assembled_s)
            batch_span = req.span.child(
                "replica.batch", start_s=assembled_s, attrs={"batch_size": batch_size}
            )
            forward = batch_span.child("replica.forward", start_s=fwd_start_s)
            for layer, fetch_start, fetch_end in fetches:
                forward.child(
                    "replica.decode", start_s=fetch_start, attrs={"layer": layer}
                ).finish(fetch_end)
            forward.finish(fwd_end_s)
            batch_span.finish(fwd_end_s)

    def _record_latency(self, req: _Request, done: float) -> None:
        with self._lock:
            self._latency_hist.observe(done - req.enqueued)
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Accepted requests not yet resolved (queued + in the current batch).

        The load signal a multi-replica gateway's least-loaded shard policy
        reads; sampled without joining the worker, so it is advisory."""
        with self._lock:
            return self._inflight

    def latency_histogram(self) -> Histogram:
        """A consistent snapshot of the bounded latency histogram (seconds)."""
        with self._lock:
            return self._latency_hist.copy()

    # -- statistics --------------------------------------------------------
    def stats(self) -> ServerStats:
        with self._lock:
            requests = self._latency_hist.count
            percentiles = self._latency_hist.percentiles(scale=1e3)
            batches = self._batches
            batch_items = self._batch_items
            failures = self._failures
        end = self._stopped_at if self._stopped_at is not None else time.perf_counter()
        elapsed = max(end - self._started_at, 0.0) if self._started_at else 0.0
        return ServerStats(
            requests=requests,
            batches=batches,
            failures=failures,
            elapsed_seconds=elapsed,
            latencies_ms=percentiles,
            mean_batch_size=batch_items / batches if batches else 0.0,
        )
