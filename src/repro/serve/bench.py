"""Measurement harnesses for the serving runtime and the gateway.

Two functions produce the numbers the serving story is judged on, shared by
``python -m repro serve-bench`` / ``gateway-bench`` and
``benchmarks/bench_serving.py``:

:func:`serving_benchmark` measures one runtime:

* **cold full decode** — a fresh runtime decoding every layer up front (the
  v1 monolithic experience);
* **cold first layer** — time until the *first* layer is usable on a fresh
  runtime (what random access buys: you do not wait for siblings);
* **warm layer access** — mean per-access latency once the decoded-layer
  cache is hot (must be orders of magnitude below cold full decode);
* **layer-access throughput** at several thread counts against the warm
  cache (the cache is the serving hot path; this measures its contention);
* optionally a **gateway replica sweep** (``gateway_replicas=(1, 2, 4)``)
  over the same archive, reporting end-to-end request throughput per
  replica count.

:func:`gateway_benchmark` drives a whole :class:`~repro.serve.Gateway`
under closed-loop client load (every client waits for each response before
sending the next), then optionally slams it with an open-loop burst against
a deliberately tiny admission queue to measure how overload degrades:
bounded-queue rejections and stable latency for the admitted requests, not
a latency collapse.

:func:`async_gateway_benchmark` runs the same closed-loop shape against the
:class:`~repro.serve.AsyncGateway`: N concurrent client *coroutines* on one
event loop instead of N threads, over the identical replica backend.  Its
``throughput_rps`` is directly comparable to :func:`gateway_benchmark` at
the same client count — the number the thread-dispatcher-vs-event-loop
comparison is judged on.
"""

from __future__ import annotations

import asyncio
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.obs.metrics import registry as metrics_registry
from repro.obs.trace import JsonlSpanExporter, Tracer
from repro.serve.async_gateway import AsyncGateway
from repro.serve.gateway import Gateway
from repro.serve.runtime import DEFAULT_CACHE_BYTES, ModelRuntime
from repro.store.archive import ModelArchive
from repro.utils.errors import DeadlineExceeded, GatewayOverloaded, ValidationError

__all__ = [
    "archive_input_dim",
    "serving_benchmark",
    "gateway_benchmark",
    "async_gateway_benchmark",
    "dump_metrics",
]


def dump_metrics(path: Union[str, Path]) -> Path:
    """Write the process-wide metrics registry to ``path``.

    ``.prom`` suffix selects Prometheus text exposition; anything else gets
    the JSON form.  Returns the written path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".prom":
        path.write_text(metrics_registry().to_prometheus(), encoding="utf-8")
    else:
        import json

        path.write_text(
            json.dumps(metrics_registry().to_json(), indent=2, sort_keys=True),
            encoding="utf-8",
        )
    return path


def _fresh_runtime(source, cache_bytes: int, sparse: bool) -> ModelRuntime:
    # bytes are re-wrapped per run; paths are re-opened (and re-mmapped),
    # so every "cold" measurement really starts from the container.
    return ModelRuntime(source, cache_bytes=cache_bytes, sparse=sparse)


def archive_input_dim(source: Union[str, bytes]) -> int:
    """The in-features of a chained archive's first fc layer (request width).

    Shared with :mod:`repro.sim`, whose zoo builder sizes each model's
    input sample off the archive instead of re-parsing the synthetic spec.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        archive = ModelArchive.from_bytes(source)
    else:
        archive = ModelArchive.open(source)
    try:
        first = archive.layer_names[0]
        return int(archive.manifest.layers[first].shape[1])
    finally:
        archive.close()


# Backwards-compatible private alias (pre-repro.sim callers).
_archive_input_dim = archive_input_dim


def gateway_benchmark(
    sources: Dict[str, Union[str, bytes]],
    *,
    replicas: int = 1,
    clients: int = 4,
    requests_per_client: int = 64,
    burst: int = 1,
    policy: str = "round-robin",
    sparse: Union[bool, Dict[str, bool]] = False,
    batch_size: int = 16,
    max_batch_delay: float = 0.002,
    max_concurrency: Optional[int] = None,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    seed: int = 0,
    saturation_queue_depth: Optional[int] = 8,
    backend: str = "thread",
    trace_sample: float = 0.0,
    trace_path: Optional[Union[str, Path]] = None,
    metrics_path: Optional[Union[str, Path]] = None,
) -> Dict:
    """Drive a multi-model gateway under closed-loop load, then saturate it.

    ``sources`` maps model names to archive paths/bytes; every model gets
    ``replicas`` replicas and the same shard ``policy``.  ``sparse`` is a
    bool for all models or a per-model dict.  ``clients`` threads each send
    ``requests_per_client`` requests round-robin across the models, waiting
    for every response (closed loop), which measures sustainable aggregate
    throughput rather than queue growth.  ``burst`` submits that many
    samples per round before waiting (a client with a camera roll, not a
    single frame): outstanding requests ≈ ``clients * burst``, which is
    what keeps a replica pool busy and lets dynamic batching coalesce.

    With ``saturation_queue_depth`` set, a second gateway with that tiny
    admission queue (and one in-service slot per replica) takes an
    open-loop burst of ~6x its capacity per model; the report shows how
    many requests were fast-fail rejected versus admitted, and the p99 of
    the admitted ones — bounded-queue overload, not latency collapse.
    ``backend`` selects the replica execution backend (``"thread"`` keeps
    everything in-process; ``"process"`` runs GIL-free worker processes
    over the shared-memory weight cache).

    ``trace_sample`` > 0 (with ``trace_path``) traces that fraction of the
    closed-loop requests into a span JSONL file; ``metrics_path`` dumps the
    metrics registry after the closed-loop phase (``.prom`` → Prometheus
    text, else JSON).  Returns a JSON-ready dict.
    """
    if not sources:
        raise ValidationError("gateway_benchmark needs at least one model source")
    if int(clients) < 1 or int(requests_per_client) < 1:
        raise ValidationError("clients and requests_per_client must be >= 1")
    if int(burst) < 1:
        raise ValidationError("burst must be >= 1")
    if float(trace_sample) > 0.0 and trace_path is None:
        raise ValidationError("trace_sample > 0 needs a trace_path to export to")
    names = list(sources)
    sparse_by_name = (
        dict(sparse) if isinstance(sparse, dict) else {name: bool(sparse) for name in names}
    )
    input_dims = {name: _archive_input_dim(src) for name, src in sources.items()}
    exporter: Optional[JsonlSpanExporter] = None
    tracer: Optional[Tracer] = None
    if float(trace_sample) > 0.0:
        exporter = JsonlSpanExporter(trace_path)
        tracer = Tracer(float(trace_sample), exporter, seed=seed)

    def build(
        max_queue_depth: int,
        concurrency_cap: Optional[int],
        gw_tracer: Optional[Tracer] = None,
    ) -> Gateway:
        gateway = Gateway(replica_backend=backend, tracer=gw_tracer)
        for name, src in sources.items():
            gateway.add_model(
                name,
                src,
                replicas=replicas,
                sparse=sparse_by_name.get(name, False),
                policy=policy,
                max_queue_depth=max_queue_depth,
                max_concurrency=concurrency_cap,
                batch_size=batch_size,
                max_batch_delay=max_batch_delay,
                cache_bytes=cache_bytes,
            )
        return gateway

    # -- closed-loop load phase --------------------------------------------
    total_requests = int(clients) * int(requests_per_client)
    gateway = build(
        max_queue_depth=total_requests + 1,
        concurrency_cap=max_concurrency,
        gw_tracer=tracer,
    )
    rng = np.random.default_rng(seed)
    inputs = {
        name: rng.standard_normal((1, dim)).astype(np.float32)[0]
        for name, dim in input_dims.items()
    }
    errors: list = []
    barrier = threading.Barrier(int(clients) + 1)

    def client(client_index: int) -> None:
        try:
            barrier.wait()
            sent = 0
            round_no = 0
            while sent < int(requests_per_client):
                name = names[(client_index + round_no) % len(names)]
                size = min(int(burst), int(requests_per_client) - sent)
                futures = [
                    gateway.submit(name, inputs[name], key=f"client-{client_index}")
                    for _ in range(size)
                ]
                for future in futures:
                    future.result(timeout=120)
                sent += size
                round_no += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    try:
        gateway.start()
        threads = [
            threading.Thread(target=client, args=(i,), name=f"gw-client-{i}")
            for i in range(int(clients))
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = gateway.stats()
        if metrics_path is not None:
            # While the gateway is still running: its collector only feeds
            # the registry between start() and stop().
            dump_metrics(metrics_path)
    finally:
        gateway.close()
        if tracer is not None:
            tracer.close()
    if errors:
        raise errors[0]

    results: Dict = {
        "models": len(names),
        "replicas": int(replicas),
        "backend": backend,
        "policy": policy,
        "clients": int(clients),
        "burst": int(burst),
        "requests": total_requests,
        "completed": stats.completed,
        "failures": stats.failures,
        "rejected": stats.rejected,
        "elapsed_s": elapsed,
        "throughput_rps": total_requests / elapsed if elapsed else 0.0,
        "latency_ms": dict(stats.latencies_ms),
        "cache_bytes": stats.cache_bytes,
        "shared_bytes": stats.shared_bytes,
        "per_model": {
            name: {
                "completed": model.completed,
                "throughput_rps": model.throughput_rps,
                "latency_ms": dict(model.latencies_ms),
                "cache_bytes": model.cache_bytes,
                "dispatched": [replica.dispatched for replica in model.replicas],
            }
            for name, model in stats.models.items()
        },
    }
    if exporter is not None:
        results["trace"] = {
            "sample_rate": float(trace_sample),
            "path": str(trace_path),
            "spans_exported": int(exporter.exported),
        }
    if metrics_path is not None:
        results["metrics_path"] = str(metrics_path)

    # -- open-loop saturation phase ----------------------------------------
    if saturation_queue_depth is not None:
        depth = int(saturation_queue_depth)
        concurrency_cap = max(1, int(replicas))
        burst_per_model = 6 * (depth + concurrency_cap)
        gateway = build(max_queue_depth=depth, concurrency_cap=concurrency_cap)
        admitted = []
        rejected = 0
        try:
            gateway.start()
            start = time.perf_counter()
            for name in names:
                for _ in range(burst_per_model):
                    try:
                        admitted.append(gateway.submit(name, inputs[name]))
                    except GatewayOverloaded:
                        rejected += 1
            for future in admitted:
                future.result(timeout=120)
            burst_elapsed = time.perf_counter() - start
            saturation_stats = gateway.stats()
        finally:
            gateway.close()
        offered = burst_per_model * len(names)
        results["saturation"] = {
            "queue_depth_limit": depth,
            "max_concurrency": concurrency_cap,
            "offered": offered,
            "admitted": len(admitted),
            "rejected": rejected,
            "rejection_rate": rejected / offered if offered else 0.0,
            "elapsed_s": burst_elapsed,
            "latency_ms": dict(saturation_stats.latencies_ms),
        }
    return results


def async_gateway_benchmark(
    sources: Dict[str, Union[str, bytes]],
    *,
    replicas: int = 1,
    clients: int = 64,
    requests_per_client: int = 32,
    policy: str = "round-robin",
    sparse: Union[bool, Dict[str, bool]] = False,
    batch_size: int = 16,
    max_batch_delay: float = 0.002,
    max_concurrency: Optional[int] = None,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    seed: int = 0,
    backend: str = "process",
    deadline: Optional[float] = None,
) -> Dict:
    """Drive the asyncio gateway under closed-loop coroutine load.

    The load shape mirrors :func:`gateway_benchmark`: ``clients`` closed-loop
    clients each send ``requests_per_client`` requests round-robin across the
    models, waiting for every response before the next.  Here the clients are
    coroutines multiplexed on the one event loop the
    :class:`~repro.serve.AsyncGateway` runs on — the whole front half of the
    system is a single thread, which is exactly what the thread-dispatcher
    comparison measures (64 coroutines cost one stack; 64 client threads plus
    per-model dispatcher threads cost a scheduler).

    ``deadline`` (seconds) is attached to every request when set;
    :class:`~repro.utils.errors.DeadlineExceeded` responses are counted, not
    fatal, and ``throughput_rps`` then counts completed requests only.
    Returns a JSON-ready dict shaped like :func:`gateway_benchmark`'s
    closed-loop section.
    """
    if not sources:
        raise ValidationError("async_gateway_benchmark needs at least one model source")
    if int(clients) < 1 or int(requests_per_client) < 1:
        raise ValidationError("clients and requests_per_client must be >= 1")
    if deadline is not None and float(deadline) <= 0.0:
        raise ValidationError("deadline must be > 0 seconds")
    names = list(sources)
    sparse_by_name = (
        dict(sparse) if isinstance(sparse, dict) else {name: bool(sparse) for name in names}
    )
    input_dims = {name: _archive_input_dim(src) for name, src in sources.items()}
    rng = np.random.default_rng(seed)
    inputs = {
        name: rng.standard_normal((1, dim)).astype(np.float32)[0]
        for name, dim in input_dims.items()
    }
    total_requests = int(clients) * int(requests_per_client)

    async def run() -> tuple:
        gateway = AsyncGateway(replica_backend=backend)
        for name, src in sources.items():
            gateway.add_model(
                name,
                src,
                replicas=int(replicas),
                sparse=sparse_by_name.get(name, False),
                policy=policy,
                max_queue_depth=total_requests + 1,
                max_concurrency=max_concurrency,
                batch_size=batch_size,
                max_batch_delay=max_batch_delay,
                cache_bytes=cache_bytes,
            )
        go = asyncio.Event()
        deadline_hits = 0

        async def client(client_index: int) -> None:
            nonlocal deadline_hits
            await go.wait()
            for round_no in range(int(requests_per_client)):
                name = names[(client_index + round_no) % len(names)]
                try:
                    await gateway.submit(
                        name,
                        inputs[name],
                        key=f"client-{client_index}",
                        deadline=deadline,
                    )
                except DeadlineExceeded:
                    deadline_hits += 1

        try:
            await gateway.start()
            tasks = [
                asyncio.ensure_future(client(i)) for i in range(int(clients))
            ]
            go.set()
            start = time.perf_counter()
            await asyncio.gather(*tasks)
            elapsed = time.perf_counter() - start
            stats = gateway.stats()
        finally:
            await gateway.close()
        return elapsed, stats, deadline_hits

    elapsed, stats, deadline_hits = asyncio.run(run())
    finished = total_requests - deadline_hits
    return {
        "models": len(names),
        "replicas": int(replicas),
        "backend": backend,
        "policy": policy,
        "clients": int(clients),
        "requests": total_requests,
        "completed": stats.completed,
        "failures": stats.failures,
        "rejected": stats.rejected,
        "deadline_exceeded": deadline_hits,
        "elapsed_s": elapsed,
        "throughput_rps": finished / elapsed if elapsed else 0.0,
        "latency_ms": dict(stats.latencies_ms),
        "cache_bytes": stats.cache_bytes,
        "shared_bytes": stats.shared_bytes,
        "per_model": {
            name: {
                "completed": model.completed,
                "throughput_rps": model.throughput_rps,
                "latency_ms": dict(model.latencies_ms),
                "dispatched": [replica.dispatched for replica in model.replicas],
            }
            for name, model in stats.models.items()
        },
    }


def serving_benchmark(
    source: Union[str, bytes],
    *,
    concurrency: Sequence[int] = (1, 2, 4, 8),
    accesses_per_thread: int = 200,
    warm_repeats: int = 50,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    seed: int = 0,
    sparse: bool = False,
    gateway_replicas: Optional[Sequence[int]] = None,
    gateway_clients: int = 4,
    gateway_requests_per_client: int = 48,
    gateway_backend: str = "thread",
) -> Dict:
    """Benchmark cold/warm layer access and concurrent throughput.

    ``source`` is a ``.dsz`` archive path or its raw bytes.  ``sparse``
    serves layers in compressed-domain form (``decoded_bytes`` then reports
    the resident CSC footprint the cache is charged, not dense bytes).
    ``gateway_replicas`` additionally sweeps a single-model gateway over
    the archive at those replica counts (end-to-end request throughput;
    chained-MLP archives only) into a ``"gateway"`` section, running
    replicas on ``gateway_backend`` (``"thread"`` or ``"process"``).
    Returns a JSON-ready dict (see the module docstring for the metrics).
    """
    # -- cold: full-model decode on a fresh runtime -------------------------
    with _fresh_runtime(source, cache_bytes, sparse) as runtime:
        start = time.perf_counter()
        decoded = runtime.decode_all()
        cold_full_s = time.perf_counter() - start
        layer_names = runtime.layer_names
        decoded_bytes = int(sum(a.nbytes for a in decoded.values()))
        archive_size = runtime.archive.size

    # -- cold: time-to-first-layer -----------------------------------------
    with _fresh_runtime(source, cache_bytes, sparse) as runtime:
        start = time.perf_counter()
        runtime.layer(layer_names[0])
        cold_first_layer_s = time.perf_counter() - start

    # -- warm accesses and concurrent throughput ---------------------------
    runtime = _fresh_runtime(source, cache_bytes, sparse)
    try:
        runtime.prefetch(workers=1)
        start = time.perf_counter()
        touches = 0
        for _ in range(max(1, warm_repeats)):
            for name in layer_names:
                runtime.layer(name)
                touches += 1
        warm_total_s = time.perf_counter() - start
        warm_per_access_s = warm_total_s / touches

        throughput: Dict[str, float] = {}
        for workers in concurrency:
            workers = int(workers)
            if workers < 1:
                continue

            def hammer(thread_idx: int) -> None:
                rng = np.random.default_rng(seed + thread_idx)
                for _ in range(accesses_per_thread):
                    runtime.layer(layer_names[rng.integers(len(layer_names))])

            threads = [
                threading.Thread(target=hammer, args=(i,)) for i in range(workers)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            total_accesses = workers * accesses_per_thread
            throughput[str(workers)] = total_accesses / elapsed if elapsed else 0.0

        runtime_stats = runtime.stats()
        cache_stats = runtime_stats.cache.as_dict()
        decode_stages = dict(runtime_stats.stage_seconds)
    finally:
        runtime.close()

    results = {
        "layers": len(layer_names),
        "sparse": bool(sparse),
        "archive_bytes": archive_size,
        "decoded_bytes": decoded_bytes,
        "cold_full_decode_s": cold_full_s,
        "cold_first_layer_s": cold_first_layer_s,
        "warm_layer_access_s": warm_per_access_s,
        "warm_vs_cold_speedup": (
            cold_full_s / warm_per_access_s if warm_per_access_s else float("inf")
        ),
        "throughput_accesses_per_s": throughput,
        "cache": cache_stats,
        # Per-codec-stage decode seconds for the warm runtime's decodes
        # (obs profiling hooks; empty when instrumentation is disabled).
        "decode_stages": decode_stages,
    }

    if gateway_replicas:
        counts = sorted({int(r) for r in gateway_replicas if int(r) >= 1})
        sweep: Dict[str, Dict] = {}
        for count in counts:
            sweep[str(count)] = gateway_benchmark(
                {"model": source},
                replicas=count,
                clients=gateway_clients,
                requests_per_client=gateway_requests_per_client,
                sparse=sparse,
                cache_bytes=cache_bytes,
                seed=seed,
                backend=gateway_backend,
                # One saturation probe per sweep (at the largest pool) is
                # enough to characterise overload behaviour.
                saturation_queue_depth=8 if count == counts[-1] else None,
            )
        results["gateway"] = sweep
    return results
