"""Measurement harness for the serving runtime.

One function, :func:`serving_benchmark`, produces the numbers the serving
story is judged on, shared by ``python -m repro serve-bench`` and
``benchmarks/bench_serving.py``:

* **cold full decode** — a fresh runtime decoding every layer up front (the
  v1 monolithic experience);
* **cold first layer** — time until the *first* layer is usable on a fresh
  runtime (what random access buys: you do not wait for siblings);
* **warm layer access** — mean per-access latency once the decoded-layer
  cache is hot (must be orders of magnitude below cold full decode);
* **layer-access throughput** at several thread counts against the warm
  cache (the cache is the serving hot path; this measures its contention).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Sequence, Union

import numpy as np

from repro.serve.runtime import DEFAULT_CACHE_BYTES, ModelRuntime

__all__ = ["serving_benchmark"]


def _fresh_runtime(source, cache_bytes: int, sparse: bool) -> ModelRuntime:
    # bytes are re-wrapped per run; paths are re-opened (and re-mmapped),
    # so every "cold" measurement really starts from the container.
    return ModelRuntime(source, cache_bytes=cache_bytes, sparse=sparse)


def serving_benchmark(
    source: Union[str, bytes],
    *,
    concurrency: Sequence[int] = (1, 2, 4, 8),
    accesses_per_thread: int = 200,
    warm_repeats: int = 50,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    seed: int = 0,
    sparse: bool = False,
) -> Dict:
    """Benchmark cold/warm layer access and concurrent throughput.

    ``source`` is a ``.dsz`` archive path or its raw bytes.  ``sparse``
    serves layers in compressed-domain form (``decoded_bytes`` then reports
    the resident CSC footprint the cache is charged, not dense bytes).
    Returns a JSON-ready dict (see the module docstring for the metrics).
    """
    # -- cold: full-model decode on a fresh runtime -------------------------
    with _fresh_runtime(source, cache_bytes, sparse) as runtime:
        start = time.perf_counter()
        decoded = runtime.decode_all()
        cold_full_s = time.perf_counter() - start
        layer_names = runtime.layer_names
        decoded_bytes = int(sum(a.nbytes for a in decoded.values()))
        archive_size = runtime.archive.size

    # -- cold: time-to-first-layer -----------------------------------------
    with _fresh_runtime(source, cache_bytes, sparse) as runtime:
        start = time.perf_counter()
        runtime.layer(layer_names[0])
        cold_first_layer_s = time.perf_counter() - start

    # -- warm accesses and concurrent throughput ---------------------------
    runtime = _fresh_runtime(source, cache_bytes, sparse)
    try:
        runtime.prefetch(workers=1)
        start = time.perf_counter()
        touches = 0
        for _ in range(max(1, warm_repeats)):
            for name in layer_names:
                runtime.layer(name)
                touches += 1
        warm_total_s = time.perf_counter() - start
        warm_per_access_s = warm_total_s / touches

        throughput: Dict[str, float] = {}
        for workers in concurrency:
            workers = int(workers)
            if workers < 1:
                continue

            def hammer(thread_idx: int) -> None:
                rng = np.random.default_rng(seed + thread_idx)
                for _ in range(accesses_per_thread):
                    runtime.layer(layer_names[rng.integers(len(layer_names))])

            threads = [
                threading.Thread(target=hammer, args=(i,)) for i in range(workers)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            total_accesses = workers * accesses_per_thread
            throughput[str(workers)] = total_accesses / elapsed if elapsed else 0.0

        cache_stats = runtime.stats().cache.as_dict()
    finally:
        runtime.close()

    return {
        "layers": len(layer_names),
        "sparse": bool(sparse),
        "archive_bytes": archive_size,
        "decoded_bytes": decoded_bytes,
        "cold_full_decode_s": cold_full_s,
        "cold_first_layer_s": cold_first_layer_s,
        "warm_layer_access_s": warm_per_access_s,
        "warm_vs_cold_speedup": (
            cold_full_s / warm_per_access_s if warm_per_access_s else float("inf")
        ),
        "throughput_accesses_per_s": throughput,
        "cache": cache_stats,
    }
