"""Size-bounded, thread-safe LRU cache for decoded layers.

The serving runtime decodes layers on demand; decoded dense matrices are
large (a VGG-16 fc6 is ~400 MB), so the cache is bounded by *bytes*, not
entry count.  Three properties matter for serving:

* **thread safety** — many request threads hit the cache concurrently;
* **single-flight misses** — when N threads miss the same key at once, one
  runs the (expensive) decode and the rest wait for its result instead of
  decoding N times;
* **observability** — hit/miss/eviction counters so a serving node can
  report cache effectiveness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, Optional, Tuple, TypeVar

from repro.lint.lockcheck import make_lock
from repro.utils.errors import ValidationError

__all__ = ["CacheStats", "LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Counters for one :class:`LRUCache` (snapshot via :meth:`as_dict`)."""

    hits: int = 0
    misses: int = 0
    coalesced: int = 0  #: misses that piggybacked on another caller's create
    evictions: int = 0
    inserts: int = 0
    oversize_rejects: int = 0
    current_bytes: int = 0
    max_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """True hits over all lookups — coalesced waiters count toward the
        denominator (they needed a value that was not ready), so concurrent
        cold starts do not inflate the rate."""
        total = self.hits + self.misses + self.coalesced
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        out = dict(self.__dict__)
        out["hit_rate"] = self.hit_rate
        return out


class LRUCache(Generic[K, V]):
    """Byte-budgeted LRU mapping with single-flight ``get_or_create``.

    Values are stored together with their charged size.  An entry larger
    than the whole budget is returned to the caller but never cached
    (counted as an oversize reject), so one huge layer cannot wipe the
    cache for everyone else.
    """

    def __init__(self, max_bytes: int) -> None:
        if int(max_bytes) < 1:
            raise ValidationError("cache max_bytes must be positive")
        self._max_bytes = int(max_bytes)
        self._lock = make_lock("serve.cache")
        self._entries: "OrderedDict[K, Tuple[V, int]]" = OrderedDict()
        self._inflight: Dict[K, threading.Event] = {}
        self._stats = CacheStats(max_bytes=self._max_bytes)

    # -- introspection -----------------------------------------------------
    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._stats.current_bytes

    def stats(self) -> CacheStats:
        """A snapshot copy of the counters."""
        with self._lock:
            return CacheStats(**dict(self._stats.__dict__))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list:
        """Cached keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    # -- core operations ---------------------------------------------------
    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return entry[0]

    def put(self, key: K, value: V, size: int) -> None:
        """Insert (or refresh) an entry charged at ``size`` bytes."""
        size = int(size)
        if size < 0:
            raise ValidationError("entry size must be non-negative")
        with self._lock:
            self._insert_locked(key, value, size)

    def _insert_locked(self, key: K, value: V, size: int) -> None:
        if size > self._max_bytes:
            self._entries.pop(key, None)
            self._recount_locked()
            self._stats.oversize_rejects += 1
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._stats.current_bytes -= old[1]
        self._entries[key] = (value, size)
        self._stats.current_bytes += size
        self._stats.inserts += 1
        while self._stats.current_bytes > self._max_bytes:
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self._stats.current_bytes -= evicted_size
            self._stats.evictions += 1

    def _recount_locked(self) -> None:
        self._stats.current_bytes = sum(s for _, s in self._entries.values())

    def remove(self, key: K) -> bool:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._stats.current_bytes -= entry[1]
            return entry is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stats.current_bytes = 0

    def get_or_create(
        self, key: K, factory: Callable[[], Tuple[V, int]]
    ) -> V:
        """Return the cached value, creating it with single-flight semantics.

        ``factory`` runs outside the cache lock and returns ``(value,
        size_bytes)``.  Concurrent callers missing on the same key wait for
        the first caller's result; if the factory raises, one waiter is
        promoted to retry.
        """
        waited = False
        while True:
            wait_for: Optional[threading.Event] = None
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    if waited:
                        # A waiter finding the leader's result is not a hit:
                        # the value was not ready when this caller asked.
                        self._stats.coalesced += 1
                    else:
                        self._stats.hits += 1
                    return entry[0]
                wait_for = self._inflight.get(key)
                if wait_for is None:
                    self._inflight[key] = threading.Event()
                    self._stats.misses += 1
            if wait_for is not None:
                waited = True
                wait_for.wait()
                continue  # re-check the cache (result may be cached or evicted)
            try:
                value, size = factory()
            except BaseException:
                # Wake the waiters without a cached entry; one of them is
                # promoted to retry the factory.
                with self._lock:
                    event = self._inflight.pop(key)
                event.set()
                raise
            with self._lock:
                self._insert_locked(key, value, int(size))
                event = self._inflight.pop(key)
            event.set()
            return value
