"""Compression / accuracy metrics shared by tests and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["compression_ratio", "bits_per_weight", "format_bytes", "max_abs_error", "psnr"]


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """original / compressed (the paper's "compression ratio")."""
    if original_bytes < 0 or compressed_bytes < 0:
        raise ValidationError("sizes must be non-negative")
    if compressed_bytes == 0:
        return float("inf")
    return original_bytes / compressed_bytes


def bits_per_weight(compressed_bytes: int, weight_count: int) -> float:
    """Average encoded bits per (non-zero) weight."""
    if weight_count <= 0:
        raise ValidationError("weight_count must be positive")
    return 8.0 * compressed_bytes / weight_count


def format_bytes(num_bytes: float) -> str:
    """Human-readable size: the paper mixes KB and MB depending on the network."""
    num_bytes = float(num_bytes)
    for unit, scale in (("GB", 1024**3), ("MB", 1024**2), ("KB", 1024)):
        if abs(num_bytes) >= scale:
            return f"{num_bytes / scale:.2f} {unit}"
    return f"{num_bytes:.0f} B"


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """L-infinity norm of the reconstruction error."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValidationError("shape mismatch between original and reconstructed arrays")
    if original.size == 0:
        return 0.0
    return float(np.max(np.abs(original - reconstructed)))


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (SZ's third error-control metric)."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValidationError("shape mismatch between original and reconstructed arrays")
    if original.size == 0:
        return float("inf")
    value_range = float(np.max(original) - np.min(original))
    mse = float(np.mean((original - reconstructed) ** 2))
    if mse == 0.0:
        return float("inf")
    if value_range == 0.0:
        return float("-inf")
    return 20.0 * np.log10(value_range) - 10.0 * np.log10(mse)
