"""Plain-text renderers for the paper's tables and figure series.

Benchmarks print their results through these helpers so that every table and
figure of the paper has a textual twin that can be diffed against
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from repro.analysis.metrics import format_bytes
from repro.nn.specs import NetworkSpec
from repro.utils.errors import ValidationError

__all__ = [
    "render_table",
    "architecture_table",
    "compression_stats_table",
    "accuracy_table",
    "comparison_table",
    "ascii_series",
]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError("row width does not match header width")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def architecture_table(specs: Sequence[NetworkSpec]) -> str:
    """Table 1: architecture and storage breakdown of the evaluated networks."""
    headers = ["network", "conv layers", "fc-layers", "fc shapes", "total size", "fc size (%)"]
    rows = []
    for spec in specs:
        shapes = ", ".join(f"{l.name} {l.rows}x{l.cols}" for l in spec.fc_layers)
        rows.append(
            [
                spec.name,
                len(spec.conv_layers),
                len(spec.fc_layers),
                shapes,
                format_bytes(spec.total_bytes),
                f"{100.0 * spec.fc_fraction:.1f}%",
            ]
        )
    return render_table(headers, rows, title="Table 1 — network architectures")


def compression_stats_table(
    network: str, per_layer: Mapping[str, Mapping[str, object]]
) -> str:
    """Tables 2a–2d: per-layer original / CSR / DeepSZ sizes."""
    headers = ["layer", "original", "pruning ratio", "CSR size", "DeepSZ size", "error bound"]
    rows = []
    for layer, stats in per_layer.items():
        rows.append(
            [
                layer,
                format_bytes(stats["original_bytes"]),
                f"{100.0 * float(stats['pruning_ratio']):.1f}%",
                format_bytes(stats["csr_bytes"]),
                format_bytes(stats["compressed_bytes"]),
                f"{float(stats['error_bound']):.0e}",
            ]
        )
    return render_table(headers, rows, title=f"Table 2 — fc-layer compression statistics ({network})")


def accuracy_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Table 3: accuracy and compression ratio of the DeepSZ-compressed networks."""
    headers = ["network", "top-1", "top-5", "fc size", "ratio"]
    formatted = []
    for row in rows:
        top5 = row.get("top5")
        formatted.append(
            [
                row["network"],
                f"{100.0 * float(row['top1']):.2f}%",
                f"{100.0 * float(top5):.2f}%" if top5 is not None else "-",
                format_bytes(row["fc_bytes"]),
                f"{float(row['ratio']):.1f}x" if row.get("ratio") else "-",
            ]
        )
    return render_table(headers, formatted, title="Table 3 — accuracy of DeepSZ-compressed networks")


def comparison_table(
    network: str, per_layer: Mapping[str, Mapping[str, float]]
) -> str:
    """Table 4: compression ratios of Deep Compression / Weightless / DeepSZ."""
    headers = ["layer", "Deep Compression", "Weightless", "DeepSZ", "improvement"]
    rows = []
    for layer, ratios in per_layer.items():
        dc = ratios.get("deep_compression")
        wl = ratios.get("weightless")
        dsz = ratios.get("deepsz")
        best_other = max(x for x in (dc, wl) if x is not None) if (dc or wl) else None
        improvement = (dsz / best_other) if (dsz and best_other) else None
        rows.append(
            [
                layer,
                f"{dc:.1f}x" if dc else "-",
                f"{wl:.1f}x" if wl else "-",
                f"{dsz:.1f}x" if dsz else "-",
                f"{improvement:.2f}x" if improvement else "-",
            ]
        )
    return render_table(headers, rows, title=f"Table 4 — compression ratio comparison ({network})")


def ascii_series(
    title: str, series: Mapping[str, Mapping[float, float]], *, value_format: str = "{:.4f}"
) -> str:
    """Render figure data (x -> y per series) as an aligned text block.

    Used for Figures 2–7: each series is one line of ``x: y`` pairs, which is
    enough to eyeball the shape and compare against the paper's plots.
    """
    lines = [title]
    for name, points in series.items():
        parts = [f"{x:g}: {value_format.format(y)}" for x, y in sorted(points.items())]
        lines.append(f"  {name:<12} " + "  ".join(parts))
    return "\n".join(lines)
