"""Metrics and report rendering for the paper's tables and figures."""

from repro.analysis.metrics import (
    compression_ratio,
    bits_per_weight,
    format_bytes,
    max_abs_error,
    psnr,
)
from repro.analysis.reporting import (
    render_table,
    architecture_table,
    compression_stats_table,
    accuracy_table,
    comparison_table,
    ascii_series,
)

__all__ = [
    "compression_ratio",
    "bits_per_weight",
    "format_bytes",
    "max_abs_error",
    "psnr",
    "render_table",
    "architecture_table",
    "compression_stats_table",
    "accuracy_table",
    "comparison_table",
    "ascii_series",
]
