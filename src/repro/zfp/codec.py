"""A ZFP-style block floating-point transform codec for 1-D arrays.

Pipeline (per block of ``block_size`` values):

1. **Exponent alignment** -- the block's common exponent is the exponent of
   its largest magnitude; all values share one scale factor.
2. **Fixed-point conversion** -- values are scaled by ``2**(precision-1)`` /
   ``2**exponent`` and rounded to integers.
3. **Orthogonal decorrelating transform** (optional) -- an exactly invertible
   integer S-transform (two-level Haar lifting) applied within the block.
4. **Truncation coding** -- each integer keeps only its most significant
   ``kept_bits`` bits (sign + magnitude); ``kept_bits`` is chosen per block so
   that the discarded low-order bits stay within the accuracy target
   (fixed-accuracy mode) or matches the requested bit budget (fixed-rate
   mode).

The result is written through the shared :class:`repro.utils.BitWriter`.
Unlike real ZFP there is no group-tested embedded bit-plane stream; for the
noise-like 1-D weight arrays DeepSZ deals with, the rate of this codec tracks
real ZFP's fixed-accuracy rate (≈ ``log2(range / tolerance)`` bits/value),
which is the property Figure 2 exercises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.bitstream import BitReader, BitWriter
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import ConfigurationError, DecompressionError
from repro.utils.validation import as_float32_1d, check_positive

__all__ = ["ZFPConfig", "ZFPResult", "ZFPCompressor", "compress", "decompress"]

_MAGIC = "repro-zfp-v1"
_MAX_PRECISION = 30  # bits of fixed-point magnitude kept before truncation


@dataclass(frozen=True)
class ZFPConfig:
    """Configuration for the ZFP-style codec.

    Exactly one of ``tolerance`` (fixed-accuracy) or ``rate_bits`` (fixed-rate,
    bits per value including the sign bit) must be set.
    """

    tolerance: float | None = 1e-3
    rate_bits: int | None = None
    block_size: int = 32
    use_transform: bool = False

    def __post_init__(self) -> None:
        if (self.tolerance is None) == (self.rate_bits is None):
            raise ConfigurationError(
                "exactly one of tolerance (fixed-accuracy) or rate_bits (fixed-rate) must be set"
            )
        if self.tolerance is not None:
            check_positive(self.tolerance, "tolerance")
        if self.rate_bits is not None and not (1 <= int(self.rate_bits) <= _MAX_PRECISION):
            raise ConfigurationError(f"rate_bits must be in [1, {_MAX_PRECISION}]")
        if self.block_size < 4 or self.block_size % 4:
            raise ConfigurationError("block_size must be a positive multiple of 4")
        if self.use_transform and self.block_size % 4:
            raise ConfigurationError("the lifting transform requires block_size % 4 == 0")


@dataclass(frozen=True)
class ZFPResult:
    """Outcome of one ZFP-style compression call."""

    payload: bytes
    original_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def bits_per_value(self) -> float:
        count = self.original_bytes // 4
        if count == 0:
            return 0.0
        return 8.0 * self.compressed_bytes / count


def _forward_lift(block: np.ndarray) -> np.ndarray:
    """Exactly invertible two-level S-transform over groups of 4 columns.

    ``block`` has shape (nblocks, block_size) with int64 entries; the
    transform is applied independently to every consecutive group of 4
    columns.
    """
    out = block.copy()
    for g in range(0, block.shape[1], 4):
        a, b, c, d = (out[:, g + i].copy() for i in range(4))
        # level 1: pairs (a,b) and (c,d)
        d0 = a - b
        s0 = b + (d0 >> 1)
        d1 = c - d
        s1 = d + (d1 >> 1)
        # level 2: pair (s0, s1)
        ds = s0 - s1
        ss = s1 + (ds >> 1)
        out[:, g + 0] = ss
        out[:, g + 1] = ds
        out[:, g + 2] = d0
        out[:, g + 3] = d1
    return out


def _inverse_lift(block: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_forward_lift`."""
    out = block.copy()
    for g in range(0, block.shape[1], 4):
        ss = out[:, g + 0].copy()
        ds = out[:, g + 1].copy()
        d0 = out[:, g + 2].copy()
        d1 = out[:, g + 3].copy()
        s1 = ss - (ds >> 1)
        s0 = s1 + ds
        b = s0 - (d0 >> 1)
        a = b + d0
        d = s1 - (d1 >> 1)
        c = d + d1
        out[:, g + 0] = a
        out[:, g + 1] = b
        out[:, g + 2] = c
        out[:, g + 3] = d
    return out


class ZFPCompressor:
    """Fixed-accuracy / fixed-rate block codec for 1-D float arrays."""

    def __init__(self, config: ZFPConfig | None = None) -> None:
        self.config = config or ZFPConfig()

    # -- helpers ----------------------------------------------------------
    def _blocks(self, data: np.ndarray) -> tuple[np.ndarray, int]:
        bs = self.config.block_size
        n = data.size
        nblocks = (n + bs - 1) // bs
        padded = np.zeros(nblocks * bs, dtype=np.float64)
        padded[:n] = data
        return padded.reshape(nblocks, bs), n

    # -- compression ------------------------------------------------------
    def compress(self, data: np.ndarray) -> ZFPResult:
        data = as_float32_1d(data)
        cfg = self.config
        blocks, n = self._blocks(data.astype(np.float64))
        nblocks, bs = blocks.shape

        max_mag = np.max(np.abs(blocks), axis=1)
        # Block exponent e such that |x| < 2**e for every value in the block.
        exponents = np.where(
            max_mag > 0.0, np.ceil(np.log2(np.maximum(max_mag, 1e-300))).astype(np.int64) + 1, 0
        )
        # Fixed-point conversion: x * 2**(precision - exponent)
        scale = np.exp2(_MAX_PRECISION - exponents.astype(np.float64))
        ints = np.rint(blocks * scale[:, None]).astype(np.int64)
        transform_guard = 0
        if cfg.use_transform:
            ints = _forward_lift(ints)
            transform_guard = 2  # inverse lifting can amplify truncation error ~4x

        # Bits kept per block.
        if cfg.rate_bits is not None:
            kept = np.full(nblocks, int(cfg.rate_bits) - 1, dtype=np.int64)  # magnitude bits
            kept = np.clip(kept, 0, _MAX_PRECISION)
        else:
            tol = float(cfg.tolerance)
            # Discarding `drop` low-order fixed-point bits introduces an error
            # of at most 2**drop / scale = 2**(drop - precision + exponent).
            # Choose the largest drop with that error <= tol (minus guard bits
            # when the lifting transform is enabled).
            drop = np.floor(
                np.log2(tol) + _MAX_PRECISION - exponents.astype(np.float64)
            ).astype(np.int64) - transform_guard
            drop = np.clip(drop, 0, _MAX_PRECISION + 2)
            kept = np.maximum(_MAX_PRECISION + 2 - drop, 0)

        # Truncate magnitudes: value -> sign, magnitude >> drop.
        drop_bits = (_MAX_PRECISION + 2 - kept).astype(np.int64)
        signs = (ints < 0).astype(np.uint64)
        mags = np.abs(ints).astype(np.uint64) >> drop_bits[:, None].astype(np.uint64)

        widths = (kept[:, None] + 1).repeat(bs, axis=1)  # +1 sign bit
        payload_values = (mags << np.uint64(1)) | signs

        writer = BitWriter()
        writer.write_array(payload_values.ravel(), widths.ravel())
        bitstream = writer.getvalue()

        sections = {
            "exponents": exponents.astype("<i2").tobytes(),
            "kept": kept.astype("<i1").tobytes(),
            "bits": bitstream,
        }
        meta = {
            "magic": _MAGIC,
            "count": int(n),
            "block_size": int(bs),
            "nbits": int(writer.nbits),
            "use_transform": bool(cfg.use_transform),
        }
        payload = write_named_sections(sections, meta=meta)
        return ZFPResult(
            payload=payload,
            original_bytes=int(n) * 4,
            compressed_bytes=len(payload),
        )

    # -- decompression ----------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        meta, sections = read_named_sections(payload)
        if meta.get("magic") != _MAGIC:
            raise DecompressionError("not a ZFP-style payload (bad magic)")
        n = int(meta["count"])
        bs = int(meta["block_size"])
        use_transform = bool(meta["use_transform"])
        nblocks = (n + bs - 1) // bs if n else 0

        exponents = np.frombuffer(sections["exponents"], dtype="<i2").astype(np.int64)
        kept = np.frombuffer(sections["kept"], dtype="<i1").astype(np.int64)
        if exponents.size != nblocks or kept.size != nblocks:
            raise DecompressionError("corrupt ZFP block tables")
        if n == 0:
            return np.zeros(0, dtype=np.float32)

        reader = BitReader(sections["bits"], int(meta["nbits"]))
        out_blocks = np.empty((nblocks, bs), dtype=np.int64)
        for b in range(nblocks):
            width = int(kept[b]) + 1
            vals = reader.read_array(bs, width).astype(np.int64)
            signs = vals & 1
            mags = vals >> 1
            drop = _MAX_PRECISION + 2 - int(kept[b])
            ints = mags << drop
            # Reconstruct at the centre of the truncation interval to halve
            # the worst-case error (mirrors ZFP's rounding behaviour).
            if drop > 0:
                ints = ints + (1 << (drop - 1))
                ints[mags == 0] -= 1 << (drop - 1)
            ints = np.where(signs == 1, -ints, ints)
            out_blocks[b] = ints

        if use_transform:
            out_blocks = _inverse_lift(out_blocks)
        scale = np.exp2(_MAX_PRECISION - exponents.astype(np.float64))
        values = out_blocks.astype(np.float64) / scale[:, None]
        return values.ravel()[:n].astype(np.float32)


def compress(data: np.ndarray, tolerance: float = 1e-3, **kwargs) -> ZFPResult:
    """Convenience wrapper: fixed-accuracy compression."""
    return ZFPCompressor(ZFPConfig(tolerance=tolerance, **kwargs)).compress(data)


def decompress(payload: bytes) -> np.ndarray:
    """Convenience wrapper: decompress a ZFP-style payload."""
    return ZFPCompressor().decompress(payload)
