"""ZFP-style block transform compressor (baseline for Figure 2).

The paper compares SZ against ZFP (Lindstrom 2014) on the 1-D pruned weight
arrays and shows SZ winning consistently (Figure 2).  ZFP itself is a C
library and is not available offline, so :mod:`repro.zfp` provides a
from-scratch block codec with the same four stages the paper describes for
ZFP: *alignment of exponent*, *orthogonal (lifting) transform*, *fixed-point
integer conversion*, and *bit-plane style truncation coding*.

Two rate-control modes are provided, mirroring ZFP's:

* fixed-accuracy (absolute tolerance), used for the Figure 2 comparison;
* fixed-rate (bits per value), used by ablation benchmarks.
"""

from repro.zfp.codec import ZFPConfig, ZFPCompressor, ZFPResult, compress, decompress

__all__ = ["ZFPConfig", "ZFPCompressor", "ZFPResult", "compress", "decompress"]
