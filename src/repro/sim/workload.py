"""Deterministic, seedable workload traces for the serving gateways.

A trace is rendered *before* any measurement starts: the same
``(scenario, seed, knobs)`` tuple always yields byte-identical JSON, so a
policy comparison measures the policies, never sampling noise — every
cell of a benchmark matrix replays the exact same request sequence.

The building blocks:

* **Arrival processes** — homogeneous Poisson (steady state), an
  inhomogeneous Poisson rendered by thinning (diurnal sinusoid,
  flash-crowd burst), and a cold-start flood (a rate surge with
  exponential decay after a model push).
* **Popularity** — Zipf over an N-model zoo: weight of the rank-``r``
  model is proportional to ``r ** -s``.
* **Tenants** — every request carries a tenant drawn from its own Zipf
  (a few heavy hitters, a long tail); the tenant string doubles as the
  shard key, so consistent-hash stickiness is exercised for free.
* **Deadlines** — an optional per-request completion budget, enforced by
  the async front door and scored after the fact for the sync gateway.

All randomness flows through one :func:`numpy.random.default_rng`
instance per trace; nothing reads the wall clock.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.utils.errors import ValidationError

__all__ = [
    "SCENARIOS",
    "Scenario",
    "SimRequest",
    "WorkloadTrace",
    "generate_trace",
    "get_scenario",
    "list_scenarios",
    "zipf_weights",
]

TRACE_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# trace model


@dataclass(frozen=True)
class SimRequest:
    """One scheduled request: *when*, *what*, *who*, and *by when*."""

    arrival_s: float
    model: str
    tenant: str
    deadline_s: Optional[float] = None


@dataclass(frozen=True)
class WorkloadTrace:
    """A rendered request sequence plus the recipe that produced it."""

    scenario: str
    seed: int
    duration_s: float
    rate_rps: float
    models: Tuple[str, ...]
    tenants: Tuple[str, ...]
    params: Mapping[str, float]
    requests: Tuple[SimRequest, ...]

    @property
    def offered_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return len(self.requests) / self.duration_s

    def to_json(self) -> str:
        """Canonical JSON — stable key order, so digests are comparable."""
        payload = {
            "schema_version": TRACE_SCHEMA_VERSION,
            "scenario": self.scenario,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "rate_rps": self.rate_rps,
            "models": list(self.models),
            "tenants": list(self.tenants),
            "params": {k: self.params[k] for k in sorted(self.params)},
            "requests": [
                {
                    "arrival_s": r.arrival_s,
                    "model": r.model,
                    "tenant": r.tenant,
                    "deadline_s": r.deadline_s,
                }
                for r in self.requests
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        payload = json.loads(text)
        version = payload.get("schema_version")
        if version != TRACE_SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported trace schema_version {version!r}; "
                f"expected {TRACE_SCHEMA_VERSION}"
            )
        requests = tuple(
            SimRequest(
                arrival_s=float(r["arrival_s"]),
                model=str(r["model"]),
                tenant=str(r["tenant"]),
                deadline_s=None if r["deadline_s"] is None else float(r["deadline_s"]),
            )
            for r in payload["requests"]
        )
        return cls(
            scenario=str(payload["scenario"]),
            seed=int(payload["seed"]),
            duration_s=float(payload["duration_s"]),
            rate_rps=float(payload["rate_rps"]),
            models=tuple(str(m) for m in payload["models"]),
            tenants=tuple(str(t) for t in payload["tenants"]),
            params={str(k): float(v) for k, v in payload["params"].items()},
            requests=requests,
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — the trace's identity."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# popularity


def zipf_weights(n: int, s: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights for ranks ``1..n`` (weight ∝ ``rank**-s``)."""
    if n < 1:
        raise ValidationError(f"zipf_weights needs n >= 1, got {n}")
    if s < 0:
        raise ValidationError(f"zipf_weights needs s >= 0, got {s}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


# ---------------------------------------------------------------------------
# arrival processes

RateFn = Callable[[np.ndarray], np.ndarray]


def _poisson_arrivals(
    rng: np.random.Generator, rate_rps: float, duration_s: float
) -> np.ndarray:
    """Homogeneous Poisson arrival times on ``[0, duration_s)``."""
    if rate_rps <= 0 or duration_s <= 0:
        return np.empty(0, dtype=np.float64)
    blocks = []
    t = 0.0
    block = max(16, int(rate_rps * duration_s * 1.2) + 16)
    while t < duration_s:
        gaps = rng.exponential(1.0 / rate_rps, size=block)
        times = t + np.cumsum(gaps)
        blocks.append(times)
        t = float(times[-1])
    arrivals = np.concatenate(blocks)
    return arrivals[arrivals < duration_s]


def _thinned_arrivals(
    rng: np.random.Generator,
    rate_fn: RateFn,
    rate_max: float,
    duration_s: float,
) -> np.ndarray:
    """Inhomogeneous Poisson arrivals by thinning a rate-``rate_max`` stream.

    Candidates arrive at the envelope rate; each survives with probability
    ``rate(t) / rate_max``, which is exactly Lewis–Shedler thinning.
    """
    candidates = _poisson_arrivals(rng, rate_max, duration_s)
    if candidates.size == 0:
        return candidates
    accept = rng.random(candidates.size) < rate_fn(candidates) / rate_max
    return candidates[accept]


def _steady_arrivals(
    rng: np.random.Generator, rate_rps: float, duration_s: float, p: Mapping[str, float]
) -> np.ndarray:
    return _poisson_arrivals(rng, rate_rps, duration_s)


def _diurnal_arrivals(
    rng: np.random.Generator, rate_rps: float, duration_s: float, p: Mapping[str, float]
) -> np.ndarray:
    # One sinusoidal "day" spans period_frac of the trace; the rate swings
    # between trough_x and peak_x times the nominal rate, starting at the
    # trough (midnight) so short traces still show the ramp.
    peak = rate_rps * p["peak_x"]
    trough = rate_rps * p["trough_x"]
    period = duration_s * p["period_frac"]

    def rate(t: np.ndarray) -> np.ndarray:
        phase = (1.0 - np.cos(2.0 * np.pi * t / period)) / 2.0
        return trough + (peak - trough) * phase

    return _thinned_arrivals(rng, rate, peak, duration_s)


def _burst_arrivals(
    rng: np.random.Generator, rate_rps: float, duration_s: float, p: Mapping[str, float]
) -> np.ndarray:
    # Baseline Poisson traffic with a flash crowd: for burst_frac of the
    # trace starting at burst_at, the rate multiplies by burst_x.
    start = duration_s * p["burst_at"]
    end = start + duration_s * p["burst_frac"]
    peak = rate_rps * p["burst_x"]

    def rate(t: np.ndarray) -> np.ndarray:
        return np.where((t >= start) & (t < end), peak, rate_rps)

    return _thinned_arrivals(rng, rate, peak, duration_s)


def _coldstart_arrivals(
    rng: np.random.Generator, rate_rps: float, duration_s: float, p: Mapping[str, float]
) -> np.ndarray:
    # A model push at push_at: traffic surges by flood_x and decays back
    # with time constant decay_frac * duration (clients re-resolving and
    # retrying against the new model).
    push = duration_s * p["push_at"]
    tau = max(duration_s * p["decay_frac"], 1e-9)
    peak = rate_rps * (1.0 + p["flood_x"])

    def rate(t: np.ndarray) -> np.ndarray:
        surge = p["flood_x"] * np.exp(-(t - push) / tau)
        return rate_rps * (1.0 + np.where(t >= push, surge, 0.0))

    return _thinned_arrivals(rng, rate, peak, duration_s)


# ---------------------------------------------------------------------------
# model mixes


def _zipf_models(
    rng: np.random.Generator,
    arrivals: np.ndarray,
    models: Sequence[str],
    p: Mapping[str, float],
) -> np.ndarray:
    weights = zipf_weights(len(models), p["zipf_s"])
    picks = rng.choice(len(models), size=arrivals.size, p=weights)
    return np.asarray(models, dtype=object)[picks]


def _coldstart_models(
    rng: np.random.Generator,
    arrivals: np.ndarray,
    models: Sequence[str],
    p: Mapping[str, float],
) -> np.ndarray:
    # The last model in the zoo is the one just pushed: absent before
    # push_at, then grabbing flood_share of traffic (decaying toward its
    # organic Zipf share as caches warm and the novelty wears off).
    if len(models) < 2:
        raise ValidationError("coldstart needs at least 2 models (one is the push)")
    pushed = models[-1]
    veterans = models[:-1]
    push = float(p["push_at"])
    tau = max(float(p["decay_frac"]), 1e-9)
    weights = zipf_weights(len(veterans), p["zipf_s"])
    base = rng.choice(len(veterans), size=arrivals.size, p=weights)
    picks = np.asarray(veterans, dtype=object)[base]
    # arrivals are in seconds; push_at/decay_frac are trace fractions, so
    # normalise by the trace span (guard against an empty trace upstream).
    span = float(arrivals[-1]) if arrivals.size else 1.0
    frac = arrivals / max(span, 1e-9)
    share = p["flood_share"] * np.exp(-(frac - push) / tau)
    flood = (frac >= push) & (rng.random(arrivals.size) < share)
    picks[flood] = pushed
    return picks


def _zipf_tenants(
    rng: np.random.Generator,
    arrivals: np.ndarray,
    tenants: Sequence[str],
    p: Mapping[str, float],
) -> np.ndarray:
    weights = zipf_weights(len(tenants), p["tenant_zipf_s"])
    picks = rng.choice(len(tenants), size=arrivals.size, p=weights)
    return np.asarray(tenants, dtype=object)[picks]


# ---------------------------------------------------------------------------
# scenario registry


@dataclass(frozen=True)
class Scenario:
    """A named workload shape: arrival process + popularity mix + knobs."""

    name: str
    summary: str
    stresses: str
    arrivals: Callable[
        [np.random.Generator, float, float, Mapping[str, float]], np.ndarray
    ]
    models: Callable[
        [np.random.Generator, np.ndarray, Sequence[str], Mapping[str, float]],
        np.ndarray,
    ]
    defaults: Mapping[str, float] = field(default_factory=dict)

    def render(
        self,
        *,
        rng: np.random.Generator,
        duration_s: float,
        rate_rps: float,
        model_names: Sequence[str],
        tenant_names: Sequence[str],
        deadline_s: Optional[float],
        params: Mapping[str, float],
    ) -> Tuple[SimRequest, ...]:
        arrivals = self.arrivals(rng, rate_rps, duration_s, params)
        picks = self.models(rng, arrivals, model_names, params)
        tenant_picks = _zipf_tenants(rng, arrivals, tenant_names, params)
        return tuple(
            SimRequest(
                # round to microseconds so the JSON round-trip is exact and
                # the canonical form is platform-stable
                arrival_s=round(float(t), 6),
                model=str(m),
                tenant=str(ten),
                deadline_s=deadline_s,
            )
            for t, m, ten in zip(arrivals, picks, tenant_picks)
        )


_COMMON_DEFAULTS: Dict[str, float] = {"zipf_s": 1.1, "tenant_zipf_s": 1.0}

SCENARIOS: Dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValidationError(f"scenario {scenario.name!r} registered twice")
    SCENARIOS[scenario.name] = scenario
    return scenario


_register(
    Scenario(
        name="steady",
        summary="Homogeneous Poisson arrivals at the nominal rate.",
        stresses="baseline throughput/latency; shard-policy balance at equilibrium",
        arrivals=_steady_arrivals,
        models=_zipf_models,
        defaults=dict(_COMMON_DEFAULTS),
    )
)

_register(
    Scenario(
        name="diurnal",
        summary="Sinusoidal day/night rate swing (inhomogeneous Poisson).",
        stresses="cache warm-up/decay across load swings; queue drain at the peak",
        arrivals=_diurnal_arrivals,
        models=_zipf_models,
        defaults={**_COMMON_DEFAULTS, "peak_x": 2.0, "trough_x": 0.2, "period_frac": 1.0},
    )
)

_register(
    Scenario(
        name="burst",
        summary="Flash crowd: a burst_x rate spike for burst_frac of the trace.",
        stresses="admission control (max_queue_depth fast-fail) and p99 under overload",
        arrivals=_burst_arrivals,
        models=_zipf_models,
        defaults={**_COMMON_DEFAULTS, "burst_x": 6.0, "burst_at": 0.4, "burst_frac": 0.2},
    )
)

_register(
    Scenario(
        name="coldstart",
        summary="Model push at push_at: traffic floods the new (cold) model.",
        stresses="layer-cache misses and decode cost on an unwarmed model",
        arrivals=_coldstart_arrivals,
        models=_coldstart_models,
        defaults={
            **_COMMON_DEFAULTS,
            "push_at": 0.3,
            "flood_x": 1.5,
            "flood_share": 0.7,
            "decay_frac": 0.3,
        },
    )
)


def list_scenarios() -> Tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValidationError(
            f"unknown scenario {name!r}; available: {list(list_scenarios())}"
        ) from None


def generate_trace(
    scenario: str,
    *,
    models: Sequence[str],
    tenants: Sequence[str],
    duration_s: float,
    rate_rps: float,
    seed: int = 0,
    deadline_s: Optional[float] = None,
    params: Optional[Mapping[str, float]] = None,
) -> WorkloadTrace:
    """Render a scenario to a trace.  Same arguments ⇒ identical trace."""
    spec = get_scenario(scenario)
    if not models:
        raise ValidationError("generate_trace needs at least one model name")
    if not tenants:
        raise ValidationError("generate_trace needs at least one tenant name")
    if duration_s <= 0:
        raise ValidationError(f"duration_s must be positive, got {duration_s}")
    if rate_rps <= 0:
        raise ValidationError(f"rate_rps must be positive, got {rate_rps}")
    merged = dict(spec.defaults)
    for key, value in (params or {}).items():
        if key not in merged:
            raise ValidationError(
                f"unknown parameter {key!r} for scenario {scenario!r}; "
                f"available: {sorted(merged)}"
            )
        merged[key] = float(value)
    rng = np.random.default_rng(seed)
    requests = spec.render(
        rng=rng,
        duration_s=duration_s,
        rate_rps=rate_rps,
        model_names=list(models),
        tenant_names=list(tenants),
        deadline_s=deadline_s,
        params=merged,
    )
    return WorkloadTrace(
        scenario=scenario,
        seed=int(seed),
        duration_s=float(duration_s),
        rate_rps=float(rate_rps),
        models=tuple(models),
        tenants=tuple(tenants),
        params=merged,
        requests=requests,
    )
