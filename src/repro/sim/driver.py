"""Replay a :class:`~repro.sim.workload.WorkloadTrace` against a gateway.

Two client disciplines, each available for both front doors:

* **Open loop** — requests are submitted at their *scheduled* arrival
  times regardless of how the server is doing, and latency is measured
  from the scheduled arrival, not from the (possibly delayed) submit.
  That is the coordinated-omission-free discipline: when the server
  stalls, the backlog of scheduled arrivals keeps counting against it
  instead of silently pausing the load generator.
* **Closed loop** — a fixed pool of clients each issue their share of
  the trace sequentially, waiting for every response before sending the
  next request.  Throughput is then concurrency-bound (classic
  benchmark style) and latency hides server stalls; useful for capacity
  numbers, wrong for tail-latency claims.

Outcome taxonomy (disjoint; ``offered`` is their sum):

* ``completed`` — produced a result (possibly after its deadline);
* ``rejected`` — admission control fast-failed (``GatewayOverloaded``);
* ``expired`` — the async front door cancelled it at its deadline
  (:class:`~repro.utils.errors.DeadlineExceeded`);
* ``failures`` — anything else (validation, replica crash).

``deadline_misses`` counts ``expired`` plus completed-but-late requests,
so sync and async runs score deadlines on the same axis even though only
the async gateway enforces them in-flight.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.obs.log import get_logger
from repro.sim.workload import WorkloadTrace
from repro.utils.errors import DeadlineExceeded, GatewayOverloaded, ValidationError

_log = get_logger("sim.driver")

__all__ = [
    "DriveResult",
    "drive_closed_loop",
    "drive_closed_loop_async",
    "drive_open_loop",
    "drive_open_loop_async",
]

_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass
class DriveResult:
    """Reduced outcomes of one trace replay."""

    mode: str
    offered: int
    completed: int
    rejected: int
    expired: int
    failures: int
    deadline_misses: int
    elapsed_s: float
    latencies_s: List[float] = field(default_factory=list)
    max_submit_lag_s: float = 0.0

    @property
    def rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        on_time = self.completed - (self.deadline_misses - self.expired)
        return on_time / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        return self.deadline_misses / self.offered if self.offered else 0.0

    def latency_ms(self) -> Dict[str, float]:
        if not self.latencies_s:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
        arr = np.asarray(self.latencies_s, dtype=np.float64) * 1000.0
        p50, p90, p99 = (float(v) for v in np.percentile(arr, _PERCENTILES))
        return {
            "p50": p50,
            "p90": p90,
            "p99": p99,
            "mean": float(arr.mean()),
            "max": float(arr.max()),
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "failures": self.failures,
            "deadline_misses": self.deadline_misses,
            "elapsed_s": self.elapsed_s,
            "rps": self.rps,
            "goodput_rps": self.goodput_rps,
            "rejection_rate": self.rejection_rate,
            "deadline_miss_rate": self.deadline_miss_rate,
            "latency_ms": self.latency_ms(),
            "max_submit_lag_s": self.max_submit_lag_s,
        }


def _check_inputs(trace: WorkloadTrace, inputs: Mapping[str, np.ndarray]) -> None:
    missing = sorted(set(trace.models) - set(inputs))
    if missing:
        raise ValidationError(f"no input sample for trace models: {missing}")


# ---------------------------------------------------------------------------
# sync gateway


def drive_open_loop(
    gateway: Any,
    trace: WorkloadTrace,
    inputs: Mapping[str, np.ndarray],
    *,
    time_scale: float = 1.0,
    timeout: float = 60.0,
) -> DriveResult:
    """Open-loop replay against the sync ``Gateway``.

    ``time_scale`` compresses (<1) or stretches (>1) the trace clock —
    a 10-second trace at ``time_scale=0.1`` replays in one second with
    10x the offered rate.
    """
    _check_inputs(trace, inputs)
    cond = threading.Condition()
    latencies: List[Tuple[float, Optional[float]]] = []  # (latency_s, deadline_s)
    failures = 0
    settled = 0

    def _done(fut: Any, scheduled: float, deadline: Optional[float]) -> None:
        nonlocal failures, settled
        finished = time.perf_counter()
        with cond:
            if fut.exception() is not None:
                failures += 1
            else:
                latencies.append((finished - scheduled, deadline))
            settled += 1
            cond.notify_all()

    start = time.perf_counter()
    rejected = 0
    max_lag = 0.0
    submitted = 0
    for req in trace.requests:
        target = start + req.arrival_s * time_scale
        now = time.perf_counter()
        if target > now:
            time.sleep(target - now)
        else:
            max_lag = max(max_lag, now - target)
        deadline = None if req.deadline_s is None else req.deadline_s * time_scale
        try:
            fut = gateway.submit(req.model, inputs[req.model], key=req.tenant)
        except GatewayOverloaded:
            rejected += 1
            continue
        submitted += 1
        fut.add_done_callback(
            lambda f, s=target, d=deadline: _done(f, s, d)
        )
    with cond:
        drained = cond.wait_for(lambda: settled >= submitted, timeout=timeout)
        if not drained:
            failures += submitted - settled  # stuck futures score as failures
        lat = [latency for latency, _ in latencies]
        late = sum(
            1 for latency, deadline in latencies if deadline is not None and latency > deadline
        )
        completed = len(latencies)
        failed = failures
    elapsed = time.perf_counter() - start
    return DriveResult(
        mode="open",
        offered=len(trace.requests),
        completed=completed,
        rejected=rejected,
        expired=0,
        failures=failed,
        deadline_misses=late,
        elapsed_s=elapsed,
        latencies_s=lat,
        max_submit_lag_s=max_lag,
    )


def drive_closed_loop(
    gateway: Any,
    trace: WorkloadTrace,
    inputs: Mapping[str, np.ndarray],
    *,
    clients: int = 4,
    time_scale: float = 1.0,
    timeout: float = 60.0,
) -> DriveResult:
    """Closed-loop replay: ``clients`` threads each drain a trace slice."""
    _check_inputs(trace, inputs)
    if clients < 1:
        raise ValidationError(f"clients must be >= 1, got {clients}")
    lock = threading.Lock()
    latencies: List[Tuple[float, Optional[float]]] = []
    counters = {"rejected": 0, "failures": 0}
    barrier = threading.Barrier(clients + 1)

    def _client(slice_requests: Tuple[Any, ...]) -> None:
        barrier.wait()
        for req in slice_requests:
            deadline = None if req.deadline_s is None else req.deadline_s * time_scale
            sent = time.perf_counter()
            try:
                fut = gateway.submit(req.model, inputs[req.model], key=req.tenant)
                fut.result(timeout=timeout)
            except GatewayOverloaded:
                with lock:
                    counters["rejected"] += 1
                continue
            except Exception:
                _log.debug("closed-loop request failed", exc_info=True)
                with lock:
                    counters["failures"] += 1
                continue
            with lock:
                latencies.append((time.perf_counter() - sent, deadline))

    threads = [
        threading.Thread(
            target=_client, args=(trace.requests[i::clients],), daemon=True
        )
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    with lock:
        lat = [latency for latency, _ in latencies]
        late = sum(
            1 for latency, deadline in latencies if deadline is not None and latency > deadline
        )
    return DriveResult(
        mode="closed",
        offered=len(trace.requests),
        completed=len(lat),
        rejected=counters["rejected"],
        expired=0,
        failures=counters["failures"],
        deadline_misses=late,
        elapsed_s=elapsed,
        latencies_s=lat,
    )


# ---------------------------------------------------------------------------
# async gateway


async def drive_open_loop_async(
    gateway: Any,
    trace: WorkloadTrace,
    inputs: Mapping[str, np.ndarray],
    *,
    time_scale: float = 1.0,
) -> DriveResult:
    """Open-loop replay against the ``AsyncGateway`` (run on its loop).

    Deadlines are passed through and *enforced*: an expired request is
    cancelled by the front door and counted as ``expired`` (a deadline
    miss), not as a completion.
    """
    import asyncio

    _check_inputs(trace, inputs)
    loop = asyncio.get_running_loop()
    latencies: List[Tuple[float, Optional[float]]] = []
    counters = {"rejected": 0, "expired": 0, "failures": 0}

    async def _one(req: Any, scheduled: float, deadline: Optional[float]) -> None:
        try:
            await gateway.submit(
                req.model, inputs[req.model], key=req.tenant, deadline=deadline
            )
        except DeadlineExceeded:
            counters["expired"] += 1
        except GatewayOverloaded:
            counters["rejected"] += 1
        except Exception:
            _log.debug("open-loop request failed", exc_info=True)
            counters["failures"] += 1
        else:
            latencies.append((loop.time() - scheduled, deadline))

    start = loop.time()
    max_lag = 0.0
    tasks = []
    for req in trace.requests:
        target = start + req.arrival_s * time_scale
        delay = target - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        else:
            max_lag = max(max_lag, -delay)
        deadline = None if req.deadline_s is None else req.deadline_s * time_scale
        tasks.append(asyncio.ensure_future(_one(req, target, deadline)))
    if tasks:
        await asyncio.gather(*tasks)
    elapsed = loop.time() - start
    lat = [latency for latency, _ in latencies]
    late = sum(
        1 for latency, deadline in latencies if deadline is not None and latency > deadline
    )
    return DriveResult(
        mode="open",
        offered=len(trace.requests),
        completed=len(lat),
        rejected=counters["rejected"],
        expired=counters["expired"],
        failures=counters["failures"],
        deadline_misses=counters["expired"] + late,
        elapsed_s=elapsed,
        latencies_s=lat,
        max_submit_lag_s=max_lag,
    )


async def drive_closed_loop_async(
    gateway: Any,
    trace: WorkloadTrace,
    inputs: Mapping[str, np.ndarray],
    *,
    clients: int = 4,
    time_scale: float = 1.0,
) -> DriveResult:
    """Closed-loop replay: ``clients`` coroutines each drain a slice."""
    import asyncio

    _check_inputs(trace, inputs)
    if clients < 1:
        raise ValidationError(f"clients must be >= 1, got {clients}")
    loop = asyncio.get_running_loop()
    latencies: List[Tuple[float, Optional[float]]] = []
    counters = {"rejected": 0, "expired": 0, "failures": 0}

    async def _client(slice_requests: Tuple[Any, ...]) -> None:
        for req in slice_requests:
            deadline = None if req.deadline_s is None else req.deadline_s * time_scale
            sent = loop.time()
            try:
                await gateway.submit(
                    req.model, inputs[req.model], key=req.tenant, deadline=deadline
                )
            except DeadlineExceeded:
                counters["expired"] += 1
            except GatewayOverloaded:
                counters["rejected"] += 1
            except Exception:
                _log.debug("closed-loop request failed", exc_info=True)
                counters["failures"] += 1
            else:
                latencies.append((loop.time() - sent, deadline))

    start = loop.time()
    await asyncio.gather(
        *(_client(trace.requests[i::clients]) for i in range(clients))
    )
    elapsed = loop.time() - start
    lat = [latency for latency, _ in latencies]
    late = sum(
        1 for latency, deadline in latencies if deadline is not None and latency > deadline
    )
    return DriveResult(
        mode="closed",
        offered=len(trace.requests),
        completed=len(lat),
        rejected=counters["rejected"],
        expired=counters["expired"],
        failures=counters["failures"],
        deadline_misses=counters["expired"] + late,
        elapsed_s=elapsed,
        latencies_s=lat,
    )
