"""Config-driven scenario×policy benchmark matrix over the gateways.

One *cell* = one (scenario, policy, backend, frontdoor, replicas,
queue-depth) combination.  Every cell of a scenario replays the **same
rendered trace** (identical seed ⇒ identical request sequence, and the
cell records the trace digest to prove it), so a column-to-column
difference measures the policy, not sampling noise.

Each cell drives a fresh gateway wired to a private
:class:`~repro.obs.metrics.MetricsRegistry`, so per-model cache hit
rates come straight off the serving metrics instead of a side channel.

The output feeds three consumers with one schema:

* ``python -m repro scenario-bench`` (interactive + JSON),
* ``benchmarks/bench_scenarios.py`` → ``benchmarks/run_all.py`` →
  ``BENCH_scenarios.json`` artifacts,
* ``benchmarks/compare_baselines.py`` regression gating via
  :func:`flatten_metrics` (flat, append-only metric keys).

See ``docs/benchmarking.md`` for the artifact schema and gating rules,
``docs/scenarios.md`` for the scenario catalog.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.sim.driver import (
    DriveResult,
    drive_closed_loop,
    drive_closed_loop_async,
    drive_open_loop,
    drive_open_loop_async,
)
from repro.sim.workload import WorkloadTrace, generate_trace, get_scenario
from repro.utils.errors import ValidationError

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "DEFAULT_SPEC",
    "MATRIX_SCHEMA_VERSION",
    "MatrixConfig",
    "flatten_metrics",
    "load_config",
    "matrix_artifact",
    "run_matrix",
]

#: Schema of the raw matrix result (``run_matrix`` return value).
MATRIX_SCHEMA_VERSION = 1

#: Must match ``benchmarks/run_all.py`` ``SCHEMA_VERSION`` — the BENCH
#: artifact envelope this module emits via :func:`matrix_artifact` is the
#: same shape the unified runner writes for every other suite.
ARTIFACT_SCHEMA_VERSION = 3

#: Chained synthetic MLP (layer k's in-features == layer k-1's
#: out-features) — small enough that a cell boots in milliseconds, big
#: enough that decode and cache effects register.
DEFAULT_SPEC = "fc6=96x128:0.1,fc7=48x96:0.15,fc8=16x48:0.25"

_FRONTDOORS = ("sync", "async")
_MODES = ("open", "closed")


@dataclass
class MatrixConfig:
    """The full grid plus the shared workload and serving knobs."""

    scenarios: Tuple[str, ...] = ("steady", "burst")
    policies: Tuple[str, ...] = ("round-robin", "least-loaded")
    backends: Tuple[str, ...] = ("thread",)
    frontdoors: Tuple[str, ...] = ("sync",)
    replicas: Tuple[int, ...] = (1,)
    queue_depths: Tuple[int, ...] = (64,)
    models: int = 3
    tenants: int = 8
    duration_s: float = 1.0
    rate_rps: float = 150.0
    deadline_ms: Optional[float] = 50.0
    seed: int = 0
    time_scale: float = 1.0
    mode: str = "open"
    clients: int = 4
    synthetic: str = DEFAULT_SPEC
    batch_size: int = 8
    max_batch_delay: float = 0.002
    scenario_params: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def validate(self) -> None:
        from repro.serve.gateway import REPLICA_BACKENDS

        if not self.scenarios:
            raise ValidationError("matrix needs at least one scenario")
        if not self.policies:
            raise ValidationError("matrix needs at least one policy")
        for name in self.scenarios:
            get_scenario(name)  # raises with the available list
        for backend in self.backends:
            if backend not in REPLICA_BACKENDS:
                raise ValidationError(
                    f"unknown backend {backend!r}; available: {list(REPLICA_BACKENDS)}"
                )
        for frontdoor in self.frontdoors:
            if frontdoor not in _FRONTDOORS:
                raise ValidationError(
                    f"unknown frontdoor {frontdoor!r}; available: {list(_FRONTDOORS)}"
                )
        if self.mode not in _MODES:
            raise ValidationError(
                f"unknown mode {self.mode!r}; available: {list(_MODES)}"
            )
        if self.models < 1:
            raise ValidationError("matrix needs at least one model")
        if self.tenants < 1:
            raise ValidationError("matrix needs at least one tenant")
        for value, name in ((self.replicas, "replicas"), (self.queue_depths, "queue_depths")):
            if not value or any(v < 1 for v in value):
                raise ValidationError(f"{name} must be a non-empty list of positive ints")
        for name in self.scenario_params:
            get_scenario(name)

    def cell_count(self) -> int:
        return (
            len(self.scenarios)
            * len(self.policies)
            * len(self.backends)
            * len(self.frontdoors)
            * len(self.replicas)
            * len(self.queue_depths)
        )


def normalize_policy(name: str) -> str:
    """Accept ``least_loaded`` as a spelling of ``least-loaded`` etc."""
    return name.strip().replace("_", "-")


# ---------------------------------------------------------------------------
# config files

_MATRIX_KEYS = {
    "scenarios",
    "policies",
    "backends",
    "frontdoors",
    "replicas",
    "queue_depths",
}
_WORKLOAD_KEYS = {
    "models",
    "tenants",
    "duration_s",
    "rate_rps",
    "deadline_ms",
    "seed",
    "time_scale",
    "mode",
    "clients",
    "scenario_params",
}
_SERVING_KEYS = {"synthetic", "batch_size", "max_batch_delay"}


def _load_raw_config(path: str) -> Dict[str, Any]:
    if path.endswith(".toml"):
        try:
            import tomllib
        except ModuleNotFoundError:
            raise ValidationError(
                "TOML configs need Python >= 3.11 (stdlib tomllib); "
                "use a .json config on this interpreter"
            ) from None
        with open(path, "rb") as fh:
            return tomllib.load(fh)
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def load_config(path: str) -> MatrixConfig:
    """Load a matrix config from ``.json`` or ``.toml``.

    Sections: ``[matrix]`` (the grid axes), ``[workload]`` (trace knobs,
    including per-scenario ``scenario_params``), ``[serving]`` (the
    synthetic zoo + batching).  Unknown sections or keys are errors —
    a typo silently shrinking a grid would invalidate a comparison.
    """
    raw = _load_raw_config(path)
    known_sections = {"matrix", "workload", "serving"}
    unknown = sorted(set(raw) - known_sections)
    if unknown:
        raise ValidationError(
            f"unknown config sections {unknown}; available: {sorted(known_sections)}"
        )
    kwargs: Dict[str, Any] = {}
    for section, allowed in (
        ("matrix", _MATRIX_KEYS),
        ("workload", _WORKLOAD_KEYS),
        ("serving", _SERVING_KEYS),
    ):
        body = raw.get(section, {})
        bad = sorted(set(body) - allowed)
        if bad:
            raise ValidationError(
                f"unknown keys {bad} in [{section}]; available: {sorted(allowed)}"
            )
        kwargs.update(body)
    for axis in ("scenarios", "backends", "frontdoors"):
        if axis in kwargs:
            kwargs[axis] = tuple(str(v) for v in kwargs[axis])
    if "policies" in kwargs:
        kwargs["policies"] = tuple(normalize_policy(str(v)) for v in kwargs["policies"])
    for axis in ("replicas", "queue_depths"):
        if axis in kwargs:
            kwargs[axis] = tuple(int(v) for v in kwargs[axis])
    config = MatrixConfig(**kwargs)
    config.validate()
    return config


# ---------------------------------------------------------------------------
# running the matrix


def _build_zoo(config: MatrixConfig) -> Tuple[Dict[str, bytes], Dict[str, np.ndarray]]:
    """N synthetic archives ("m0".."mN-1") plus one input sample each."""
    from repro.cli import synthetic_sparse_layers
    from repro.core.encoder import DeepSZEncoder
    from repro.serve.bench import archive_input_dim
    from repro.store import archive_bytes

    sources: Dict[str, bytes] = {}
    inputs: Dict[str, np.ndarray] = {}
    for index in range(config.models):
        name = f"m{index}"
        layers = synthetic_sparse_layers(config.synthetic, seed=config.seed + index)
        model = DeepSZEncoder().encode(
            f"sim-{name}", layers, {layer: 1e-3 for layer in layers}
        )
        blob = archive_bytes(model)
        sources[name] = blob
        dim = archive_input_dim(blob)
        rng = np.random.default_rng(config.seed + 1000 + index)
        inputs[name] = rng.standard_normal(dim).astype(np.float32)
    return sources, inputs


def _render_traces(config: MatrixConfig) -> Dict[str, WorkloadTrace]:
    model_names = [f"m{i}" for i in range(config.models)]
    tenant_names = [f"tenant-{i:02d}" for i in range(config.tenants)]
    deadline_s = None if config.deadline_ms is None else config.deadline_ms / 1000.0
    traces = {}
    for scenario in config.scenarios:
        traces[scenario] = generate_trace(
            scenario,
            models=model_names,
            tenants=tenant_names,
            duration_s=config.duration_s,
            rate_rps=config.rate_rps,
            seed=config.seed,
            deadline_s=deadline_s,
            params=config.scenario_params.get(scenario),
        )
    return traces


def _cache_hit_rates(registry: Any) -> Dict[str, Any]:
    """Per-model cache hit rate off ``repro_cache_events_total`` samples.

    Process-backed replicas decode in worker processes (no gateway-side
    runtime), so the family may be absent or all-zero there; the overall
    rate is then ``None`` rather than a misleading 0.0.
    """
    events: Dict[str, Dict[str, float]] = {}
    for sample in registry.samples():
        if sample.name != "repro_cache_events_total" or sample.value is None:
            continue
        model = sample.labels.get("model", "")
        event = sample.labels.get("event", "")
        events.setdefault(model, {})[event] = events.setdefault(model, {}).get(
            event, 0.0
        ) + float(sample.value)
    per_model: Dict[str, Optional[float]] = {}
    total_hits = total_lookups = 0.0
    for model, counts in sorted(events.items()):
        hits = counts.get("hits", 0.0)
        lookups = hits + counts.get("misses", 0.0)
        per_model[model] = hits / lookups if lookups else None
        total_hits += hits
        total_lookups += lookups
    overall = total_hits / total_lookups if total_lookups else None
    return {"overall": overall, "per_model": per_model}


def _add_models(
    gateway: Any,
    sources: Mapping[str, bytes],
    *,
    policy: str,
    backend: str,
    replicas: int,
    queue_depth: int,
    config: MatrixConfig,
) -> None:
    for name, blob in sources.items():
        gateway.add_model(
            name,
            blob,
            replicas=replicas,
            policy=policy,
            replica_backend=backend,
            max_queue_depth=queue_depth,
            batch_size=config.batch_size,
            max_batch_delay=config.max_batch_delay,
        )


def _drive_sync(
    sources: Mapping[str, bytes],
    inputs: Mapping[str, np.ndarray],
    trace: WorkloadTrace,
    *,
    policy: str,
    backend: str,
    replicas: int,
    queue_depth: int,
    config: MatrixConfig,
) -> Tuple[DriveResult, Dict[str, Any]]:
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.gateway import Gateway

    registry = MetricsRegistry()
    gateway = Gateway(metrics=registry)
    _add_models(
        gateway,
        sources,
        policy=policy,
        backend=backend,
        replicas=replicas,
        queue_depth=queue_depth,
        config=config,
    )
    gateway.start()
    try:
        if config.mode == "closed":
            result = drive_closed_loop(
                gateway,
                trace,
                inputs,
                clients=config.clients,
                time_scale=config.time_scale,
            )
        else:
            result = drive_open_loop(
                gateway, trace, inputs, time_scale=config.time_scale
            )
        cache = _cache_hit_rates(registry)
    finally:
        gateway.close()
    return result, cache


def _drive_async(
    sources: Mapping[str, bytes],
    inputs: Mapping[str, np.ndarray],
    trace: WorkloadTrace,
    *,
    policy: str,
    backend: str,
    replicas: int,
    queue_depth: int,
    config: MatrixConfig,
) -> Tuple[DriveResult, Dict[str, Any]]:
    import asyncio

    from repro.obs.metrics import MetricsRegistry
    from repro.serve.async_gateway import AsyncGateway

    async def _run() -> Tuple[DriveResult, Dict[str, Any]]:
        registry = MetricsRegistry()
        gateway = AsyncGateway(metrics=registry)
        _add_models(
            gateway,
            sources,
            policy=policy,
            backend=backend,
            replicas=replicas,
            queue_depth=queue_depth,
            config=config,
        )
        await gateway.start()
        try:
            if config.mode == "closed":
                result = await drive_closed_loop_async(
                    gateway,
                    trace,
                    inputs,
                    clients=config.clients,
                    time_scale=config.time_scale,
                )
            else:
                result = await drive_open_loop_async(
                    gateway, trace, inputs, time_scale=config.time_scale
                )
            cache = _cache_hit_rates(registry)
        finally:
            await gateway.close()
        return result, cache

    return asyncio.run(_run())


def run_matrix(config: MatrixConfig, *, progress: Any = None) -> Dict[str, Any]:
    """Run every cell of the grid; returns the raw matrix result dict."""
    config.validate()
    sources, inputs = _build_zoo(config)
    traces = _render_traces(config)
    cells: List[Dict[str, Any]] = []
    for scenario in config.scenarios:
        trace = traces[scenario]
        digest = trace.digest()
        for policy in config.policies:
            for backend in config.backends:
                for frontdoor in config.frontdoors:
                    for replicas in config.replicas:
                        for queue_depth in config.queue_depths:
                            drive = _drive_async if frontdoor == "async" else _drive_sync
                            if progress is not None:
                                progress(
                                    f"{scenario} × {policy} × {backend} × "
                                    f"{frontdoor} × r{replicas} × q{queue_depth}"
                                )
                            result, cache = drive(
                                sources,
                                inputs,
                                trace,
                                policy=policy,
                                backend=backend,
                                replicas=replicas,
                                queue_depth=queue_depth,
                                config=config,
                            )
                            cell = {
                                "scenario": scenario,
                                "policy": policy,
                                "backend": backend,
                                "frontdoor": frontdoor,
                                "replicas": replicas,
                                "queue_depth": queue_depth,
                                "trace_sha256": digest,
                                "cache_hit_rate": cache,
                                **result.as_dict(),
                            }
                            cells.append(cell)
    return {
        "schema_version": MATRIX_SCHEMA_VERSION,
        "grid": {
            "scenarios": list(config.scenarios),
            "policies": list(config.policies),
            "backends": list(config.backends),
            "frontdoors": list(config.frontdoors),
            "replicas": list(config.replicas),
            "queue_depths": list(config.queue_depths),
        },
        "workload": {
            "models": config.models,
            "tenants": config.tenants,
            "duration_s": config.duration_s,
            "rate_rps": config.rate_rps,
            "deadline_ms": config.deadline_ms,
            "seed": config.seed,
            "time_scale": config.time_scale,
            "mode": config.mode,
        },
        "traces": {
            name: {
                "requests": len(trace.requests),
                "offered_rps": trace.offered_rps,
                "sha256": trace.digest(),
            }
            for name, trace in traces.items()
        },
        "cells": cells,
    }


# ---------------------------------------------------------------------------
# BENCH artifact


def _slug(text: str) -> str:
    return text.replace("-", "_").replace(".", "_")


def cell_key(cell: Mapping[str, Any]) -> str:
    """The stable metric-key prefix for one cell (append-only namespace)."""
    return (
        f"{_slug(cell['scenario'])}_{_slug(cell['policy'])}_{_slug(cell['backend'])}"
        f"_{cell['frontdoor']}_r{cell['replicas']}_q{cell['queue_depth']}"
    )


def flatten_metrics(
    result: Mapping[str, Any],
) -> Tuple[Dict[str, float], List[str], Dict[str, str]]:
    """Flat ``metrics`` + ``gate`` + ``directions`` for the BENCH artifact.

    Per cell: ``<key>_rps``, ``<key>_goodput_rps``, ``<key>_p99_ms``,
    ``<key>_rejection_rate``, ``<key>_deadline_miss_rate``.  Gated:
    ``cells_completed`` plus every steady-scenario rps (open-loop steady
    throughput is offered-rate-bound, so it is stable across hosts —
    tail latencies and miss rates stay informational).
    """
    metrics: Dict[str, float] = {}
    gate: List[str] = []
    directions: Dict[str, str] = {}
    completed_cells = 0
    for cell in result["cells"]:
        key = cell_key(cell)
        metrics[f"{key}_rps"] = float(cell["rps"])
        metrics[f"{key}_goodput_rps"] = float(cell["goodput_rps"])
        metrics[f"{key}_p99_ms"] = float(cell["latency_ms"]["p99"])
        metrics[f"{key}_rejection_rate"] = float(cell["rejection_rate"])
        metrics[f"{key}_deadline_miss_rate"] = float(cell["deadline_miss_rate"])
        if cell["completed"] > 0:
            completed_cells += 1
        if cell["scenario"] == "steady":
            gate.append(f"{key}_rps")
            directions[f"{key}_rps"] = "higher"
    metrics["cells_completed"] = float(completed_cells)
    gate.insert(0, "cells_completed")
    directions["cells_completed"] = "higher"
    return metrics, gate, directions


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):  # honours cgroup/affinity limits
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def matrix_artifact(result: Mapping[str, Any], *, mode: str = "full") -> Dict[str, Any]:
    """The stable-schema ``BENCH_scenarios.json`` payload."""
    metrics, gate, directions = flatten_metrics(result)
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "suite": "scenarios",
        "mode": mode,
        "host_cores": _usable_cores(),
        "metrics": metrics,
        "gate": gate,
        "directions": directions,
        "grid": result["grid"],
        "workload": result["workload"],
        "traces": result["traces"],
        "cells": result["cells"],
    }
